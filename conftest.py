"""Repo-level pytest configuration.

Ensures ``src/`` is importable even when the editable install is absent
(this offline environment lacks the ``wheel`` package, so
``pip install -e .`` may fail; ``python setup.py develop`` or this shim
both work).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
