"""Fig. 9 — E-Store latency: PLASMA rules vs in-app elasticity vs none.

40 root partitions (x4 children) on 4 m1.small servers, 48 clients with
the 35%-cascade skew, elastic setups get one standby server.  Paper:
PLASMA E-Store and the in-app implementation perform near-identically,
both clearly better than no elasticity.
"""

from repro.apps.estore import run_estore_experiment
from repro.bench import format_series, format_table

COMMON = dict(num_clients=48, duration_ms=230_000.0, period_ms=40_000.0)


def test_fig9_estore(benchmark, report):
    def run_all():
        return {mode: run_estore_experiment(mode, **COMMON)
                for mode in ("plasma", "in-app", "none")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[mode, result.mean_before_ms, result.mean_after_ms,
             result.migrations]
            for mode, result in results.items()]
    report.add(format_table(
        ["setup", "latency before (ms)", "latency after (ms)",
         "migrations"], rows,
        title="Fig. 9 — E-Store request latency"))
    for mode, result in results.items():
        report.add(format_series(f"fig9/{mode}", result.curve,
                                 y_label="latency(ms)"))
    report.write("fig9_estore")

    plasma = results["plasma"]
    inapp = results["in-app"]
    none = results["none"]
    # Both elastic setups clearly beat no elasticity...
    assert plasma.mean_after_ms < 0.9 * none.mean_after_ms
    assert inapp.mean_after_ms < 0.9 * none.mean_after_ms
    # ...and are close to each other (paper: "quite similar").
    ratio = plasma.mean_after_ms / inapp.mean_after_ms
    assert 0.8 < ratio < 1.2
