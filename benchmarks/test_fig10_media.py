"""Fig. 10 — Media Service under a client wave, per elasticity period.

128 clients join following N(2 min, 90 s), stay, then leave following
N(19 min, 90 s); the fleet starts at 4 m1.small and may grow to 65.
Paper: a smaller elasticity period gives lower latency and faster
resource allocation/reclaim; the server count tracks the client wave.
"""

from repro.apps.media import run_media_experiment
from repro.bench import format_series, format_table, mean

PERIODS_MS = (60_000.0, 120_000.0, 180_000.0)
COMMON = dict(num_clients=128, duration_ms=1_440_000.0)


def test_fig10_media_service_periods(benchmark, report):
    def run_all():
        return {period: run_media_experiment(period_ms=period, **COMMON)
                for period in PERIODS_MS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for period, result in results.items():
        wave_lat = mean([lat for t, lat in result.latency_curve
                         if 200_000.0 <= t <= 900_000.0])
        rows.append([f"{period / 1000:.0f}s", result.mean_latency_ms,
                     wave_lat, result.peak_servers,
                     result.final_servers, result.migrations])
    report.add(format_table(
        ["period", "mean latency (ms)", "wave latency (ms)",
         "peak servers", "final servers", "migrations"], rows,
        title="Fig. 10 — Media Service: effect of the elasticity period"))
    for period, result in results.items():
        tag = f"{period / 1000:.0f}s"
        report.add(format_series(f"fig10a/latency/{tag}",
                                 result.latency_curve,
                                 y_label="latency(ms)"))
        report.add(format_series(f"fig10b/servers/{tag}",
                                 result.server_curve,
                                 y_label="servers"))
    report.add(format_series(
        "fig10/clients", results[PERIODS_MS[0]].client_curve,
        y_label="active clients"))
    report.write("fig10_media")

    short = results[PERIODS_MS[0]]
    long = results[PERIODS_MS[-1]]

    def wave_latency(result):
        return mean([lat for t, lat in result.latency_curve
                     if 200_000.0 <= t <= 900_000.0])

    # Shorter period -> lower latency during the wave (Fig. 10a).
    assert wave_latency(short) < wave_latency(long)
    # The fleet tracked the wave: grew past the initial 4, and gave
    # servers back once clients left (Fig. 10b).
    assert short.peak_servers > 4
    assert short.final_servers < short.peak_servers
    # The shorter period allocates resources faster.
    def first_growth(result):
        for t, v in result.server_curve:
            if v > 4:
                return t
        return float("inf")

    assert first_growth(short) <= first_growth(long)
