"""Overload protection under an event storm — shed, brown out, recover.

Not a paper figure: this exercises the overload-protection layer added
on top of the reproduction.  An :class:`EventStorm` floods one server
with junk client calls at ~20x its CPU capacity.  The data plane sheds
the excess at bounded mailboxes (every drop accounted in the
disposition ledger), the control plane browns the server out (stretched
reporting, truncated REPORTs), the failure detector recognises the
silence as *drowning* rather than death, and when the storm passes the
server exits brownout with its actors exactly where they were — no
false resurrection, no actor loss.
"""

from repro.actors import Actor, Client
from repro.bench import build_cluster, format_table
from repro.chaos import ChaosEngine, EventStorm, FaultPlan
from repro.cluster import AvailabilityMeter
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.overload import DISPOSITIONS, OverloadConfig
from repro.sim import Timeout, spawn

STORM_AT_MS = 5_000.0
STORM_MS = 10_000.0
LOAD_UNTIL_MS = 25_000.0
RUN_MS = 30_000.0
CAPACITY = 16


class Keyed(Actor):
    def get(self, key):
        yield self.compute(2.0)
        return key


def test_storm_is_shed_browned_out_and_survived(report):
    bed = build_cluster(3, "m1.small", seed=5)
    refs = []
    for index in range(8):
        server = bed.servers[0 if index < 4 else 1 + index % 2]
        refs.append(bed.system.create_actor(Keyed, server=server))

    policy = compile_source(
        "server.mem.perc > 95 => balance({Keyed}, mem);", [Keyed])
    overload = OverloadConfig(
        mailbox_capacity=CAPACITY, policy="shed",
        brownout_enter_cpu_perc=60.0, brownout_exit_cpu_perc=20.0,
        brownout_enter_rounds=1, brownout_exit_rounds=2,
        brownout_stretch=3, brownout_top_k=2,
        stale_snapshot_ms=15_000.0)
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=1_000.0, gem_wait_ms=100.0,
        suspicion_timeout_ms=2_500.0, overload=overload))
    events = []
    manager.add_listener(lambda kind, detail:
                         events.append((bed.sim.now, kind, dict(detail))))
    manager.start()
    omanager = manager.overload

    # Background service traffic across the whole fleet: availability is
    # measured from the clients' point of view (one client per actor).
    meter = AvailabilityMeter(bed.sim, window_ms=1_000.0)
    clients = [Client(bed.system, name=f"svc{i}", timeout_ms=1_000.0,
                      max_retries=2, backoff_base_ms=100.0,
                      backoff_cap_ms=1_000.0, meter=meter)
               for i in range(len(refs))]

    def loop(client, ref):
        while bed.sim.now < LOAD_UNTIL_MS:
            yield from client.reliable_call(ref, "get", 1)
            yield Timeout(bed.sim, 200.0)

    for client, ref in zip(clients, refs):
        spawn(bed.sim, loop(client, ref))

    ChaosEngine(bed.system, FaultPlan(faults=(
        EventStorm(at_ms=STORM_AT_MS, duration_ms=STORM_MS,
                   rate_per_ms=1.0, cpu_ms=20.0, size_bytes=256.0,
                   server_index=0),)), manager=manager).start()

    bed.run(until_ms=RUN_MS)

    hot = bed.servers[0].name
    kinds = [(kind, detail) for _t, kind, detail in events]

    def names(kind):
        return [d.get("server") for k, d in kinds if k == kind]

    # -- data plane: bounded growth, every drop accounted ---------------
    assert omanager.peak_mailbox_depth <= CAPACITY
    assert omanager.total_shed() > 0
    balance = omanager.conservation_balance()
    assert balance["outstanding"] == 0
    assert balance["issued"] == sum(balance[kind]
                                    for kind in DISPOSITIONS)
    assert omanager.double_dispositions == []

    # -- control plane: brownout bracketed the storm --------------------
    assert hot in names("brownout-entered")
    assert hot in names("brownout-exited")
    entered_at = next(t for t, k, d in events
                      if k == "brownout-entered" and d["server"] == hot)
    exited_at = next(t for t, k, d in events
                     if k == "brownout-exited" and d["server"] == hot)
    assert STORM_AT_MS < entered_at < STORM_AT_MS + STORM_MS
    assert exited_at > STORM_AT_MS + STORM_MS
    assert any(d["server"] == hot
               for k, d in kinds if k == "report-truncated")

    # -- failure detection: drowning, never falsely dead ----------------
    assert hot in names("server-drowning")
    assert hot not in names("server-suspected")
    assert not any(k == "actor-lost" for k, _d in kinds)
    for ref in refs[:4]:
        record = bed.system.directory.try_lookup(ref.actor_id)
        assert record is not None and record.server is bed.servers[0]

    # -- availability: degraded during the storm, restored after --------
    during = meter.availability_between(STORM_AT_MS,
                                        STORM_AT_MS + STORM_MS)
    # The bounded backlog (16 msgs x 40ms real CPU x 4 actors on one
    # core) takes ~3s to drain; measure recovery after that.
    after = meter.availability_between(STORM_AT_MS + STORM_MS + 4_000.0,
                                       LOAD_UNTIL_MS)
    assert after > max(during, 0.95)
    assert sum(meter.totals.values()) \
        == sum(client.attempts for client in clients)

    rows = [["storm window", f"{STORM_AT_MS / 1000:.0f}-"
             f"{(STORM_AT_MS + STORM_MS) / 1000:.0f}s "
             f"@ 1 call/ms x 20ms CPU"],
            ["messages shed", omanager.total_shed()],
            ["peak mailbox depth", f"{omanager.peak_mailbox_depth} "
             f"(bound {CAPACITY})"],
            ["brownout episode", f"{entered_at / 1000:.1f}s - "
             f"{exited_at / 1000:.1f}s"],
            ["drowning announcements", names("server-drowning").count(hot)],
            ["false suspicions", names("server-suspected").count(hot)],
            ["availability during storm", f"{during:.3f}"],
            ["availability after storm", f"{after:.3f}"]]
    report.add(format_table(
        ["metric", "value"], rows,
        title="Overload & brownout — event storm on one m1.small"))
    report.write("overload_brownout")
