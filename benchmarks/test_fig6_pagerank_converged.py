"""Fig. 6 — PageRank converged computation time.

(a) static allocation, 8 servers / 16 vCPUs: PLASMA's CPU balance rule
    vs Orleans' equal-actor-count elasticity (paper: PLASMA converges
    ~24% faster).  We average over three random initial distributions,
    as the paper averages over five.
(b) dynamic allocation: PLASMA growing from 1 server vs conservative
    provisioning with 16 servers / 32 vCPUs (paper: near-identical
    performance with ~25% fewer servers).
"""

from pagerank_common import (random_placement, run_conservative,
                             run_dynamic, run_static, standard_graph,
                             steady_time)
from repro.bench import format_table, mean

SEEDS = (104, 100, 9)


def test_fig6a_static_allocation(benchmark, report):
    graph = standard_graph()

    def run_all():
        gains = []
        rows = []
        for seed in SEEDS:
            placement = random_placement(seed)
            plasma = run_static(graph, placement, "plasma")
            orleans = run_static(graph, placement, "orleans")
            p = steady_time(plasma["stats"])
            o = steady_time(orleans["stats"])
            gains.append(1.0 - p / o)
            rows.append([seed, p, o, f"{100 * (1 - p / o):.1f}%",
                         plasma["migrations"], orleans["migrations"]])
        return gains, rows

    gains, rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report.add(format_table(
        ["seed", "PLASMA iter (ms)", "Orleans iter (ms)", "gain",
         "PLASMA migs", "Orleans migs"], rows,
        title="Fig. 6a — PageRank static 16-vCPU converged iteration "
              "time (paper: PLASMA ~24% faster than Orleans)"))
    report.add(f"mean gain over {len(SEEDS)} random distributions: "
               f"{100 * mean(gains):.1f}%")
    report.write("fig6a_pagerank_static")

    # Shape: PLASMA wins on every distribution, by a clear margin on avg.
    assert all(g > 0 for g in gains)
    assert mean(gains) > 0.08


def test_fig6b_dynamic_allocation(benchmark, report):
    graph = standard_graph()

    def run_all():
        dynamic = run_dynamic(graph, iterations=80)
        conservative = run_conservative(graph, iterations=30)
        return dynamic, conservative

    dynamic, conservative = benchmark.pedantic(run_all, rounds=1,
                                               iterations=1)
    d_time = steady_time(dynamic["stats"])
    c_time = steady_time(conservative["stats"])
    d_servers = dynamic["bed"].provisioner.fleet_size()
    report.add(format_table(
        ["setup", "servers", "steady iter (ms)", "first iter (ms)"],
        [["PLASMA dynamic", d_servers, d_time,
          dynamic["stats"].times_ms[0]],
         ["Conservative", 16, c_time,
          conservative["stats"].times_ms[0]]],
        title="Fig. 6b — PageRank dynamic allocation vs conservative "
              "provisioning (paper: same performance with 25% fewer "
              "servers)"))
    saving = 1.0 - d_servers / 16.0
    report.add(f"resource saving: {100 * saving:.0f}% fewer servers; "
               f"performance ratio {d_time / c_time:.2f}x")
    report.write("fig6b_pagerank_dynamic")

    # Shape: PLASMA uses clearly fewer servers and converges to within
    # a small factor of the over-provisioned fleet.
    assert d_servers < 16
    assert saving >= 0.25
    assert d_time < 2.0 * c_time
    # And it improved dramatically from the 1-server start.
    assert d_time < 0.5 * dynamic["stats"].times_ms[0]
