"""Ablations for the design choices DESIGN.md §5 calls out.

- placement-stability window (one period vs none) — §4.3's defence
  against re-migration churn;
- rule-aware new-actor placement vs random placement — §4.2's claim
  that rules give new actors "a higher chance to be placed on the right
  servers from the start";
- two-level LEM/GEM architecture: GEM count scaling on the same
  workload (complements Fig. 11c).
"""

import random

from pagerank_common import random_placement, run_static, standard_graph
from repro.apps.halo import (HALO_INTERACTION_POLICY, Player, Router,
                             Session, build_halo)
from repro.apps.pagerank import PAGERANK_POLICY, PageRankWorker
from repro.bench import build_cluster, format_table
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import Timeout, spawn
from repro.actors import Client


def test_ablation_stability_window(benchmark, report):
    """No stability window => more migrations for the same outcome."""
    graph = standard_graph()
    placement = random_placement(104)

    def run_pair():
        from pagerank_common import NUM_SERVERS, PERIOD_MS
        from repro.apps.pagerank import build_pagerank, run_iterations

        outcomes = {}
        for label, stability in (("one period", None), ("none", 0.0)):
            bed = build_cluster(NUM_SERVERS, "m5.large", seed=4)
            deployment = build_pagerank(bed, graph, 32,
                                        placement=list(placement))
            policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
            manager = ElasticityManager(bed.system, policy, EmrConfig(
                period_ms=PERIOD_MS, gem_wait_ms=500.0,
                stability_ms=stability))
            manager.start()
            stats = run_iterations(deployment, 40)
            outcomes[label] = (manager.migrations_total(),
                               sum(stats.times_ms[-5:]) / 5)
        return outcomes

    outcomes = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [[label, migs, steady]
            for label, (migs, steady) in outcomes.items()]
    report.add(format_table(
        ["stability window", "migrations", "steady iter (ms)"], rows,
        title="Ablation — placement-stability window (paper §4.3)"))
    report.write("ablation_stability")

    with_window = outcomes["one period"]
    without = outcomes["none"]
    # The window suppresses churn without hurting the steady state much.
    assert with_window[0] <= without[0]
    assert with_window[1] < 1.3 * without[1]


def test_ablation_rule_aware_placement(benchmark, report):
    """New Player actors: rule-aware placement vs random placement."""

    def run_pair():
        outcomes = {}
        for label, use_hint in (("rule-aware", True), ("random", False)):
            bed = build_cluster(8, instance_type="m1.small", seed=31)
            deployment = build_halo(bed, num_routers=8, num_sessions=8)
            policy = compile_source(HALO_INTERACTION_POLICY,
                                    [Router, Session, Player])
            manager = ElasticityManager(bed.system, policy, EmrConfig(
                period_ms=20_000.0, gem_wait_ms=500.0))
            manager.start()
            rng = bed.streams.stream("ablation-joins")
            clients = [Client(bed.system, name=f"c{i}")
                       for i in range(16)]
            colocated_at_birth = []

            def console(index):
                yield Timeout(bed.sim, rng.random() * 10_000.0)
                session = deployment.sessions[
                    rng.randrange(len(deployment.sessions))]
                player = bed.system.create_actor(
                    Player, related=session if use_hint else None)
                bed.system.actor_instance(session).players.append(player)
                colocated_at_birth.append(
                    bed.system.server_of(player)
                    is bed.system.server_of(session))
                client = clients[index]
                while bed.sim.now < 60_000.0:
                    router = deployment.routers[
                        rng.randrange(len(deployment.routers))]
                    yield from client.timed_call(router, "route",
                                                 session, player)
                    yield Timeout(bed.sim, 300.0)

            for index in range(16):
                spawn(bed.sim, console(index))
            bed.run(until_ms=60_000.0)
            birth_rate = sum(colocated_at_birth) / len(colocated_at_birth)
            latencies = [lat for c in clients
                         for _t, lat in c.latencies.samples]
            outcomes[label] = (birth_rate,
                               sum(latencies) / len(latencies),
                               manager.migrations_total())
        return outcomes

    outcomes = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [[label, f"{rate:.0%}", latency, migs]
            for label, (rate, latency, migs) in outcomes.items()]
    report.add(format_table(
        ["placement", "colocated at creation", "mean latency (ms)",
         "migrations"], rows,
        title="Ablation — rule-aware new-actor placement (paper §4.2)"))
    report.write("ablation_placement")

    rule_aware = outcomes["rule-aware"]
    rnd = outcomes["random"]
    assert rule_aware[0] == 1.0           # always placed right
    assert rnd[0] < 0.5                   # random rarely lucky (1/8)
    assert rule_aware[1] <= rnd[1]        # and latency benefits
    # Random placement needs migrations to fix itself; rule-aware none.
    assert rule_aware[2] == 0


def test_ablation_gem_scaling_same_decisions(benchmark, report):
    """The two-level design: more GEMs partition the global view yet
    reach comparable balance (each GEM balances its own region)."""
    graph = standard_graph()
    placement = random_placement(104)

    def run_pair():
        from pagerank_common import NUM_SERVERS, PERIOD_MS
        from repro.apps.pagerank import build_pagerank, run_iterations

        outcomes = {}
        for gems in (1, 4):
            bed = build_cluster(NUM_SERVERS, "m5.large", seed=4)
            deployment = build_pagerank(bed, graph, 32,
                                        placement=list(placement))
            policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
            manager = ElasticityManager(bed.system, policy, EmrConfig(
                period_ms=PERIOD_MS, gem_wait_ms=500.0, gem_count=gems))
            manager.start()
            stats = run_iterations(deployment, 40)
            outcomes[gems] = (sum(stats.times_ms[-5:]) / 5,
                              manager.migrations_total())
        return outcomes

    outcomes = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [[gems, steady, migs]
            for gems, (steady, migs) in outcomes.items()]
    report.add(format_table(
        ["GEMs", "steady iter (ms)", "migrations"], rows,
        title="Ablation — GEM count on the PageRank balance workload"))
    report.write("ablation_gems")

    # Partitioned global views still converge to a comparable result.
    assert outcomes[4][0] < 1.4 * outcomes[1][0]
