"""Cluster-scale control-plane benchmark: sub-linear root decisions.

The hierarchical control plane's scaling claim is that the root tier
never touches per-actor (or even per-server) state: it consumes one
delta-compressed aggregate per server group, so with groups sized
~sqrt(fleet) its per-round decision cost grows like sqrt(S) while the
fleet grows like S.  This benchmark builds a synthetic fleet at two
sizes (500 and 5,000 servers; ~1M synthetic actors at the large size),
folds each group's actors through the real ``build_aggregate`` path,
and times ``RootGem.arbitrate`` over the folded views.

Gated metric: ``root_decision_scaling_ratio`` — the root's cost growth
divided by the fleet's size growth.  Sub-linearity means < 1; we assert
< 0.9 with a wide margin (sqrt scaling predicts ~0.3), and the recorded
ratio is regression-checked at 20% by CI's perf gate.

``SCALE_SMOKE=1`` trims the fleet to 100/500 servers for CI.
"""

import math
import os
from types import SimpleNamespace

from repro.actors.refs import ActorRef
from repro.bench import record_metrics, time_ops
from repro.core import EmrConfig
from repro.core.emr.hierarchy import RootGem, build_aggregate
from repro.core.profiling import ActorSnapshot, ServerSnapshot

if os.environ.get("SCALE_SMOKE"):
    FLEET_SMALL, FLEET_LARGE = 100, 500
    ACTORS_PER_SERVER = 50
else:
    FLEET_SMALL, FLEET_LARGE = 500, 5_000
    ACTORS_PER_SERVER = 200

ARBITRATE_LOOPS = 500
NOW_MS = 1_000_000.0


class _FakeServer:
    """Just enough server surface for snapshots and arbitration."""

    __slots__ = ("server_id", "name", "running")

    def __init__(self, server_id):
        self.server_id = server_id
        self.name = f"s{server_id}"
        self.running = True


class _FakeGem:
    __slots__ = ("gem_id", "epoch", "overload_fraction",
                 "underload_fraction")

    def __init__(self, gem_id):
        self.gem_id = gem_id
        self.epoch = 0
        self.overload_fraction = 0.0
        self.underload_fraction = 0.0


def _stub_root(config):
    manager = SimpleNamespace(
        config=config, system=SimpleNamespace(sim=SimpleNamespace(
            now=NOW_MS)))
    return RootGem(manager, hierarchy=None)


def _build_views(num_servers, group_size, config):
    """Fold a synthetic fleet into per-group root views, one group at a
    time — exactly the real pipeline's memory profile: no global
    per-actor view ever materializes, only bounded aggregates survive.

    Group 0 runs hot and the last group cold, so arbitration has a real
    hot spot to work on (the non-vacuity check relies on it)."""
    num_groups = math.ceil(num_servers / group_size)
    views = {}
    next_actor_id = 1
    total_actors = 0
    for group in range(num_groups):
        lo = group * group_size
        hi = min(lo + group_size, num_servers)
        if group == 0:
            base_cpu = 90.0
        elif group == num_groups - 1:
            base_cpu = 5.0
        else:
            base_cpu = 40.0
        servers = []
        actors_by_server = {}
        for server_id in range(lo + 1, hi + 1):
            server = _FakeServer(server_id)
            cpu = base_cpu + (server_id % 7)
            servers.append(ServerSnapshot(
                server=server, cpu_perc=cpu, mem_perc=30.0, net_perc=10.0,
                actor_count=ACTORS_PER_SERVER, vcpus=4,
                instance_type="m5.large"))
            snaps = []
            for _ in range(ACTORS_PER_SERVER):
                snaps.append(ActorSnapshot(
                    ref=ActorRef(next_actor_id, "Shard"), server=server,
                    cpu_perc=cpu / ACTORS_PER_SERVER
                    + (next_actor_id % 13) * 0.01,
                    cpu_ms_per_min=100.0, mem_mb=2.0, mem_perc=0.1,
                    net_bytes_per_min=1_000.0, net_perc=0.05))
                next_actor_id += 1
            actors_by_server[server_id] = snaps
            total_actors += ACTORS_PER_SERVER
        gem = _FakeGem(gem_id=group)
        aggregate = build_aggregate(group, gem, servers, actors_by_server,
                                    config.group_top_k)
        # What the root actually folds: the first publish's full delta.
        views[group] = aggregate.delta_against(None)
    return views, total_actors


def _bench_fleet(num_servers, config):
    group_size = max(1, round(math.sqrt(num_servers)))
    build_timing = time_ops(
        lambda: _build_views(num_servers, group_size, config),
        ops=num_servers * ACTORS_PER_SERVER, repeats=1)
    views, total_actors = _build_views(num_servers, group_size, config)
    root = _stub_root(config)
    actions = root.arbitrate(views)
    assert actions, "arbitration found no hot spot: benchmark is vacuous"

    def decide():
        for _ in range(ARBITRATE_LOOPS):
            root.arbitrate(views)

    decide_timing = time_ops(decide, ops=ARBITRATE_LOOPS, repeats=3)
    return {
        "groups": len(views),
        "group_size": group_size,
        "actors": total_actors,
        "aggregate_us_per_actor": build_timing.ms_per_op * 1000.0,
        "decide_us": decide_timing.ms_per_op * 1000.0,
        "moves_planned": len(actions),
    }


def test_root_decision_cost_is_sublinear(report):
    config = EmrConfig(cross_group_band=15.0, max_moves_per_server=3)
    small = _bench_fleet(FLEET_SMALL, config)
    large = _bench_fleet(FLEET_LARGE, config)

    growth = large["decide_us"] / small["decide_us"]
    fleet_growth = FLEET_LARGE / FLEET_SMALL
    scaling_ratio = growth / fleet_growth

    report.add("Cluster-scale control plane: root decision cost")
    report.add(f"{'servers':>10} {'groups':>8} {'actors':>10} "
               f"{'decide us':>10} {'agg us/actor':>13}")
    for label, row in (("small", small), ("large", large)):
        report.add(f"{(FLEET_SMALL if label == 'small' else FLEET_LARGE):>10}"
                   f" {row['groups']:>8} {row['actors']:>10}"
                   f" {row['decide_us']:>10.2f}"
                   f" {row['aggregate_us_per_actor']:>13.3f}")
    report.add(f"cost growth {growth:.2f}x over {fleet_growth:.0f}x fleet "
               f"=> scaling ratio {scaling_ratio:.3f} (sub-linear < 1)")
    report.write("scale_cluster")

    record_metrics("scale_cluster", {
        "servers_small": FLEET_SMALL,
        "servers_large": FLEET_LARGE,
        "actors_large": large["actors"],
        "root_groups_large": large["groups"],
        "root_decide_small_us": small["decide_us"],
        "root_decide_large_us": large["decide_us"],
        "aggregate_us_per_actor": large["aggregate_us_per_actor"],
        "root_decision_scaling_ratio": scaling_ratio,
    })

    # Sub-linearity gate: sqrt-sized groups predict ~sqrt growth
    # (ratio ~0.3); 0.9 leaves shared-runner noise a wide berth while
    # still failing any O(servers) regression in the root tier.
    assert scaling_ratio < 0.9, (
        f"root decision cost grew {growth:.2f}x for a {fleet_growth:.0f}x "
        f"fleet (ratio {scaling_ratio:.3f}): the root tier is no longer "
        f"sub-linear in server count")
    # The large fleet really was cluster-scale.
    assert large["actors"] >= 25_000 if os.environ.get("SCALE_SMOKE") \
        else large["actors"] >= 1_000_000
