"""Hot-path micro-benchmarks: EPR profiling, GEM evaluation, sim kernel.

Each benchmark times the incremental elasticity path against the
full-recompute reference path *in the same process* and records both
absolute numbers and machine-independent ratios into ``BENCH_perf.json``
(repo root, or ``$BENCH_PERF_PATH``).  CI's benchmark-smoke job reruns
this file and fails when a ``*_ratio`` regresses more than 20% against
the committed baseline — the lock that keeps the profiling/evaluation
pipeline from quietly sliding back to O(everything) per period.

The asserted ≥2x speedups are deliberately far below the measured
margins (typically 5-50x) so shared-runner noise cannot flake them.
"""

from repro.actors import Actor, Message
from repro.bench import build_cluster, record_metrics, time_ops
from repro.core import compile_source
from repro.core.emr.evaluate import (EvaluationScope, colocate_groups,
                                     evaluate_rule)
from repro.core.profiling import ActorStats, ProfilingRuntime
from repro.sim import Queue, Simulator

WINDOW_MS = 60_000.0
NUM_ACTORS = 128
CALL_KEYS = 6
# Long enough that every per-call-key meter reaches WindowedMeter's
# 720-bucket retention cap — the steady state a long-running cluster
# sits in, where the legacy scan cost is at its worst.
HISTORY_MS = 2_160_000.0
PUMP_STEP_MS = 500.0   # one event per bucket: steady-state meter density
STEP_MS = 2_000.0      # virtual time between profiling periods


class Shard(Actor):
    children: list
    state_size_mb = 2.0

    def __init__(self):
        self.children = []

    def read(self):
        yield self.compute(1.0)
        return 1


# ---------------------------------------------------------------------------
# shared scenario plumbing
# ---------------------------------------------------------------------------


def _build_bed():
    bed = build_cluster(2, "m5.large", seed=7)
    refs = []
    for index in range(NUM_ACTORS):
        server = bed.servers[index % 2]
        refs.append(bed.system.create_actor(Shard, server=server))
    # A few heavyweight shards: the selective `mem.perc > 50` atom binds
    # only these, which is what makes indexed candidate lookup matter.
    memory_mb = bed.servers[0].itype.memory_mb
    for ref in refs[:4]:
        bed.system.actor_instance(ref).state_size_mb = 0.6 * memory_mb
    # Ref joins: every shard holds the next one as a child.
    for left, right in zip(refs, refs[1:]):
        bed.system.actor_instance(left).children.append(right)
    return bed, refs


def _messages():
    """One reusable Message per call key (record_message only reads the
    caller fields, so reuse avoids timing dataclass construction)."""
    return {
        key: Message(target_id=0, function=f"fn{key}", args=(),
                     caller_kind="client", caller_id=None,
                     size_bytes=256.0, reply=None)
        for key in range(CALL_KEYS)}


def _profiled_pair():
    """Two identically pumped profiling runtimes over one cluster: the
    incremental path and the full-recompute reference."""
    bed, refs = _build_bed()
    records = [bed.system.directory.lookup(ref.actor_id) for ref in refs]
    incremental = ProfilingRuntime(bed.sim, window_ms=WINDOW_MS,
                                   incremental=True)
    full = ProfilingRuntime(bed.sim, window_ms=WINDOW_MS, incremental=False)
    for profiler in (incremental, full):
        for record in records:
            profiler.on_actor_created(record)
    messages = _messages()
    active = NUM_ACTORS // 2  # the other half stays idle (cold actors)
    sim_until = HISTORY_MS
    step = 0
    while bed.sim.now < sim_until:
        bed.sim.run(until=min(sim_until, bed.sim.now + PUMP_STEP_MS))
        for record in records[:active]:
            message = messages[step % CALL_KEYS]
            for profiler in (incremental, full):
                profiler.on_message_delivered(record, message)
                profiler.on_compute(record, 0.5)
                profiler.on_bytes_received(record, 128.0)
        step += 1
    return bed, records, incremental, full, messages, active


# ---------------------------------------------------------------------------
# benchmarks
# ---------------------------------------------------------------------------


def test_profiling_ingest_ops(report):
    """Per-event bookkeeping cost: ring meters vs scan meters."""
    events = 50_000
    results = {}
    for label, use_ring in (("incremental", True), ("full", False)):

        def ingest(use_ring=use_ring):
            # Self-contained per repeat: fresh meters, monotonic clock so
            # both implementations rotate through many buckets.
            sim = Simulator()
            stats = ActorStats(sim, window_ms=WINDOW_MS, use_ring=use_ring)
            for index in range(events):
                if not index % 50:
                    sim.run(until=index * 10.0)
                stats.record_message("client", None, "read", 256.0)
                stats.cpu.add(0.5)

        results[label] = time_ops(ingest, ops=2 * events, repeats=3)
    incremental, full = results["incremental"], results["full"]
    ratio = incremental.best_s / full.best_s
    report.add(f"ingest incremental: {incremental.ops_per_sec:,.0f} ops/s")
    report.add(f"ingest full:        {full.ops_per_sec:,.0f} ops/s")
    report.add(f"ingest latency ratio (incremental/full): {ratio:.3f}")
    record_metrics("profiling_ingest", {
        "incremental_ops_per_sec": incremental.ops_per_sec,
        "full_ops_per_sec": full.ops_per_sec,
        "ingest_latency_ratio": ratio,
    })
    report.write("perf_profiling_ingest")
    # Ingest must not get *slower* than the reference path by much; the
    # win here is bounded memory + O(1) totals, not per-add speed.
    assert ratio < 1.5


def test_profiling_snapshot_speedup(report):
    """Per-period snapshot cost over a long-history, half-idle fleet."""
    bed, records, incremental, full, messages, active = _profiled_pair()
    rounds = 3

    def snapshot_rounds(profiler):
        def run():
            for _ in range(rounds):
                bed.sim.run(until=bed.sim.now + STEP_MS)
                for record in records[:active]:
                    profiler.on_message_delivered(record, messages[0])
                for server in bed.servers:
                    group = [r for r in records if r.server is server]
                    profiler.snapshot_actors(group)
        return run

    full_timing = time_ops(snapshot_rounds(full), ops=rounds, repeats=3)
    inc_timing = time_ops(snapshot_rounds(incremental), ops=rounds,
                          repeats=3)
    ratio = inc_timing.best_s / full_timing.best_s
    speedup = 1.0 / ratio if ratio > 0 else float("inf")
    report.add(f"snapshot full:        {full_timing.ms_per_op:.2f} ms/round")
    report.add(f"snapshot incremental: {inc_timing.ms_per_op:.2f} ms/round")
    report.add(f"speedup: {speedup:.1f}x  (cache hits: "
               f"{incremental.snapshot_cache_hits})")
    record_metrics("profiling_snapshot", {
        "full_ms_per_round": full_timing.ms_per_op,
        "incremental_ms_per_round": inc_timing.ms_per_op,
        "snapshot_latency_ratio": ratio,
        "speedup": speedup,
    })
    report.write("perf_profiling_snapshot")
    assert incremental.snapshot_cache_hits > 0  # idle actors were reused
    assert speedup >= 2.0


def test_gem_decision_latency(report):
    """Full decision pipeline per period: snapshot + rule evaluation.

    The incremental path pairs cached/ring snapshots with the indexed
    evaluation scope; the reference pairs full recompute with the linear
    scan.  Both must produce identical matches (asserted) — only the
    latency may differ.
    """
    bed, records, incremental, full, messages, active = _profiled_pair()
    policy = compile_source(
        """
        server.cpu.perc >= 0 and Shard(a).cpu.perc >= 0 and
        Shard(b).mem.perc > 50 => separate(a, b);
        Shard(c) in ref(Shard(p).children) => colocate(p, c);
        server.cpu.perc > 101 => balance({Shard}, cpu);
        """, [Shard])
    rules = list(policy.resource_rules) + list(policy.actor_rules)

    def decision_round(profiler, indexed):
        def run():
            bed.sim.run(until=bed.sim.now + STEP_MS)
            for record in records[:active]:
                profiler.on_message_delivered(record, messages[0])
            snaps = []
            server_snaps = []
            for server in bed.servers:
                group = [r for r in records if r.server is server]
                snaps.extend(profiler.snapshot_actors(group))
                server_snaps.append(profiler.snapshot_server(server, group))
            by_id = {snap.actor_id: snap for snap in snaps}
            scope = EvaluationScope(
                servers=server_snaps, actors=snaps,
                resolve_ref=lambda ref: by_id.get(ref.actor_id),
                indexed=indexed)
            keys = []
            for rule in rules:
                keys.extend(match.key() for match in
                            evaluate_rule(rule, scope))
            groups = colocate_groups(policy.actor_rules, scope)
            return keys, groups
        return run

    full_keys, full_groups = decision_round(full, indexed=False)()
    inc_keys, inc_groups = decision_round(incremental, indexed=True)()
    assert inc_keys == full_keys      # decisions identical, only faster
    assert inc_groups == full_groups

    full_timing = time_ops(decision_round(full, indexed=False), ops=1,
                           repeats=3)
    inc_timing = time_ops(decision_round(incremental, indexed=True), ops=1,
                          repeats=3)
    ratio = inc_timing.best_s / full_timing.best_s
    speedup = 1.0 / ratio if ratio > 0 else float("inf")
    report.add(f"decision full:        {full_timing.ms_per_op:.2f} ms")
    report.add(f"decision incremental: {inc_timing.ms_per_op:.2f} ms")
    report.add(f"matches per round: {len(full_keys)}")
    report.add(f"speedup: {speedup:.1f}x")
    record_metrics("gem_decision", {
        "full_ms_per_round": full_timing.ms_per_op,
        "incremental_ms_per_round": inc_timing.ms_per_op,
        "decision_latency_ratio": ratio,
        "speedup": speedup,
    })
    report.write("perf_gem_decision")
    assert speedup >= 2.0


def test_sim_kernel_throughput(report):
    """Event-loop and mailbox throughput.

    The engine workload mirrors the runtime's real traffic mix: each
    future-dated event (a network delivery or timer) resumes a chain of
    zero-delay continuations — in the actor runtime every process resume
    and mailbox wakeup is a ``schedule(0.0, ...)``, so zero-delay events
    dominate a live cluster's queue by a wide margin.  The headline
    ``engine_events_per_sec`` is this mix under the default (calendar)
    kernel; the same program under the heap kernel yields the
    machine-independent ``kernel_latency_ratio`` that CI gates, and a
    future-only sub-metric tracks the pure priority-queue path where the
    calendar kernel's zero-delay fast path cannot help.
    """
    chain = 7        # zero-delay continuations per future-dated root
    roots = 30_000
    events = roots * (chain + 1)

    def engine_mix(scheduler):
        def run():
            sim = Simulator(scheduler=scheduler)
            fired = [0]

            def resume(depth):
                fired[0] += 1
                if depth:
                    sim.schedule(0.0, resume, depth - 1)

            for index in range(roots):
                sim.schedule(float(index % 64), resume, chain)
            sim.run()
            assert fired[0] == events
        return run

    calendar = time_ops(engine_mix("calendar"), ops=events, repeats=3)
    heap = time_ops(engine_mix("heap"), ops=events, repeats=3)
    kernel_ratio = calendar.best_s / heap.best_s

    future_events = 100_000

    def run_future():
        sim = Simulator()
        sink = [].append
        for index in range(future_events):
            sim.schedule(float(index % 64), sink, index)
        sim.run()

    future = time_ops(run_future, ops=future_events, repeats=3)

    def run_queue():
        sim = Simulator()
        queue = Queue(sim)
        for index in range(future_events):
            queue.put(index)
        for _ in range(future_events):
            queue.get_nowait()

    mailbox = time_ops(run_queue, ops=2 * future_events, repeats=3)
    report.add(f"engine (calendar): {calendar.ops_per_sec:,.0f} events/s")
    report.add(f"engine (heap):     {heap.ops_per_sec:,.0f} events/s")
    report.add(f"kernel latency ratio (calendar/heap): {kernel_ratio:.3f}")
    report.add(f"future-only: {future.ops_per_sec:,.0f} events/s")
    report.add(f"queue:  {mailbox.ops_per_sec:,.0f} ops/s")
    record_metrics("sim_kernel", {
        "engine_events_per_sec": calendar.ops_per_sec,
        "engine_heap_events_per_sec": heap.ops_per_sec,
        "future_events_per_sec": future.ops_per_sec,
        "kernel_latency_ratio": kernel_ratio,
        "queue_ops_per_sec": mailbox.ops_per_sec,
    })
    report.write("perf_sim_kernel")
    # The calendar kernel must stay well ahead of the heap kernel on the
    # representative mix; CI additionally holds the absolute number to a
    # floor against the committed baseline (see repro.bench.perf).
    assert kernel_ratio < 0.66
    assert calendar.ops_per_sec > 200_000
