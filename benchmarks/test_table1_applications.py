"""Table 1 — applications implemented with PLASMA.

Compiles every application's elasticity policy against its actor program
and prints the Table 1 row: application, rule count, and the rules'
behaviors.  The paper's point is the low rule count per application.
"""

from repro.apps import (BTREE_POLICY, CASSANDRA_POLICY, ESTORE_POLICY,
                        HALO_INTERACTION_POLICY, MEDIA_ACTOR_CLASSES,
                        MEDIA_POLICY, METADATA_POLICY, PAGERANK_POLICY,
                        PICCOLO_POLICY, ZEXPANDER_POLICY)
from repro.apps.btree import InnerNode, LeafNode
from repro.apps.cassandra import Replica
from repro.apps.estore import Partition
from repro.apps.halo import Player, Router, Session
from repro.apps.metadata import File, Folder
from repro.apps.pagerank import PageRankWorker
from repro.apps.piccolo import PiccoloWorker, Table
from repro.apps.zexpander import CacheLeaf, IndexNode
from repro.bench import format_table
from repro.core.epl import compile_source

APPLICATIONS = [
    ("Metadata Server", METADATA_POLICY, [Folder, File]),
    ("PageRank", PAGERANK_POLICY, [PageRankWorker]),
    ("E-Store", ESTORE_POLICY, [Partition]),
    ("Media Service", MEDIA_POLICY, MEDIA_ACTOR_CLASSES),
    ("Halo Presence", HALO_INTERACTION_POLICY, [Router, Session, Player]),
    ("B+ tree", BTREE_POLICY, [InnerNode, LeafNode]),
    ("Piccolo", PICCOLO_POLICY, [PiccoloWorker, Table]),
    ("zExpander", ZEXPANDER_POLICY, [IndexNode, CacheLeaf]),
    ("Cassandra", CASSANDRA_POLICY, [Replica]),
]


def test_table1_all_applications_compile(benchmark, report):
    def compile_all():
        rows = []
        for name, policy, classes in APPLICATIONS:
            compiled = compile_source(policy, classes)
            behaviors = sorted({
                type(b).__name__.lower()
                for rule in compiled.source_policy.rules
                for b in rule.behaviors})
            rows.append([name, compiled.rule_count(),
                         ", ".join(behaviors), len(compiled.warnings)])
        return rows

    rows = benchmark.pedantic(compile_all, rounds=3, iterations=1)
    report.add(format_table(
        ["Application", "Rules", "Behaviors", "Warnings"], rows,
        title="Table 1 — applications implemented with PLASMA"))
    report.write("table1_applications")

    assert len(rows) == 9
    # Paper Table 1 rule counts (evaluated apps).
    by_name = {row[0]: row[1] for row in rows}
    assert by_name["Metadata Server"] == 1
    assert by_name["PageRank"] == 1
    assert by_name["E-Store"] == 3
    assert by_name["Media Service"] == 6
    assert by_name["Halo Presence"] == 1
    assert all(row[1] <= 10 for row in rows)
