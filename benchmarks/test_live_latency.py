"""Live-runtime tail latency across a forced migration and a scale-out.

This is the wall-clock counterpart of the Fig. 7/9 simulations: a real
asyncio actor system behind a real HTTP front door, hammered by the
open-loop generator at a fixed Poisson rate while (a) the hot chat room
is force-migrated mid-run and (b) a new server is added and a second
room moved onto it.  The EMR runs live throughout (array-meter
profiling, EPL balance policy), so the run also exercises the full
profile→decide→migrate loop on the wall clock.

Reported: p50/p95/p99 per phase (before / during / after the forced
migration, phased by *scheduled* arrival so there is no coordinated
omission), plus the disposition ledger — which must balance to zero
lost or unaccounted requests across ≥ 10k real HTTP round trips.

Metrics land in BENCH_perf.json as absolute numbers (requests/s, phase
p99s).  They are trajectory data, not gated ratios: wall-clock latency
on shared CI boxes is too noisy to gate, but the series is worth
keeping.
"""

from repro.bench import record_metrics
from repro.live import live_loadtest

RATE_PER_S = 2_600.0
DURATION_S = 4.5
MIGRATE_AT_S = 1.5
DURING_S = 1.0
SCALE_OUT_AT_S = 3.0
MIN_REQUESTS = 10_000


def test_live_latency_across_migration(report):
    result = live_loadtest(
        app_name="chatroom",
        rate_per_s=RATE_PER_S,
        duration_s=DURATION_S,
        servers=2,
        migrate_at_s=MIGRATE_AT_S,
        during_s=DURING_S,
        scale_out_at_s=SCALE_OUT_AT_S,
        emr=True,
        period_ms=250.0,
        connections=48,
        timeout_s=30.0,
        seed=42,
    )

    requests = result["requests"]
    phases = requests["phases"]
    ledger = result["ledger"]
    runtime = result["runtime"]

    report.add(f"live chatroom @ {RATE_PER_S:,.0f} req/s for "
               f"{DURATION_S}s  (forced migration at {MIGRATE_AT_S}s, "
               f"scale-out at {SCALE_OUT_AT_S}s)")
    report.add(f"sent {requests['sent']:,} requests, "
               f"{requests['rps']:,.0f} req/s achieved")
    for phase in sorted(phases):
        s = phases[phase]
        report.add(f"  {phase:9s} n={s['count']:6,}  "
                   f"p50={s['p50']:.2f}ms  p95={s['p95']:.2f}ms  "
                   f"p99={s['p99']:.2f}ms  max={s['max_ms']:.2f}ms")
    report.add(f"ledger: {ledger}")
    report.add(f"forced migrations: {result['migrations']['forced']}")
    report.add(f"scale-out: {result['migrations'].get('scale_out')}")
    report.add(f"emr rounds={result['emr']['rounds_run']}, "
               f"emr migrations={result['emr']['migrations_started']}")
    report.write("live_latency")

    # ≥ 10k real requests actually went through the HTTP stack.
    assert requests["sent"] >= MIN_REQUESTS
    assert requests["ok"] > 0

    # Conservation: both books balance — nothing lost, nothing
    # unaccounted, on either side of the socket.
    assert result["ledger_balanced"], ledger
    assert result["client_balanced"], requests
    assert ledger["issued"] == requests["sent"]
    assert requests["transport_errors"] == 0, requests
    assert requests["timeouts"] == 0, requests
    assert runtime["handler_errors"] == 0

    # The forced migration and the scale-out both actually happened.
    forced = result["migrations"]["forced"]
    assert len(forced) == 2 and all(m["moved"] for m in forced)
    assert "scale_out" in result["migrations"]
    assert runtime["migrations_completed"] >= 2

    # Every phase produced a full latency distribution.
    assert set(phases) == {"1-before", "2-during", "3-after"}
    for s in phases.values():
        assert s["count"] > 0 and s["p99"] is not None
        assert s["p50"] <= s["p95"] <= s["p99"] <= s["max_ms"]

    # The EMR observed the run (profiling hooks live on the wall clock).
    assert result["emr"]["rounds_run"] > 0

    record_metrics("live_latency", {
        "requests_per_sec": requests["rps"],
        "p50_before_ms": phases["1-before"]["p50"],
        "p99_before_ms": phases["1-before"]["p99"],
        "p99_during_ms": phases["2-during"]["p99"],
        "p99_after_ms": phases["3-after"]["p99"],
        "migration_wall_ms": max(m["wall_ms"] for m in forced),
    })
