"""§2.1 motivation — why stateful apps can't live on a storage tier.

The paper measures the serverless + DynamoDB architecture before
introducing PLASMA: "25 ms average latency for DynamoDB write requests
and more than 70 s to write graph vertices, edges, and partitions from
a small 22 MB graph into a DynamoDB table; hence it is currently
impractical to develop stateful applications requiring frequent state
load/store".

This benchmark uploads a 22 MB-serialized graph into the storage tier,
runs stateless-function PageRank over it, and compares per-iteration
time against the actor-based PageRank keeping state in memory.
"""

import random

from repro.apps.pagerank import build_pagerank, run_iterations
from repro.bench import build_cluster, format_table
from repro.graphs import powerlaw_graph
from repro.serverless import (FunctionPlatform, ServerlessPageRank,
                              StorageTier, upload_graph)
from repro.sim import Simulator

NUM_NODES = 4_000
EDGES_PER_NODE = 4
PARTITIONS = 16
#: Serialized record sizes chosen so the graph is ~22 MB, the paper's
#: "small graph" (real adjacency records carry far more than raw ids).
BYTES_PER_NODE = 260.0
BYTES_PER_EDGE = 640.0
ITERATIONS = 5


def test_motivation_storage_tier(benchmark, report):
    graph = powerlaw_graph(NUM_NODES, EDGES_PER_NODE, random.Random(7))
    serialized_mb = (NUM_NODES * BYTES_PER_NODE
                     + graph.num_edges * BYTES_PER_EDGE) / 1e6

    def run_both():
        # Serverless + storage tier.
        sim = Simulator()
        store = StorageTier(sim)
        platform = FunctionPlatform(sim)
        manifest = upload_graph(sim, store, graph, PARTITIONS,
                                bytes_per_node=BYTES_PER_NODE,
                                bytes_per_edge=BYTES_PER_EDGE)
        serverless = ServerlessPageRank(
            sim, store, platform, PARTITIONS, graph.num_nodes,
            bytes_per_node=BYTES_PER_NODE, bytes_per_edge=BYTES_PER_EDGE)
        outcome = serverless.run(ITERATIONS)

        # Actor runtime, same graph and kernel cost, state in memory.
        bed = build_cluster(8, "m5.large", seed=4)
        deployment = build_pagerank(bed, graph, PARTITIONS,
                                    alpha_ms=0.4)
        stats = run_iterations(deployment, ITERATIONS, load_phase=False)
        return manifest, outcome, store, stats

    manifest, outcome, store, stats = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    serverless_iter = sum(outcome.iteration_ms) / len(outcome.iteration_ms)
    actor_iter = sum(stats.times_ms) / len(stats.times_ms)
    write_latency = (store.stats.total_latency_ms
                     / store.stats.operations())
    rows = [
        ["graph serialized size (MB)", f"{serialized_mb:.1f}", "22"],
        ["graph upload time (s)", f"{manifest['upload_ms'] / 1000:.1f}",
         "> 70"],
        ["storage op latency incl. queueing (ms)",
         f"{write_latency:.1f}", "~25 (writes)"],
        ["serverless iteration (s)", f"{serverless_iter / 1000:.1f}",
         "impractical"],
        ["actor-runtime iteration (s)", f"{actor_iter / 1000:.1f}", "—"],
        ["serverless / actor slowdown",
         f"{serverless_iter / actor_iter:.1f}x", ">> 1"],
    ]
    report.add(format_table(["quantity", "measured", "paper"], rows,
                            title="§2.1 motivation — storage-tier vs "
                                  "actor-based stateful PageRank"))
    report.add(f"storage ops per run: {outcome.storage_ops}, "
               f"bytes through the tier: "
               f"{outcome.bytes_moved / 1e6:.0f} MB")
    report.write("motivation_storage_tier")

    # Shapes from the paper's motivation:
    assert 18.0 < serialized_mb < 26.0
    assert manifest["upload_ms"] > 60_000.0       # "> 70 s" territory
    assert serverless_iter > 3.0 * actor_iter     # impractical vs native
    # Every iteration pushes the whole graph state through the store.
    assert outcome.bytes_moved > ITERATIONS * serialized_mb * 1e6
