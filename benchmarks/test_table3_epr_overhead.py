"""Table 3 — normalized EPR (profiling) overhead.

Chat room microbenchmark: {8,16,32} users on an m1.small (s) or
m1.medium (m) instance, with users generating messages at high rate.
Each cell is PLASMA-profiled execution time normalized to the vanilla
run — the paper reports 1.001–1.023 (never above 2.3%).
"""

import pytest

from repro.apps.chatroom import run_chatroom
from repro.bench import format_table

USERS = (8, 16, 32)
INSTANCES = (("s", "m1.small"), ("m", "m1.medium"))
DURATION_MS = 30_000.0


def _overhead(users, instance_type):
    vanilla = run_chatroom(users=users, instance_type=instance_type,
                           profiled=False, duration_ms=DURATION_MS,
                           think_ms=20.0)
    profiled = run_chatroom(users=users, instance_type=instance_type,
                            profiled=True, duration_ms=DURATION_MS,
                            think_ms=20.0,
                            profiling_overhead_cpu_ms=0.0005)
    return profiled.mean_latency_ms / vanilla.mean_latency_ms


def test_table3_epr_overhead(benchmark, report):
    def run_all():
        cells = {}
        for users in USERS:
            for tag, itype in INSTANCES:
                cells[f"{users}-{tag}"] = _overhead(users, itype)
        return cells

    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)
    headers = list(cells)
    rows = [[f"{cells[k]:.3f}" for k in headers]]
    report.add(format_table(headers, rows,
                            title="Table 3 — normalized EPR overhead "
                                  "(PLASMA / vanilla execution time)"))
    report.write("table3_epr_overhead")

    # Shape: overhead within a few percent in every configuration.
    for key, value in cells.items():
        assert 0.97 < value < 1.05, f"{key}: overhead {value:.3f}"
