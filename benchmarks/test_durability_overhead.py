"""Durability overhead and recovery — checkpointing's cost and payoff.

Not a paper figure: the durable-state subsystem is an extension on top
of the reproduction (the paper's §2.2 leaves state fault tolerance to
the host language runtime).  Two experiments, in the style the paper
uses for EPR overhead (Table 3) and E-Store recovery (Fig. 9):

1. the steady-state cost of checkpointing as a function of the
   checkpoint interval — client latency, throughput, and replication
   traffic, against a durability-off baseline;
2. an E-Store run through a mid-run server crash: recovery time, and
   the state-loss window — no acknowledged state older than one
   checkpoint interval may be lost.
"""

import statistics

from repro.actors import Actor, Client
from repro.apps.estore import ESTORE_POLICY, Partition, build_estore
from repro.bench import build_cluster, format_table
from repro.chaos import ChaosEngine, CrashServer, FaultPlan
from repro.cluster import AvailabilityMeter
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.core.tracing import ElasticityTracer
from repro.durability import DurabilityConfig
from repro.sim import Timeout, spawn

EMR = dict(period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0)


class Account(Actor):
    """A stateful worker with a non-trivial snapshot (1 MB)."""

    state_size_mb = 1.0

    def __init__(self):
        self.balance = 0

    def deposit(self, amount):
        yield self.compute(0.5)
        self.balance += amount
        return self.balance


ACCOUNT_POLICY = ("server.cpu.perc > 80 or server.cpu.perc < 60 "
                  "=> balance({Account}, cpu);")


# ----------------------------------------------------------------------
# 1. steady-state overhead vs checkpoint interval (Table-3 style)
# ----------------------------------------------------------------------


def run_steady_state(interval_ms, duration_ms=60_000.0):
    """8 accounts under closed-loop load; returns (completed requests,
    mean latency ms, durability totals)."""
    bed = build_cluster(3, "m5.large", seed=11)
    durability = None
    if interval_ms is not None:
        durability = DurabilityConfig(
            enabled=True, checkpoint_interval_ms=interval_ms,
            replication_factor=2)
    manager = ElasticityManager(
        bed.system, compile_source(ACCOUNT_POLICY, [Account]),
        EmrConfig(durability=durability, **EMR))
    manager.start()
    refs = [bed.system.create_actor(Account, server=bed.servers[i % 3])
            for i in range(8)]
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < duration_ms:
            yield from client.timed_call(ref, "deposit", 1)
            yield Timeout(bed.sim, 5.0)

    for ref in refs:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=duration_ms)

    latencies = [lat for _t, lat in client.latencies.samples]
    totals = (manager.durability.summary()["totals"]
              if manager.durability is not None else {})
    return len(latencies), statistics.fmean(latencies), totals


def test_checkpoint_overhead_vs_interval(report):
    intervals = [None, 20_000.0, 10_000.0, 5_000.0, 2_000.0]
    rows = []
    results = {}
    for interval in intervals:
        completed, mean_lat, totals = run_steady_state(interval)
        results[interval] = (completed, mean_lat, totals)
    base_completed, base_lat, _ = results[None]
    for interval in intervals:
        completed, mean_lat, totals = results[interval]
        rows.append([
            "off" if interval is None else f"{interval / 1000:.0f} s",
            completed,
            f"{mean_lat:.3f}",
            f"{100 * (mean_lat / base_lat - 1):+.2f}%",
            totals.get("checkpoints_written", 0),
            totals.get("checkpoints_acked", 0),
            f"{totals.get('bytes_replicated', 0) / 2 ** 20:.0f}",
        ])

    report.add(format_table(
        ["interval", "requests", "mean lat (ms)", "lat overhead",
         "ckpt written", "ckpt acked", "MiB replicated"],
        rows,
        title="Durability overhead — 8×1 MB actors, 60 s, "
              "replication factor 2"))

    # Replication traffic scales with checkpoint frequency...
    replicated = [results[i][2].get("bytes_replicated", 0)
                  for i in intervals[1:]]
    assert replicated == sorted(replicated)
    assert results[2_000.0][2]["checkpoints_written"] > \
        results[20_000.0][2]["checkpoints_written"]
    # ...while the client-visible cost stays marginal (the paper's
    # sub-percent EPR overhead is the benchmark to beat; allow a little
    # more here since each write burns serialize CPU and NIC time).
    for interval in intervals[1:]:
        completed, mean_lat, _ = results[interval]
        assert mean_lat <= base_lat * 1.05
        assert completed >= base_completed * 0.95
    # Steady state without faults: every write is eventually acked.
    totals = results[2_000.0][2]
    assert totals["checkpoints_lost"] == 0
    assert totals["checkpoints_acked"] >= totals["checkpoints_written"] - 8
    report.write("durability_overhead")


# ----------------------------------------------------------------------
# 2. E-Store through a mid-run crash: recovery time + state-loss window
# ----------------------------------------------------------------------

CRASH_AT_MS = 12_000.0
CHECKPOINT_INTERVAL_MS = 2_000.0


def test_estore_recovery_preserves_acknowledged_state(report):
    bed = build_cluster(4, "m1.small", seed=13)
    setup = build_estore(bed, num_roots=12, children_per_root=2)

    manager = ElasticityManager(
        bed.system, compile_source(ESTORE_POLICY, [Partition]),
        EmrConfig(suspicion_timeout_ms=6_000.0,
                  durability=DurabilityConfig(
                      enabled=True,
                      checkpoint_interval_ms=CHECKPOINT_INTERVAL_MS),
                  **EMR))
    manager.start()
    tracer = ElasticityTracer(manager)
    tracer.attach()

    # Capture each partition's read counter the instant it is restored,
    # to compare against the pre-crash timeline sampled below.
    restored_reads = {}

    def on_event(kind, detail):
        if kind == "state-restored":
            record = bed.system.directory.lookup(detail["actor_id"])
            restored_reads[detail["actor_id"]] = \
                (detail["age_ms"], record.instance.reads)

    manager.add_listener(on_event)

    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=CRASH_AT_MS, server_index=2),)), manager=manager)
    engine.start()

    meter = AvailabilityMeter(bed.sim, window_ms=5_000.0)
    clients = [Client(bed.system, name=f"c{i}", timeout_ms=2_000.0,
                      max_retries=6, backoff_base_ms=200.0,
                      backoff_cap_ms=1_600.0, meter=meter)
               for i in range(10)]
    rng = bed.streams.stream("estore-key-pick")

    def client_loop(client):
        while bed.sim.now < 40_000.0:
            root = setup.picker.pick()
            yield from client.reliable_call(root, "read",
                                            rng.randrange(10_000))
            yield Timeout(bed.sim, 10.0)

    for client in clients:
        spawn(bed.sim, client_loop(client))

    # Sample every partition's applied-read count on a fine grid: the
    # acknowledged-state floor for each restore is read off this
    # timeline at (crash - checkpoint interval).
    samples = []
    all_refs = [ref for root, kids in zip(setup.roots, setup.children)
                for ref in [root] + kids]

    def monitor():
        while bed.sim.now < CRASH_AT_MS:
            row = {}
            for ref in all_refs:
                record = bed.system.directory.try_lookup(ref.actor_id)
                if record is not None:
                    row[ref.actor_id] = record.instance.reads
            samples.append((bed.sim.now, row))
            yield Timeout(bed.sim, 250.0)

    spawn(bed.sim, monitor(), name="reads-monitor")
    bed.run(until_ms=40_000.0)

    [crashed] = tracer.of_kind("server-crashed")
    lost = crashed.detail["lost_actors"]
    assert lost >= 1
    assert len(tracer.of_kind("actor-resurrected")) == lost
    # Every lost partition had an acknowledged checkpoint to come back
    # from (the baseline write at start() guarantees at least one).
    assert len(restored_reads) == lost
    assert manager.durability.restore_misses == 0

    # The acceptance bar: nothing acknowledged before
    # (crash - checkpoint interval) may be lost.  The newest sample at
    # or before that floor is a lower bound on what the restored state
    # must still contain.
    floor_time = CRASH_AT_MS - CHECKPOINT_INTERVAL_MS
    floor = {}
    for t, row in samples:               # newest sample at/before floor
        if t <= floor_time:
            floor = row
    last = samples[-1][1]                # newest pre-crash sample
    loss_rows = []
    for actor_id, (age_ms, reads_after) in sorted(restored_reads.items()):
        reads_floor = floor.get(actor_id, 0)
        reads_last = last.get(actor_id, 0)
        assert reads_after >= reads_floor, (
            f"actor {actor_id}: restored {reads_after} reads but "
            f"{reads_floor} were applied {CHECKPOINT_INTERVAL_MS} ms "
            f"before the crash")
        loss_rows.append([actor_id, reads_last, reads_after,
                          reads_last - reads_after, f"{age_ms:.0f}"])

    # Availability recovered fully after the outage.
    assert meter.availability_between(CRASH_AT_MS, CRASH_AT_MS + 6_000.0) \
        < 1.0
    assert meter.availability_between(25_000.0, 40_000.0) == 1.0
    for root, kids in zip(setup.roots, setup.children):
        for ref in [root] + kids:
            record = bed.system.directory.try_lookup(ref.actor_id)
            assert record is not None and record.server.running

    totals = manager.durability.summary()["totals"]
    report.add(format_table(
        ["partition", "reads @ crash", "reads restored", "lost",
         "checkpoint age (ms)"],
        loss_rows,
        title="E-Store mid-run crash — per-partition state-loss window "
              f"(crash @ {CRASH_AT_MS:.0f} ms, checkpoint interval "
              f"{CHECKPOINT_INTERVAL_MS:.0f} ms)"))
    report.add(f"partitions lost/restored: {lost}/{len(restored_reads)}, "
               f"restore misses: {totals['restore_misses']}")
    report.add(f"checkpoints written/acked/lost: "
               f"{totals['checkpoints_written']}/"
               f"{totals['checkpoints_acked']}/"
               f"{totals['checkpoints_lost']}, "
               f"replicated: {totals['bytes_replicated'] / 2 ** 20:.0f} MiB")
    report.add(f"availability during fault: "
               f"{100 * meter.availability_between(CRASH_AT_MS, CRASH_AT_MS + 6_000.0):.1f}%, "
               f"after recovery: "
               f"{100 * meter.availability_between(25_000.0, 40_000.0):.1f}%")
    report.write("durability_recovery_estore")
