"""Fig. 5 — Metadata Server: reserve & colocate vs default vs no rule.

4 folders x 8 files on one m1.small, one hot folder taking 50% of the
requests from 16 clients.  The PLASMA rule reserves the hot folder an
idle server *and* colocates its files; the default rule migrates the hot
actor alone; no-rule leaves everything in place.  Paper: the PLASMA rule
cuts latency ~40%; def-rule shows no visible benefit over no-rule.
"""

from repro.apps.metadata import run_metadata_experiment
from repro.bench import format_series, format_table

COMMON = dict(num_clients=16, duration_ms=220_000.0, period_ms=80_000.0)


def test_fig5_metadata_server(benchmark, report):
    def run_all():
        return {mode: run_metadata_experiment(mode, **COMMON)
                for mode in ("res-col-rule", "def-rule", "no-rule")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[mode, result.mean_before_ms, result.mean_after_ms,
             result.migrations]
            for mode, result in results.items()]
    report.add(format_table(
        ["setup", "latency before (ms)", "latency after (ms)",
         "migrations"], rows,
        title="Fig. 5 — Metadata Server latency around the elasticity "
              "period"))
    for mode, result in results.items():
        report.add(format_series(f"fig5/{mode}", result.curve,
                                 y_label="latency(ms)"))
    report.write("fig5_metadata")

    rescol = results["res-col-rule"]
    default = results["def-rule"]
    none = results["no-rule"]
    # The semantic rule cuts latency substantially (paper: ~40%).
    gain = 1.0 - rescol.mean_after_ms / none.mean_after_ms
    assert gain > 0.30, f"res-col gain only {gain:.2%}"
    # The blind rule buys roughly nothing.
    assert default.mean_after_ms > 0.85 * none.mean_after_ms
    # The hot folder moved with all 8 of its files.
    assert rescol.migrations == 9
