"""Fig. 11 — Halo Presence Service.

(a) the interaction rule (pin session, colocate its players) vs the
    semantics-free frequency-colocation default rule: smoother, lower
    latency from the moment clients join.
(b) per-client latency in the first round under the default rule:
    fortuitously placed clients vs misplaced ones (~35% higher latency
    until the first redistribution).
(c) the resource-rule variant on a 64-server fleet with 1, 2 and 4
    GEMs: more GEMs only slightly affect latency.
"""

from repro.apps.halo import (run_halo_gem_experiment,
                             run_halo_interaction_experiment)
from repro.bench import format_series, format_table, mean

INTER_COMMON = dict(num_clients=32, rounds=4, round_ms=180_000.0,
                    period_ms=70_000.0, heartbeat_ms=300.0)


def test_fig11a_interaction_vs_default_rule(benchmark, report):
    def run_all():
        return {mode: run_halo_interaction_experiment(mode, **INTER_COMMON)
                for mode in ("inter-rule", "def-rule")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for mode, result in results.items():
        report.add(format_series(f"fig11a/{mode}", result.curve,
                                 y_label="latency(ms)"))
    rows = [[mode, result.mean_latency_ms, result.migrations]
            for mode, result in results.items()]
    report.add(format_table(["rule", "mean latency (ms)", "migrations"],
                            rows, title="Fig. 11a — Halo heartbeat "
                                        "latency by rule"))
    report.write("fig11a_halo_rules")

    inter = results["inter-rule"]
    default = results["def-rule"]
    assert inter.mean_latency_ms < default.mean_latency_ms
    # inter-rule needs no migrations: placement was right from creation.
    assert inter.migrations == 0
    # The default rule's curve is rougher (degraded spans per round).
    def spread(result):
        values = [lat for _t, lat in result.curve]
        return max(values) - min(values)

    assert spread(inter) <= spread(default)


def test_fig11b_per_client_first_round(benchmark, report):
    def run():
        return run_halo_interaction_experiment("def-rule", **INTER_COMMON)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    first_round_end = INTER_COMMON["round_ms"]
    rows = []
    first_round_means = []
    for name, samples in sorted(result.per_client.items()):
        early = [lat for t, lat in samples if t < first_round_end]
        if not early:
            continue
        value = mean(early)
        first_round_means.append(value)
        rows.append([name, value])
    report.add(format_table(
        ["client", "first-round latency (ms)"], rows[:8],
        title="Fig. 11b — per-client latency, first round, def-rule"))
    well_placed = min(first_round_means)
    misplaced = max(first_round_means)
    report.add(f"misplaced / well-placed = {misplaced / well_placed:.2f} "
               f"(paper: ~1.35)")
    report.write("fig11b_halo_clients")

    # Shape: misplaced clients pay a significant premium (paper ~35%).
    assert misplaced > 1.15 * well_placed


def test_fig11c_gem_count(benchmark, report):
    def run_all():
        return {gems: run_halo_gem_experiment(
            gem_count=gems, num_servers=32, num_sessions=32,
            num_routers=16, num_clients=64, period_ms=80_000.0,
            router_cpu_ms=3.0, heartbeat_ms=100.0,
            duration_ms=600_000.0, routers_on_first=4)
            for gems in (1, 2, 4)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[gems, result.settle_latency_ms, result.migrations]
            for gems, result in results.items()]
    report.add(format_table(
        ["GEMs", "settled latency (ms)", "migrations"], rows,
        title="Fig. 11c — Halo latency vs number of GEMs"))
    for gems, result in results.items():
        report.add(format_series(f"fig11c/{gems}-GEM", result.curve,
                                 y_label="latency(ms)"))
    report.write("fig11c_halo_gems")

    # Every configuration balances the routers away: latency settles
    # well below the congestion peak reached while clients pile onto
    # the 4 router servers...
    for gems, result in results.items():
        peak = max(lat for t, lat in result.curve if t < 200_000.0)
        assert result.settle_latency_ms < 0.85 * peak, f"{gems} GEMs"
    # ...and the number of GEMs has only a small impact (paper Fig 11c).
    settles = [r.settle_latency_ms for r in results.values()]
    assert max(settles) < 1.5 * min(settles)
