"""Chaos recovery — applications surviving injected failures.

Not a paper figure: this exercises the robustness layer added on top of
the reproduction.  A :class:`FaultPlan` crashes one of four servers (and
later a GEM) in the middle of a run; the EMR's failure detector notices
the missed heartbeats, resurrects the lost actors through rule-aware
placement on the survivors, and a surviving GEM adopts the dead GEM's
servers.  Clients ride over the outage with timeout + retry, and an
:class:`AvailabilityMeter` documents the dip and the recovery.
"""

import random

from pagerank_common import PERIOD_MS  # noqa: F401  (shared conventions)
from repro.actors import Client, RuntimeHooks
from repro.apps.estore import ESTORE_POLICY, Partition, build_estore
from repro.apps.pagerank import (EXCHANGE_GRACE_MS, PAGERANK_POLICY,
                                 PageRankWorker, build_pagerank)
from repro.bench import build_cluster, format_table
from repro.chaos import ChaosEngine, CrashServer, FaultPlan, KillGem
from repro.cluster import AvailabilityMeter
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.core.tracing import ElasticityTracer
from repro.graphs import social_graph
from repro.sim import Timeout, spawn

#: Fault-tolerant EMR tuning shared by both experiments: 5 s elasticity
#: periods, suspicion after 6 s of LEM silence (detector ticks every 3 s,
#: so worst-case detection latency stays under two periods).
CHAOS_EMR = dict(period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0,
                 suspicion_timeout_ms=6_000.0)

CRASH_AT_MS = 21_000.0
KILL_GEM_AT_MS = 35_000.0
TWO_PERIODS_MS = 2 * CHAOS_EMR["period_ms"]
DAMPING = 0.85
TOL = 1e-3


class _RewireOnResurrect(RuntimeHooks):
    """Re-establishes post-construction wiring a resurrection loses.

    Constructor arguments survive resurrection; state installed *after*
    construction (PageRank peer maps, E-Store children lists) does not —
    that re-wiring is the application's recovery hook, exactly as the
    paper leaves non-constructor state to the host language runtime.
    """

    def __init__(self, wire):
        self.wire = wire
        self.resurrected = []

    def on_actor_resurrected(self, record):
        self.resurrected.append((record.ref, record.server))
        self.wire(record)


def _parallel_calls(bed, client, refs, function, *args):
    procs = [spawn(bed.sim,
                   client.reliable_call(ref, function, *args),
                   name=f"call/{function}/{i}")
             for i, ref in enumerate(refs)]
    results = []
    for proc in procs:
        results.append((yield proc))
    return results


def test_pagerank_converges_through_server_crash_and_gem_kill(report):
    bed = build_cluster(4, "m5.large", seed=7)
    graph = social_graph(800, 3, superhubs=4, hub_fraction=0.06,
                         rng=random.Random(2))
    deployment = build_pagerank(bed, graph, 8)
    workers = deployment.workers
    peer_map = {part: ref for part, ref in enumerate(workers)}

    policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        gem_count=2, **CHAOS_EMR))
    manager.start()
    tracer = ElasticityTracer(manager)
    tracer.attach()

    rewire = _RewireOnResurrect(
        lambda record: record.instance.set_peers(peer_map))
    bed.system.add_hooks(rewire)

    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=CRASH_AT_MS, server_index=1),
        KillGem(at_ms=KILL_GEM_AT_MS, gem_id=0),
    )), manager=manager)
    engine.start()

    meter = AvailabilityMeter(bed.sim, window_ms=5_000.0)
    client = Client(bed.system, name="chaos-driver", timeout_ms=3_000.0,
                    max_retries=8, backoff_base_ms=250.0,
                    backoff_cap_ms=2_000.0, meter=meter)

    history = []
    finished = []

    def driver():
        yield from _parallel_calls(bed, client, workers, "load_data")
        while True:
            dangling = yield from _parallel_calls(
                bed, client, workers, "compute_contribs", DAMPING)
            yield from _parallel_calls(bed, client, workers, "send_updates")
            yield Timeout(bed.sim, EXCHANGE_GRACE_MS)
            dangling_total = sum(d for d in dangling if d is not None)
            deltas = yield from _parallel_calls(
                bed, client, workers, "apply_update", DAMPING,
                dangling_total)
            complete = [d for d in deltas if d is not None]
            delta = sum(complete) if len(complete) == len(deltas) \
                else float("inf")
            history.append((bed.sim.now, delta))
            if bed.sim.now >= 55_000.0 and delta < TOL:
                break
            if len(history) >= 300:
                break
        finished.append(True)

    spawn(bed.sim, driver(), name="chaos-pagerank-driver")
    while not finished:
        if bed.sim.peek() is None:
            raise RuntimeError("driver stalled (empty event heap)")
        bed.sim.run(until=bed.sim.now + 10_000.0)
        assert bed.sim.now < 3_600_000.0, "driver did not finish in time"

    # 1. PageRank converged despite losing a quarter of the fleet.
    final_delta = history[-1][1]
    assert final_delta < TOL

    # 2. The crash was detected and every lost worker resurrected on a
    #    surviving server within two elasticity periods.
    [crashed] = tracer.of_kind("server-crashed")
    # The balance rule shuffles workers before the crash, so the exact
    # victim set varies — but someone must die, and everyone who died
    # must come back.
    assert crashed.detail["lost_actors"] >= 1
    assert tracer.of_kind("server-suspected")
    resurrections = tracer.of_kind("actor-resurrected")
    assert len(resurrections) == crashed.detail["lost_actors"]
    for event in resurrections:
        assert event.time_ms - crashed.time_ms <= TWO_PERIODS_MS
    for ref, server in rewire.resurrected:
        assert server.running
        record = bed.system.directory.lookup(ref.actor_id)
        assert record.server.running

    # 3. Availability dipped during the fault window, then returned to
    #    100% once the actors were back.
    during = meter.availability_between(CRASH_AT_MS, CRASH_AT_MS + 6_000.0)
    after = meter.availability_between(28_000.0, bed.sim.now)
    assert during < 1.0
    assert after == 1.0
    assert meter.recovery_time_ms() is not None
    assert client.dead_letters == []

    # 4. The GEM kill was injected and a survivor adopted its servers.
    [failover] = tracer.of_kind("gem-failover")
    assert failover.detail == {"failed_gem": 0, "adopter": 1,
                               "respawned": False}
    assert len(tracer.of_kind("fault-injected")) == 2

    windows = [(start, counts["success"], counts["failure"],
                counts["timeout"],
                meter.availability_between(start, start + 5_000.0))
               for start, counts in meter.per_window()]
    report.add(format_table(
        ["window(ms)", "ok", "fail", "timeout", "availability"],
        [[start, ok, fail, t_o, f"{100 * avail:.1f}%"]
         for start, ok, fail, t_o, avail in windows],
        title="Chaos recovery — PageRank availability per 5 s window "
              f"(server crash @ {CRASH_AT_MS:.0f} ms, "
              f"GEM kill @ {KILL_GEM_AT_MS:.0f} ms)"))
    report.add(f"iterations: {len(history)}, final delta: "
               f"{final_delta:.2e}")
    report.add(f"recovery span: {meter.recovery_time_ms():.0f} ms, "
               f"retries used: {client.retries_used}, "
               f"resurrected: {len(resurrections)} workers")
    net = tracer.network_summary()
    report.add(f"fabric drops: {net['messages_dropped']} total, "
               f"{net['partition_drops']} charged to partition cuts")
    report.write("chaos_recovery_pagerank")


def test_estore_rebalances_through_mid_run_crash(report):
    bed = build_cluster(4, "m1.small", seed=13)
    setup = build_estore(bed, num_roots=12, children_per_root=2)
    kids_of = {root.actor_id: kids
               for root, kids in zip(setup.roots, setup.children)}

    policy = compile_source(ESTORE_POLICY, [Partition])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CHAOS_EMR))
    manager.start()
    tracer = ElasticityTracer(manager)
    tracer.attach()

    def rewire_children(record):
        kids = kids_of.get(record.ref.actor_id)
        if kids is not None:
            record.instance.children = list(kids)

    rewire = _RewireOnResurrect(rewire_children)
    bed.system.add_hooks(rewire)

    crash_at = 12_000.0
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=crash_at, server_index=2),)), manager=manager)
    engine.start()

    # Enough offered load that losing a quarter of the fleet leaves the
    # survivors imbalanced — the balance/reserve rules must actually
    # migrate partitions, not just absorb the crash.
    meter = AvailabilityMeter(bed.sim, window_ms=5_000.0)
    clients = [Client(bed.system, name=f"c{i}", timeout_ms=2_000.0,
                      max_retries=6, backoff_base_ms=200.0,
                      backoff_cap_ms=1_600.0, meter=meter)
               for i in range(20)]
    rng = bed.streams.stream("estore-key-pick")

    def client_loop(client):
        while bed.sim.now < 40_000.0:
            root = setup.picker.pick()
            yield from client.reliable_call(root, "read",
                                            rng.randrange(10_000))
            yield Timeout(bed.sim, 10.0)

    for client in clients:
        spawn(bed.sim, client_loop(client))

    bed.run(until_ms=10_000.0)
    rounds_before = {sid: lem.rounds_run
                     for sid, lem in manager.lems.items()}
    bed.run(until_ms=40_000.0)

    # Every partition — roots and children — is alive again.
    for root, kids in zip(setup.roots, setup.children):
        for ref in [root] + kids:
            record = bed.system.directory.try_lookup(ref.actor_id)
            assert record is not None
            assert record.server.running

    [crashed] = tracer.of_kind("server-crashed")
    assert crashed.detail["lost_actors"] >= 1
    resurrections = tracer.of_kind("actor-resurrected")
    assert len(resurrections) == crashed.detail["lost_actors"]
    for event in resurrections:
        assert event.time_ms - crashed.time_ms <= TWO_PERIODS_MS

    # Service availability: a dip during the outage, clean afterwards.
    assert meter.availability_between(crash_at, crash_at + 6_000.0) < 1.0
    assert meter.availability_between(20_000.0, 40_000.0) == 1.0

    # The EMR kept running rounds on the survivors after the crash, and
    # its rules rebalanced the denser post-crash placement.
    for sid, lem in manager.lems.items():
        if lem.server.running:
            assert lem.rounds_run > rounds_before.get(sid, 0)
    assert manager.migrations_total() > 0

    report.add(format_table(
        ["window(ms)", "ok", "fail", "timeout"],
        [[start, counts["success"], counts["failure"], counts["timeout"]]
         for start, counts in meter.per_window()],
        title="Chaos recovery — E-Store outcomes per 5 s window "
              f"(server crash @ {crash_at:.0f} ms)"))
    report.add(f"availability during fault: "
               f"{100 * meter.availability_between(crash_at, crash_at + 6_000.0):.1f}%, "
               f"after recovery: "
               f"{100 * meter.availability_between(20_000.0, 40_000.0):.1f}%")
    report.add(f"migrations over the run: {manager.migrations_total()}, "
               f"resurrected partitions: {len(resurrections)}")
    report.write("chaos_recovery_estore")
