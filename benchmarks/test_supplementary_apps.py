"""Supplementary — the Table 1 applications the paper lists but does not
evaluate (B+ tree, Piccolo, zExpander, Cassandra).

One scenario per application showing its rules doing their job:
measurable placement improvement (latency, round time, memory pressure,
or replica spread) relative to the pre-elasticity deployment.
"""

import pytest

from repro.actors import Client
from repro.apps.btree import BTREE_POLICY, InnerNode, LeafNode, build_btree
from repro.apps.cassandra import (CASSANDRA_POLICY, Replica,
                                  build_cassandra, replica_spread)
from repro.apps.piccolo import (PICCOLO_POLICY, PiccoloWorker, Table,
                                build_piccolo, run_piccolo_rounds)
from repro.apps.zexpander import (ZEXPANDER_POLICY, CacheLeaf, IndexNode,
                                  build_zexpander)
from repro.bench import build_cluster, format_table, mean
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import Timeout, spawn

CONFIG = dict(period_ms=8_000.0, gem_wait_ms=500.0, lem_stagger_ms=20.0)


def _btree_scenario():
    """Colocate inner levels, separate leaves; measure lookup latency."""
    def run(elastic):
        bed = build_cluster(4)
        tree = build_btree(bed, fanout=4, leaf_count=16)
        manager = None
        if elastic:
            policy = compile_source(BTREE_POLICY, [InnerNode, LeafNode])
            manager = ElasticityManager(bed.system, policy,
                                        EmrConfig(**CONFIG))
            manager.start()
        clients = [Client(bed.system, name=f"c{i}") for i in range(8)]
        rng = bed.streams.stream("btree-keys")

        def loop(client):
            while bed.sim.now < 60_000.0:
                yield from tree.get(client, rng.randrange(100_000))
                yield Timeout(bed.sim, 5.0)

        for client in clients:
            spawn(bed.sim, loop(client))
        bed.run(until_ms=60_000.0)
        tail = [lat for client in clients
                for t, lat in client.latencies.samples if t > 30_000.0]
        migrations = manager.migrations_total() if manager else 0
        return mean(tail), migrations

    base, _ = run(False)
    ruled, migrations = run(True)
    return ["B+ tree", f"lookup latency {base:.2f} -> {ruled:.2f} ms",
            migrations, ruled < base * 1.05]


def _piccolo_scenario():
    """Colocate workers with their tables; measure round time."""
    def run(elastic):
        bed = build_cluster(4)
        job = build_piccolo(bed, num_workers=8, keys_per_partition=256)
        manager = None
        if elastic:
            policy = compile_source(PICCOLO_POLICY, [PiccoloWorker, Table])
            manager = ElasticityManager(bed.system, policy,
                                        EmrConfig(**CONFIG))
            manager.start()
            bed.run(until_ms=20_000.0)  # let colocation happen first
        times = run_piccolo_rounds(job, rounds=10)
        migrations = manager.migrations_total() if manager else 0
        return mean(times[-5:]), migrations

    base, _ = run(False)
    ruled, migrations = run(True)
    return ["Piccolo", f"round time {base:.1f} -> {ruled:.1f} ms",
            migrations, ruled < base]


def _zexpander_scenario():
    """Reserve memory-heavy leaves onto servers with idle memory."""
    bed = build_cluster(3, instance_type="m1.small")
    cache = build_zexpander(bed, num_leaves=5)
    before = bed.servers[0].memory_percent()
    policy = compile_source(ZEXPANDER_POLICY, [IndexNode, CacheLeaf])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    bed.run(until_ms=120_000.0)
    after = bed.servers[0].memory_percent()
    return ["zExpander", f"origin mem {before:.0f}% -> {after:.0f}%",
            manager.migrations_total(), after < 70.0 < before]


def _cassandra_scenario():
    """Separate replicas of each shard onto distinct servers."""
    bed = build_cluster(3)
    table = build_cassandra(bed, num_shards=3, replication_factor=3,
                            all_on_first=True)
    before = mean(list(replica_spread(table).values()))
    policy = compile_source(CASSANDRA_POLICY, [Replica])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    bed.run(until_ms=120_000.0)
    after_spread = replica_spread(table)
    after = mean(list(after_spread.values()))
    return ["Cassandra",
            f"servers per replica group {before:.1f} -> {after:.1f}",
            manager.migrations_total(),
            all(count >= 2 for count in after_spread.values())]


def test_supplementary_table1_apps(benchmark, report):
    def run_all():
        return [_btree_scenario(), _piccolo_scenario(),
                _zexpander_scenario(), _cassandra_scenario()]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report.add(format_table(
        ["application", "effect of its rules", "migrations", "improved"],
        rows, title="Supplementary — the remaining Table 1 applications"))
    report.write("supplementary_apps")

    for name, _effect, migrations, improved in rows:
        assert improved, f"{name} rules produced no improvement"
        if name != "B+ tree":  # its win is structural, moves are few
            assert migrations >= 1
