"""Shared setup for the PageRank benchmarks (Figs. 6-8).

Substitutions (DESIGN.md §2): the LiveJournal graph is replaced by a
scaled-down social graph with superhub nodes, partitioned by our
multilevel (METIS-like) partitioner into 32 node-balanced partitions
whose *compute* cost is skewed — the property the experiments exercise.
"""

import random

from repro.apps.pagerank import (PAGERANK_POLICY, PageRankWorker,
                                 build_pagerank, run_iterations)
from repro.baselines import OrleansBalancer
from repro.bench import ClusterRecorder, build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.graphs import social_graph

NUM_PARTITIONS = 32
NUM_SERVERS = 8
PERIOD_MS = 8_000.0


def standard_graph():
    return social_graph(3000, 3, superhubs=6, hub_fraction=0.06,
                        rng=random.Random(2))


def random_placement(seed, servers=NUM_SERVERS,
                     partitions=NUM_PARTITIONS):
    rng = random.Random(seed)
    return [rng.randrange(servers) for _ in range(partitions)]


def run_static(graph, placement, mode, iterations=40, seed=4,
               record=False):
    """One fixed-fleet run.  ``mode``: plasma | orleans | none."""
    bed = build_cluster(NUM_SERVERS, "m5.large", seed=seed)
    deployment = build_pagerank(bed, graph, NUM_PARTITIONS,
                                placement=list(placement))
    manager = None
    if mode == "plasma":
        policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
        manager = ElasticityManager(bed.system, policy, EmrConfig(
            period_ms=PERIOD_MS, gem_wait_ms=500.0))
        manager.start()
    elif mode == "orleans":
        manager = OrleansBalancer(bed.system, period_ms=PERIOD_MS)
        manager.start()
    recorder = None
    if record:
        recorder = ClusterRecorder(bed.system, sample_ms=PERIOD_MS,
                                   window_ms=PERIOD_MS)
        recorder.start()
    stats = run_iterations(deployment, iterations)
    migrations = manager.migrations_total() if manager else 0
    return {"stats": stats, "migrations": migrations, "bed": bed,
            "recorder": recorder, "deployment": deployment,
            "manager": manager}


def run_dynamic(graph, iterations=80, max_servers=16, seed=4,
                record=False):
    """PLASMA dynamic resource allocation: start with 1 server."""
    bed = build_cluster(1, "m5.large", seed=seed,
                        boot_delay_ms=20_000.0, max_servers=max_servers)
    deployment = build_pagerank(bed, graph, NUM_PARTITIONS,
                                placement=[0] * NUM_PARTITIONS)
    policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=PERIOD_MS, gem_wait_ms=2_000.0, allow_scale_out=True,
        max_scale_out_per_period=2))
    manager.start()
    recorder = None
    if record:
        recorder = ClusterRecorder(bed.system, sample_ms=PERIOD_MS,
                                   window_ms=PERIOD_MS)
        recorder.start()
    stats = run_iterations(deployment, iterations)
    return {"stats": stats, "manager": manager, "bed": bed,
            "recorder": recorder, "deployment": deployment}


def run_conservative(graph, iterations=30, seed=4):
    """Over-provisioned fleet: 16 servers, one worker per vCPU."""
    bed = build_cluster(16, "m5.large", seed=seed)
    deployment = build_pagerank(
        bed, graph, NUM_PARTITIONS,
        placement=[i // 2 for i in range(NUM_PARTITIONS)])
    stats = run_iterations(deployment, iterations)
    return {"stats": stats, "bed": bed, "deployment": deployment}


def steady_time(stats, tail=5):
    return sum(stats.times_ms[-tail:]) / tail
