"""Fig. 7 — PageRank dynamic workload balance (fixed fleet).

(a) per-iteration computation time, normalized to the first iteration of
    the respective no-elasticity run: PLASMA w/ and w/o elasticity vs
    Mizan w/ and w/o elasticity.  Paper: PLASMA's elasticity cuts
    iteration time up to ~24%; Mizan's vertex migration only ~3%.
(b) CPU% of each server over redistributions.
(c) worker-actor distribution over redistributions.
"""

from pagerank_common import (NUM_SERVERS, PERIOD_MS, random_placement,
                             run_static, standard_graph, steady_time)
from repro.apps.pagerank import build_pagerank, run_iterations
from repro.baselines import MizanMigrator
from repro.bench import build_cluster, format_series, format_table

SEED = 104
#: Mizan's framework runs the same kernel ~4x slower than the actor
#: runtime (paper: "absolute iteration time of Mizan is about 4x longer
#: than that of PLASMA"); both systems are therefore normalized to their
#: own baseline.
MIZAN_COMPUTE_SCALE = 4.0


def _run_mizan(graph, placement, elastic):
    bed = build_cluster(NUM_SERVERS, "m5.large", seed=4)
    deployment = build_pagerank(bed, graph, 32, placement=list(placement),
                                compute_scale=MIZAN_COMPUTE_SCALE)
    hook = None
    if elastic:
        migrator = MizanMigrator(deployment, migrate_fraction=0.05,
                                 imbalance_trigger=1.10)
        hook = migrator.on_iteration
    stats = run_iterations(deployment, 19, on_iteration=hook)
    return stats


def test_fig7a_iteration_time_vs_mizan(benchmark, report):
    graph = standard_graph()
    placement = random_placement(SEED)

    def run_all():
        plasma = run_static(graph, placement, "plasma",
                            iterations=19)["stats"]
        plasma_off = run_static(graph, placement, "none",
                                iterations=19)["stats"]
        mizan = _run_mizan(graph, placement, elastic=True)
        mizan_off = _run_mizan(graph, placement, elastic=False)
        return plasma, plasma_off, mizan, mizan_off

    plasma, plasma_off, mizan, mizan_off = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    plasma_base = plasma_off.times_ms[0]
    mizan_base = mizan_off.times_ms[0]
    series = {
        "PLASMA (w/ elasticity)": [t / plasma_base
                                   for t in plasma.times_ms],
        "PLASMA (w/o elasticity)": [t / plasma_base
                                    for t in plasma_off.times_ms],
        "Mizan (w/ elasticity)": [t / mizan_base for t in mizan.times_ms],
        "Mizan (w/o elasticity)": [t / mizan_base
                                   for t in mizan_off.times_ms],
    }
    for name, values in series.items():
        report.add(format_series(
            f"fig7a/{name}", list(enumerate(values, start=1)),
            x_label="iteration", y_label="normalized time"))

    plasma_gain = 1.0 - (steady_time(plasma) / steady_time(plasma_off))
    mizan_gain = 1.0 - (steady_time(mizan) / steady_time(mizan_off))
    report.add(f"PLASMA elasticity gain: {100 * plasma_gain:.1f}% "
               f"(paper: up to 24%)")
    report.add(f"Mizan elasticity gain: {100 * mizan_gain:.1f}% "
               f"(paper: up to 3%)")
    report.write("fig7a_pagerank_vs_mizan")

    # Shape: PLASMA's balancing beats Mizan's vertex migration clearly.
    assert plasma_gain > 0.05
    assert plasma_gain > mizan_gain


def test_fig7bc_cpu_and_actor_distribution(benchmark, report):
    graph = standard_graph()
    placement = random_placement(SEED)

    def run_recorded():
        return run_static(graph, placement, "plasma", record=True)

    outcome = benchmark.pedantic(run_recorded, rounds=1, iterations=1)
    recorder = outcome["recorder"]

    spreads = []
    for name in sorted(recorder.cpu):
        series = recorder.cpu[name]
        report.add(format_series(f"fig7b/cpu%/{name}",
                                 series.samples, y_label="cpu%"))
    for name in sorted(recorder.actor_counts):
        series = recorder.actor_counts[name]
        report.add(format_series(f"fig7c/actors/{name}",
                                 series.samples, y_label="actors"))

    # CPU spread narrows between the early and late run (Fig. 7b): the
    # balancer pulls the servers toward one another.
    def spread_at(index):
        values = [series.samples[index][1]
                  for series in recorder.cpu.values()
                  if len(series) > abs(index)]
        return max(values) - min(values)

    early_spread = spread_at(2)
    late_spread = spread_at(-2)
    report.add(f"cpu spread early={early_spread:.1f} "
               f"late={late_spread:.1f}")
    report.add(f"migrations={outcome['migrations']} "
               f"redistribution rounds="
               f"{outcome['manager'].redistribution_rounds()}")
    report.write("fig7bc_pagerank_distribution")

    assert outcome["migrations"] >= 1
    assert late_spread < early_spread
    # Actor counts diverge from the initial random assignment (Fig. 7c):
    # final counts are no longer what they started as everywhere.
    final_counts = sorted(series.last()
                          for series in recorder.actor_counts.values())
    assert final_counts != sorted(
        placement.count(i) for i in range(NUM_SERVERS))
