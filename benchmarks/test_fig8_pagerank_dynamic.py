"""Fig. 8 — PageRank dynamic resource allocation detail.

PLASMA starts with one server holding all 32 workers and provisions new
servers until every server's CPU sits inside the rule's 60-80% band.
(a) per-iteration computation time falls round over round;
(b) per-server CPU% over redistributions;
(c) per-server worker counts over redistributions.
"""

from pagerank_common import run_dynamic, standard_graph, steady_time
from repro.bench import format_series, format_table


def test_fig8_dynamic_allocation_detail(benchmark, report):
    graph = standard_graph()

    def run():
        return run_dynamic(graph, iterations=80, record=True)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = outcome["stats"]
    recorder = outcome["recorder"]
    manager = outcome["manager"]
    bed = outcome["bed"]

    report.add(format_series(
        "fig8a/iteration time", list(enumerate(stats.times_ms, start=1)),
        x_label="iteration", y_label="ms"))
    for name in sorted(recorder.cpu):
        report.add(format_series(f"fig8b/cpu%/{name}",
                                 recorder.cpu[name].samples,
                                 y_label="cpu%"))
    for name in sorted(recorder.actor_counts):
        report.add(format_series(f"fig8c/actors/{name}",
                                 recorder.actor_counts[name].samples,
                                 y_label="actors"))
    report.add(format_series("fig8/fleet size",
                             recorder.fleet_size.samples,
                             y_label="servers"))
    report.add(f"final fleet={bed.provisioner.fleet_size()} servers, "
               f"migrations={manager.migrations_total()}, "
               f"redistribution rounds="
               f"{manager.redistribution_rounds()}")
    report.add(f"first iteration {stats.times_ms[0]:.0f} ms -> steady "
               f"{steady_time(stats):.0f} ms")
    report.write("fig8_pagerank_dynamic")

    # Shapes: the fleet grows monotonically (no scale-in configured),
    # iteration time improves every few rounds, and performance keeps
    # improving "each round ... inching towards an optimal distribution".
    fleet = [v for _t, v in recorder.fleet_size.samples]
    assert all(b >= a for a, b in zip(fleet, fleet[1:]))
    assert fleet[-1] > fleet[0]
    assert steady_time(stats) < 0.4 * stats.times_ms[0]
    assert manager.migrations_total() >= 10
