"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md §4 for the index).  Results are printed and
also written to ``benchmarks/results/<name>.txt`` so the paper-shaped
tables survive pytest's output capturing.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


@pytest.fixture
def report():
    """Collects report lines; writes them to a results file on success."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    class Reporter:
        def __init__(self):
            self.lines = []

        def add(self, text=""):
            self.lines.append(str(text))
            print(text)

        def write(self, name):
            path = os.path.join(RESULTS_DIR, f"{name}.txt")
            with open(path, "w") as handle:
                handle.write("\n".join(self.lines) + "\n")
            return path

    return Reporter()
