"""Elasticity management runtime (EMR): LEMs, GEMs, actions, placement."""

from .actions import Action, resolve_actions
from .config import EmrConfig
from .evaluate import (EvaluationScope, Match, compare, evaluate_rule,
                       extract_bounds)
from .gem import GEM
from .lem import LEM
from .manager import ElasticityManager, MigrationEvent
from .placement import PlasmaPlacement
from .planning import (BalancePlan, contribution_perc, plan_balance,
                       plan_drain, plan_reserve)

__all__ = [
    "Action", "resolve_actions",
    "EmrConfig",
    "EvaluationScope", "Match", "compare", "evaluate_rule", "extract_bounds",
    "GEM", "LEM",
    "ElasticityManager", "MigrationEvent",
    "PlasmaPlacement",
    "BalancePlan", "contribution_perc", "plan_balance", "plan_drain",
    "plan_reserve",
]
