"""Elasticity management runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...durability import DurabilityConfig
from ...overload import OverloadConfig

__all__ = ["EmrConfig"]


@dataclass
class EmrConfig:
    """Tunables for the elasticity management runtime.

    Defaults follow the paper: the elasticity period is user-set (60 s
    here; experiments use 60–180 s), the placement-stability window
    equals one period (§4.3), and migrations are conservative (a few
    actors per server per period so the system "inches towards" a good
    distribution rather than thrashing).
    """

    #: Elasticity (time) period between management rounds.
    period_ms: float = 60_000.0
    #: Control-plane topology.  ``"flat"`` is the paper's layout: every
    #: GEM evaluates whatever servers happened to report to it.
    #: ``"hierarchical"`` adds a two-tier GEM tree: leaf GEMs own
    #: contiguous server groups and run the unchanged evaluation loop
    #: over group-local snapshots, while a root tier consumes
    #: delta-compressed per-group aggregates (top-k hot actors + summed
    #: resource vectors) and arbitrates only cross-group migrations and
    #: fleet scaling.  With a single group the tree degenerates to the
    #: flat layout bit-for-bit (the differential harness pins this).
    control_plane: str = "flat"
    #: Servers per leaf group in hierarchical mode.  ``None`` means one
    #: group spanning the whole fleet (the degenerate tree used by the
    #: flat-vs-hierarchical equivalence tests).  Benchmarks size it
    #: ~sqrt(fleet) so root decision cost stays sub-linear in servers.
    server_group_size: Optional[int] = None
    #: Hot actors each leaf aggregate carries to the root (per group).
    group_top_k: int = 8
    #: Mean-CPU gap (percentage points) between the hottest and coldest
    #: group before the root plans cross-group migrations.
    cross_group_band: float = 20.0
    #: Consistent-hash directory shards (``None``/1 keeps the flat
    #: authoritative map; the fuzz "scale" profile randomizes this).
    directory_shards: Optional[int] = None
    #: Virtual nodes per directory shard on the hash ring.
    directory_virtual_nodes: int = 16
    #: Placement stability: an actor may move only after this long on its
    #: current server.  ``None`` means one elasticity period.
    stability_ms: Optional[float] = None
    #: Number of global elasticity managers.
    gem_count: int = 1
    #: How long a GEM collects REPORTs after the first one each round.
    gem_wait_ms: float = 2_000.0
    #: Minimum number of reports before a GEM processes (paper's K).
    min_reports: int = 1
    #: LEM waits at most this long for its GEM's RREPLY before proceeding
    #: with local actions only (GEM failure tolerance, §4.3).
    gem_reply_timeout_ms: float = 10_000.0
    #: Max migrations planned per source server per period.
    max_moves_per_server: int = 3
    #: Admission upper bound used by checkIdleRes when a rule supplies
    #: no explicit bound.
    admission_upper: float = 80.0
    #: Scale-out/in of the server fleet (dynamic resource allocation).
    allow_scale_out: bool = False
    allow_scale_in: bool = False
    min_servers: int = 1
    max_scale_out_per_period: int = 1
    #: Instance type to boot on scale-out; ``None`` = provisioner default.
    scale_instance_type: Optional[str] = None
    #: Offset between successive LEM period timers (avoids thundering herd).
    lem_stagger_ms: float = 50.0
    #: One-way latency for LEM<->GEM control messages.
    control_latency_ms: float = 1.0
    #: CPU charged per profiled message (EPR overhead model, Table 3).
    profiling_overhead_cpu_ms: float = 0.0
    #: Incremental profiling: ring-buffer meters with O(1) windowed
    #: totals plus snapshot-payload reuse for unchanged/idle actors.
    #: ``False`` selects the full-recompute reference path; both produce
    #: byte-identical decision traces (the A/B equivalence tests rely on
    #: this flag).
    incremental_profiling: bool = True
    #: Explicit EPR meter implementation (``"ring"``, ``"windowed"`` or
    #: ``"array"`` — numpy-batched adds).  ``None`` derives the backend
    #: from ``incremental_profiling``.  All backends produce bit-identical
    #: totals and therefore byte-identical decision traces.
    meter_backend: Optional[str] = None
    #: Failure detection: a server whose LEM has not reported for this
    #: long is suspected dead and its lost actors are resurrected.
    #: ``None`` (the default) disables detection; when set it must exceed
    #: ``period_ms``, because healthy LEMs report once per period.
    suspicion_timeout_ms: Optional[float] = None
    #: Re-create actors lost to a confirmed server failure through the
    #: rule-aware placement path (only effective with detection on).
    resurrect_lost_actors: bool = True
    #: While a partition is active, the manager re-probes GEM quorums at
    #: this interval (fleet changes mid-partition can flip a side's
    #: majority).  ``None`` means half an elasticity period.  The probe
    #: process only exists while a partition is active, so a fault-free
    #: run schedules nothing.
    partition_probe_interval_ms: Optional[float] = None
    #: Per-phase ack timeout of the prepare/transfer/commit migration
    #: protocol: how long the source waits on a severed link before
    #: rolling back (pushed onto the actor system at start()).
    migration_phase_timeout_ms: float = 2_000.0
    #: Defaults for Client retry/backoff under faults (consumed by
    #: benchmarks wiring clients; the EMR itself never retries).
    client_timeout_ms: Optional[float] = None
    client_max_retries: int = 3
    client_backoff_base_ms: float = 100.0
    client_backoff_cap_ms: float = 5_000.0
    #: Durable actor state (checkpoints, journaling, state-preserving
    #: recovery).  ``None`` — or a config with ``enabled=False`` — keeps
    #: the subsystem fully inert: no hooks, no scheduling, no RNG, so
    #: fault-free golden traces stay bit-identical.
    durability: Optional[DurabilityConfig] = None
    #: Overload protection (bounded mailboxes, admission control,
    #: brownout reporting).  ``None`` keeps the subsystem fully inert:
    #: the actor system's delivery path stays byte-identical, LEMs
    #: always ship full REPORTs, and the failure detector grants no
    #: drowning grace — golden traces stay bit-identical.
    overload: Optional[OverloadConfig] = None
    #: Seed a resurrected actor's EPR profile from its pre-crash stats
    #: instead of starting cold, so rules re-converge faster after a
    #: recovery.  Off by default (a restarted actor's past rates may no
    #: longer describe it).
    warm_start_profiles: bool = False

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if self.gem_count < 1:
            raise ValueError("gem_count must be at least 1")
        if self.control_plane not in ("flat", "hierarchical"):
            raise ValueError(
                f"control_plane must be 'flat' or 'hierarchical', "
                f"got {self.control_plane!r}")
        if (self.server_group_size is not None
                and self.server_group_size < 1):
            raise ValueError("server_group_size must be positive (or None)")
        if self.group_top_k < 1:
            raise ValueError("group_top_k must be at least 1")
        if self.cross_group_band <= 0:
            raise ValueError("cross_group_band must be positive")
        if self.directory_shards is not None and self.directory_shards < 1:
            raise ValueError("directory_shards must be positive (or None)")
        if self.directory_virtual_nodes < 1:
            raise ValueError("directory_virtual_nodes must be at least 1")
        if self.stability_ms is not None and self.stability_ms < 0:
            raise ValueError("stability_ms must be non-negative")
        if self.gem_wait_ms < 0 or self.gem_reply_timeout_ms <= 0:
            raise ValueError("GEM wait/timeout must be non-negative")
        if self.gem_reply_timeout_ms <= self.gem_wait_ms:
            raise ValueError(
                "gem_reply_timeout_ms must exceed gem_wait_ms, or every "
                "LEM would time out before its GEM even starts planning")
        if self.max_moves_per_server < 1:
            raise ValueError("max_moves_per_server must be at least 1")
        if not 0 < self.admission_upper <= 100:
            raise ValueError("admission_upper must be in (0, 100]")
        if self.min_servers < 0 or self.max_scale_out_per_period < 1:
            raise ValueError("invalid fleet scaling bounds")
        if self.lem_stagger_ms < 0:
            raise ValueError("lem_stagger_ms must be non-negative")
        if self.control_latency_ms < 0:
            raise ValueError("control_latency_ms must be non-negative")
        if self.profiling_overhead_cpu_ms < 0:
            raise ValueError("profiling_overhead_cpu_ms must be "
                             "non-negative")
        if (self.suspicion_timeout_ms is not None
                and self.suspicion_timeout_ms <= self.period_ms):
            raise ValueError(
                "suspicion_timeout_ms must exceed period_ms: LEMs report "
                "once per period, so a shorter timeout suspects every "
                "healthy server")
        if (self.partition_probe_interval_ms is not None
                and self.partition_probe_interval_ms <= 0):
            raise ValueError(
                "partition_probe_interval_ms must be positive (or None)")
        if self.migration_phase_timeout_ms <= 0:
            raise ValueError("migration_phase_timeout_ms must be positive")
        if self.client_timeout_ms is not None and self.client_timeout_ms <= 0:
            raise ValueError("client_timeout_ms must be positive (or None)")
        if self.client_max_retries < 0:
            raise ValueError("client_max_retries must be non-negative")
        if (self.client_backoff_base_ms <= 0
                or self.client_backoff_cap_ms < self.client_backoff_base_ms):
            raise ValueError(
                "need 0 < client_backoff_base_ms <= client_backoff_cap_ms")
        if (self.durability is not None
                and not isinstance(self.durability, DurabilityConfig)):
            raise ValueError("durability must be a DurabilityConfig or None, "
                             f"got {type(self.durability).__name__}")
        if (self.overload is not None
                and not isinstance(self.overload, OverloadConfig)):
            raise ValueError("overload must be an OverloadConfig or None, "
                             f"got {type(self.overload).__name__}")

    def stability_window_ms(self) -> float:
        return self.period_ms if self.stability_ms is None else self.stability_ms
