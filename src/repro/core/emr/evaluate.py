"""Rule evaluation: from compiled rules + snapshots to variable bindings.

A compiled rule's condition is in DNF.  Each conjunction is evaluated
against a scope of server and actor snapshots:

1. Conjunctions with server atoms iterate candidate *subject servers* —
   the servers whose windowed resource usage satisfies every server atom.
   Actor variables appearing in per-server features (call percentages,
   actor resources) then range over the subject server's actors, which is
   the paper's intended reading: "this folder receives more than 40% of
   client requests among all Folder actors *on this server*".
2. Conjunctions without server atoms have one pass with no subject
   server; actor variables range over the whole scope.
3. Atoms bind or filter variables left to right; ``in ref(...)`` atoms
   join members to containers through snapshotted property refs.
4. Variables used only in behaviors (e.g. ``reserve(VideoStream(v), cpu)``
   under a pure server condition) are bound last, over the subject
   server's actors of the variable's type.

The result is a list of :class:`Match` objects; behavior instantiation
turns matches into migration actions (see :mod:`.actions`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...actors import ActorRef
from ..epl import (ActorPattern, Balance, CallFeature, Colocate, CompareCond,
                   CompiledRule, Pin, RefCond, Reserve, ResourceFeature,
                   Separate, TrueCond, CLIENT_CALLER)
from ..profiling import ActorSnapshot, ServerSnapshot

__all__ = ["Match", "EvaluationScope", "evaluate_rule", "compare",
           "extract_bounds", "bound_snapshot", "colocate_groups"]


def compare(value: float, comparison: str, bound: float) -> bool:
    """Apply an EPL comparison operator."""
    if comparison == "<":
        return value < bound
    if comparison == ">":
        return value > bound
    if comparison == "<=":
        return value <= bound
    if comparison == ">=":
        return value >= bound
    raise ValueError(f"unknown comparison {comparison!r}")


@dataclass
class Match:
    """One satisfied conjunction: the subject server (if the rule had
    server atoms) and concrete actors for every bound variable."""

    subject_server: Optional[ServerSnapshot]
    bindings: Dict[str, ActorSnapshot] = field(default_factory=dict)

    def key(self) -> tuple:
        server_id = (self.subject_server.server.server_id
                     if self.subject_server else None)
        bound = tuple(sorted((var, snap.actor_id)
                             for var, snap in self.bindings.items()))
        return (server_id, bound)


@dataclass
class EvaluationScope:
    """Snapshots a rule evaluation may see.

    ``resolve_ref`` maps an :class:`ActorRef` held in a property to its
    snapshot; refs pointing outside the scope resolve to ``None`` unless
    the installed resolver widens the view (LEMs use the manager's global
    resolver so colocation with remote actors works, matching the
    QUERY/QREPLY protocol's reach).

    ``actors_of_type`` is the inner loop of every rule evaluation, so the
    scope lazily indexes its actors by type and by (type, server) on
    first use.  The index preserves ``actors`` order exactly, which keeps
    binding enumeration — and therefore every decision — identical to a
    linear scan.  ``indexed=False`` keeps the original scan (the A/B
    reference used by the perf benchmarks).  Callers must treat returned
    lists as read-only, and must not mutate ``actors`` after the first
    ``actors_of_type`` call.
    """

    servers: List[ServerSnapshot]
    actors: List[ActorSnapshot]
    resolve_ref: Callable[[ActorRef], Optional[ActorSnapshot]]
    indexed: bool = True
    _by_type: Optional[Dict[str, List[ActorSnapshot]]] = field(
        default=None, init=False, repr=False, compare=False)
    _by_server: Optional[Dict[int, List[ActorSnapshot]]] = field(
        default=None, init=False, repr=False, compare=False)
    _by_type_server: Optional[Dict[Tuple[str, int], List[ActorSnapshot]]] = \
        field(default=None, init=False, repr=False, compare=False)

    def _build_index(self) -> None:
        by_type: Dict[str, List[ActorSnapshot]] = {}
        by_server: Dict[int, List[ActorSnapshot]] = {}
        by_type_server: Dict[Tuple[str, int], List[ActorSnapshot]] = {}
        for snap in self.actors:
            server_id = snap.server.server_id
            by_type.setdefault(snap.type_name, []).append(snap)
            by_server.setdefault(server_id, []).append(snap)
            by_type_server.setdefault(
                (snap.type_name, server_id), []).append(snap)
        self._by_type = by_type
        self._by_server = by_server
        self._by_type_server = by_type_server

    def actors_of_type(self, type_name: str,
                       server: Optional[ServerSnapshot] = None
                       ) -> List[ActorSnapshot]:
        if not self.indexed:
            result = []
            for snap in self.actors:
                if type_name != "any" and snap.type_name != type_name:
                    continue
                if server is not None and snap.server is not server.server:
                    continue
                result.append(snap)
            return result
        if self._by_type is None:
            self._build_index()
        if server is None:
            if type_name == "any":
                return self.actors
            return self._by_type.get(type_name, [])
        server_id = server.server.server_id
        if type_name == "any":
            return self._by_server.get(server_id, [])
        return self._by_type_server.get((type_name, server_id), [])


def evaluate_rule(rule: CompiledRule,
                  scope: EvaluationScope) -> List[Match]:
    """Evaluate ``rule`` over ``scope``; returns deduplicated matches."""
    matches: List[Match] = []
    seen = set()
    for conjunction in rule.dnf:
        for match in _evaluate_conjunction(rule, conjunction, scope):
            key = match.key()
            if key not in seen:
                seen.add(key)
                matches.append(match)
    return matches


# ---------------------------------------------------------------------------


def _evaluate_conjunction(rule: CompiledRule, conjunction, scope):
    server_atoms = []
    actor_atoms = []
    for atom in conjunction:
        if isinstance(atom, CompareCond) and isinstance(
                atom.feature, ResourceFeature) and atom.feature.is_server():
            server_atoms.append(atom)
        elif isinstance(atom, TrueCond):
            continue
        else:
            actor_atoms.append(atom)

    if server_atoms:
        candidates = [snap for snap in scope.servers
                      if all(compare(snap.resource_perc(a.feature.resource),
                                     a.comparison, a.value)
                             for a in server_atoms)]
        subject_servers: List[Optional[ServerSnapshot]] = candidates
    else:
        subject_servers = [None]

    results: List[Match] = []
    for subject in subject_servers:
        bindings_list: List[Dict[str, ActorSnapshot]] = [{}]
        for atom in actor_atoms:
            bindings_list = _apply_atom(atom, bindings_list, scope, subject,
                                        rule.variables)
            if not bindings_list:
                break
        for bindings in bindings_list:
            expanded = _bind_behavior_vars(rule, bindings, scope, subject)
            results.extend(
                Match(subject_server=subject, bindings=b) for b in expanded)
    return results


def _apply_atom(atom, bindings_list, scope: EvaluationScope,
                subject: Optional[ServerSnapshot],
                rule_vars: Dict[str, str]):
    if isinstance(atom, RefCond):
        return _apply_ref(atom, bindings_list, scope, rule_vars)
    if isinstance(atom, CompareCond):
        feature = atom.feature
        if isinstance(feature, ResourceFeature):
            return _apply_actor_resource(atom, bindings_list, scope, subject,
                                         rule_vars)
        if isinstance(feature, CallFeature):
            if feature.is_client():
                return _apply_client_call(atom, bindings_list, scope, subject,
                                          rule_vars)
            return _apply_actor_call(atom, bindings_list, scope, subject,
                                     rule_vars)
    raise TypeError(f"unexpected atom {atom!r}")


def _var_or_anon(pattern: ActorPattern, index_hint: str) -> str:
    """Variable name for a pattern; anonymous patterns get a stable key so
    two anonymous uses of the same type in one rule stay independent."""
    if pattern.var is not None:
        return pattern.var
    return f"__anon_{index_hint}_{pattern.type_name}"


def _pattern_type(pattern: ActorPattern, rule_vars: Dict[str, str]) -> str:
    if pattern.type_name is not None:
        return pattern.type_name
    return rule_vars.get(pattern.var, "any")


def _candidates(pattern: ActorPattern, var: str,
                bindings: Dict[str, ActorSnapshot],
                scope: EvaluationScope,
                subject: Optional[ServerSnapshot],
                rule_vars: Dict[str, str],
                restrict_to_subject: bool) -> List[ActorSnapshot]:
    if var in bindings:
        return [bindings[var]]
    type_name = _pattern_type(pattern, rule_vars)
    server = subject if restrict_to_subject else None
    return scope.actors_of_type(type_name, server)


def _apply_ref(atom: RefCond, bindings_list, scope: EvaluationScope,
               rule_vars: Dict[str, str]):
    """Join members to containers via snapshotted property refs.

    Containers and members are not restricted to the subject server: a
    hot folder's files (or a session's players) may live anywhere; the
    behavior is precisely what brings them together.
    """
    member_var = _var_or_anon(atom.member, "refm")
    container_var = _var_or_anon(atom.container, "refc")
    member_type = _pattern_type(atom.member, rule_vars)
    out = []
    for bindings in bindings_list:
        if container_var in bindings:
            containers = [bindings[container_var]]
        else:
            type_name = _pattern_type(atom.container, rule_vars)
            containers = scope.actors_of_type(type_name)
        for container in containers:
            refs = container.refs.get(atom.property_name, ())
            for ref in refs:
                if member_type != "any" and ref.type_name != member_type:
                    continue
                member = bindings.get(member_var)
                if member is not None:
                    if member.actor_id == ref.actor_id:
                        new = dict(bindings)
                        new[container_var] = container
                        out.append(new)
                    continue
                member_snap = scope.resolve_ref(ref)
                if member_snap is None:
                    continue
                new = dict(bindings)
                new[container_var] = container
                new[member_var] = member_snap
                out.append(new)
    return out


def _apply_actor_resource(atom: CompareCond, bindings_list,
                          scope: EvaluationScope,
                          subject: Optional[ServerSnapshot],
                          rule_vars: Dict[str, str]):
    feature: ResourceFeature = atom.feature
    pattern: ActorPattern = feature.entity
    var = _var_or_anon(pattern, "res")
    out = []
    for bindings in bindings_list:
        for snap in _candidates(pattern, var, bindings, scope, subject,
                                rule_vars,
                                restrict_to_subject=subject is not None):
            value = snap.resource_perc(feature.resource)
            if compare(value, atom.comparison, atom.value):
                new = dict(bindings)
                new[var] = snap
                out.append(new)
    return out


def _call_stat(snap: ActorSnapshot, caller_kind: str, function: str,
               stat: str) -> float:
    key = (caller_kind, function)
    if stat == "count":
        return snap.call_count_per_min.get(key, 0.0)
    if stat == "size":
        return snap.call_bytes_per_min.get(key, 0.0)
    if stat == "perc":
        return snap.call_perc.get(key, 0.0)
    raise ValueError(f"unknown statistic {stat!r}")


def _apply_client_call(atom: CompareCond, bindings_list,
                       scope: EvaluationScope,
                       subject: Optional[ServerSnapshot],
                       rule_vars: Dict[str, str]):
    feature: CallFeature = atom.feature
    pattern = feature.callee
    var = _var_or_anon(pattern, "call")
    out = []
    for bindings in bindings_list:
        for snap in _candidates(pattern, var, bindings, scope, subject,
                                rule_vars,
                                restrict_to_subject=subject is not None):
            value = _call_stat(snap, CLIENT_CALLER, feature.function,
                               atom.feature.stat)
            if compare(value, atom.comparison, atom.value):
                new = dict(bindings)
                new[var] = snap
                out.append(new)
    return out


def _apply_actor_call(atom: CompareCond, bindings_list,
                      scope: EvaluationScope,
                      subject: Optional[ServerSnapshot],
                      rule_vars: Dict[str, str]):
    """Actor-to-actor call feature.

    ``count`` joins concrete (caller, callee) pairs through per-pair
    meters; ``size``/``perc`` filter the callee on the caller-type
    aggregate and bind the caller to peers with any traffic.
    """
    feature: CallFeature = atom.feature
    caller_pattern: ActorPattern = feature.caller
    callee_pattern = feature.callee
    caller_var = _var_or_anon(caller_pattern, "caller")
    callee_var = _var_or_anon(callee_pattern, "callee")
    caller_type = _pattern_type(caller_pattern, rule_vars)
    out = []
    for bindings in bindings_list:
        callees = _candidates(callee_pattern, callee_var, bindings, scope,
                              subject, rule_vars,
                              restrict_to_subject=False)
        for callee in callees:
            if feature.stat == "count":
                pairs = [
                    (caller_id, rate)
                    for (caller_id, function), rate
                    in callee.pair_count_per_min.items()
                    if function == feature.function]
                for caller_id, rate in pairs:
                    if not compare(rate, atom.comparison, atom.value):
                        continue
                    caller_snap = scope.resolve_ref(
                        ActorRef(actor_id=caller_id, type_name=caller_type))
                    if caller_snap is None:
                        continue
                    if (caller_type != "any"
                            and caller_snap.type_name != caller_type):
                        continue
                    bound_caller = bindings.get(caller_var)
                    if (bound_caller is not None
                            and bound_caller.actor_id != caller_id):
                        continue
                    new = dict(bindings)
                    new[callee_var] = callee
                    new[caller_var] = caller_snap
                    out.append(new)
            else:
                value = _call_stat(callee, caller_type, feature.function,
                                   feature.stat)
                if not compare(value, atom.comparison, atom.value):
                    continue
                peers = [
                    scope.resolve_ref(ActorRef(actor_id=caller_id,
                                               type_name=caller_type))
                    for (caller_id, function)
                    in callee.pair_count_per_min
                    if function == feature.function]
                peers = [p for p in peers if p is not None and (
                    caller_type == "any" or p.type_name == caller_type)]
                if not peers:
                    continue
                for peer in peers:
                    bound_caller = bindings.get(caller_var)
                    if (bound_caller is not None
                            and bound_caller.actor_id != peer.actor_id):
                        continue
                    new = dict(bindings)
                    new[callee_var] = callee
                    new[caller_var] = peer
                    out.append(new)
    return out


def _bind_behavior_vars(rule: CompiledRule,
                        bindings: Dict[str, ActorSnapshot],
                        scope: EvaluationScope,
                        subject: Optional[ServerSnapshot]):
    """Bind variables that appear only in behaviors.

    They range over the subject server's actors of the variable's type
    (``reserve(VideoStream(v), cpu)`` under an overloaded-server condition
    selects that server's VideoStream actors), or the whole scope when the
    rule has no server atoms.
    """
    needed: List[Tuple[str, str]] = []
    for behavior in rule.behaviors:
        for pattern in _behavior_patterns(behavior):
            var = pattern.var
            if var is None:
                continue
            if var in bindings or any(v == var for v, _t in needed):
                continue
            needed.append((var, rule.variables.get(var, "any")))
    results = [dict(bindings)]
    for var, type_name in needed:
        expanded = []
        for partial in results:
            for snap in scope.actors_of_type(type_name, subject):
                new = dict(partial)
                new[var] = snap
                expanded.append(new)
        results = expanded
        if not results:
            return []
    return results


def _behavior_patterns(behavior) -> Sequence[ActorPattern]:
    if isinstance(behavior, Reserve):
        return (behavior.target,)
    if isinstance(behavior, (Colocate, Separate)):
        return (behavior.first, behavior.second)
    if isinstance(behavior, Pin):
        return (behavior.target,)
    return ()


def bound_snapshot(pattern: ActorPattern, match: Match
                   ) -> Optional[ActorSnapshot]:
    """Snapshot a behavior pattern denotes within a match: its variable's
    binding, or (for anonymous patterns) the single same-typed anonymous
    binding."""
    if pattern.var is not None:
        return match.bindings.get(pattern.var)
    for var, snap in match.bindings.items():
        if var.startswith("__anon") and snap.type_name == pattern.type_name:
            return snap
    return None


def colocate_groups(rules: Sequence[CompiledRule],
                    scope: EvaluationScope) -> Dict[int, int]:
    """Union-find the actors tied together by active colocate rules.

    Returns actor id -> group id; actors in no group are absent.  The
    balance planner uses this to move colocation groups as single units
    (see :class:`repro.core.emr.planning.MoveUnit`).
    """
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for rule in rules:
        pairs = [(behavior.first, behavior.second)
                 for behavior in rule.behaviors
                 if isinstance(behavior, Colocate)]
        if not pairs:
            continue
        for match in evaluate_rule(rule, scope):
            for first, second in pairs:
                a = bound_snapshot(first, match)
                b = bound_snapshot(second, match)
                if a is not None and b is not None:
                    union(a.actor_id, b.actor_id)
    return {actor_id: find(actor_id) for actor_id in parent}


def extract_bounds(rule: CompiledRule, resource: str,
                   default_lower: float = 60.0,
                   default_upper: float = 80.0) -> Tuple[float, float]:
    """Extract (lower, upper) server-resource bounds from a rule's atoms.

    A ``>``/``>=`` server atom supplies the upper (overload) bound, a
    ``<``/``<=`` atom the lower (underload) bound, as in the canonical
    ``server.cpu.perc > 80 or server.cpu.perc < 60 => balance(...)``.
    Missing bounds fall back to the defaults, clamped to stay ordered.
    """
    lower: Optional[float] = None
    upper: Optional[float] = None
    for conjunction in rule.dnf:
        for atom in conjunction:
            if not (isinstance(atom, CompareCond)
                    and isinstance(atom.feature, ResourceFeature)
                    and atom.feature.is_server()
                    and atom.feature.resource == resource):
                continue
            if atom.comparison in (">", ">="):
                upper = atom.value if upper is None else min(upper, atom.value)
            else:
                lower = atom.value if lower is None else max(lower, atom.value)
    if upper is None:
        upper = default_upper
    if lower is None:
        lower = min(default_lower, upper)
    if lower > upper:
        lower = upper
    return lower, upper
