"""Rule-aware placement of newly created actors (paper §4.2).

When the application creates an actor, PLASMA consults the elasticity
rules to pick an initial server instead of placing randomly:

- a **colocate** rule linking the new actor's type with the type of the
  ``related`` hint places it on the related actor's server (the Halo
  experiment's "new Player actor gets co-located with its session");
- a **reserve** rule targeting the type places it on the server with the
  most idle amount of the reserved resource;
- a **balance** rule listing the type places it on the least-loaded
  server for the balanced resource;
- otherwise the policy abstains and the actor system places uniformly at
  random (the paper's fallback).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING, Type

from ...actors import Actor, ActorRef
from ...cluster import Server
from ..epl import Balance, Colocate, Reserve

if TYPE_CHECKING:  # pragma: no cover
    from .manager import ElasticityManager

__all__ = ["PlasmaPlacement"]


class PlasmaPlacement:
    """Pluggable :class:`~repro.actors.system.PlacementPolicy`."""

    def __init__(self, manager: "ElasticityManager") -> None:
        self.manager = manager
        self.placements_by_rule = 0
        self.placements_random = 0

    def __call__(self, cls: Type[Actor], candidates: List[Server],
                 related: Optional[ActorRef]) -> Optional[Server]:
        type_name = cls.__name__
        chosen = (self._try_colocate(type_name, related)
                  or self._try_reserve(type_name, candidates)
                  or self._try_balance(type_name, candidates))
        if chosen is not None:
            self.placements_by_rule += 1
        else:
            self.placements_random += 1
        return chosen

    def _pattern_type(self, pattern, rule) -> str:
        if pattern.type_name is not None:
            return pattern.type_name
        return rule.variables.get(pattern.var, "any")

    def _try_colocate(self, type_name: str,
                      related: Optional[ActorRef]) -> Optional[Server]:
        if related is None:
            return None
        record = self.manager.system.directory.try_lookup(related.actor_id)
        if record is None:
            return None
        for rule in self.manager.policy.actor_rules:
            for behavior in rule.behaviors:
                if not isinstance(behavior, Colocate):
                    continue
                first = self._pattern_type(behavior.first, rule)
                second = self._pattern_type(behavior.second, rule)
                pair = {first, second}
                if type_name not in pair:
                    continue
                other = (pair - {type_name}) or {type_name}
                if related.type_name in other or "any" in pair:
                    return record.server
        return None

    def _try_reserve(self, type_name: str,
                     candidates: List[Server]) -> Optional[Server]:
        for rule in self.manager.policy.resource_rules:
            for behavior in rule.behaviors:
                if not isinstance(behavior, Reserve):
                    continue
                target = self._pattern_type(behavior.target, rule)
                if target == type_name:
                    return self._least_loaded(candidates, behavior.resource)
        return None

    def _try_balance(self, type_name: str,
                     candidates: List[Server]) -> Optional[Server]:
        for rule in self.manager.policy.resource_rules:
            for behavior in rule.behaviors:
                if (isinstance(behavior, Balance)
                        and type_name in behavior.actor_types):
                    return self._least_loaded(candidates, behavior.resource)
        return None

    def _least_loaded(self, candidates: List[Server],
                      resource: str) -> Optional[Server]:
        window = self.manager.config.period_ms
        # Quorum-less servers sit behind an active partition: an actor
        # placed there would be born unreachable, so rule-aware
        # placement skips them (the uniform-random fallback still covers
        # the degenerate everyone-is-isolated case).
        running = [s for s in candidates
                   if s.running and not self.manager.server_quorumless(s)]
        if not running:
            return None

        def load(server: Server) -> float:
            if resource == "cpu":
                return server.cpu_percent(window)
            if resource == "net":
                return server.net_percent(window)
            return server.memory_percent()

        return min(running, key=lambda s: (load(s), s.server_id))
