"""Resource-rule planning: the GEM-side migration heuristics.

Implements the paper's §4.2 heuristic for ``balance`` ("a GEM only
migrates actors from overloaded servers to servers with enough idle
resources — especially below specified lower bounds") and the dedicated-
server selection for ``reserve``.  All functions are pure over snapshots
so they are unit-testable without a running simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...cluster import Server
from ..profiling import ActorSnapshot, ServerSnapshot
from .actions import Action

__all__ = ["contribution_perc", "BalancePlan", "plan_balance",
           "plan_reserve", "plan_drain"]

_MS_PER_MIN = 60_000.0


def contribution_perc(actor: ActorSnapshot, target: Server,
                      resource: str) -> float:
    """Estimate the load (in percent of ``target``'s capacity) the actor
    would add if migrated there.

    CPU busy-ms were measured at the source's speed; they are rescaled by
    the speed ratio so a move between heterogeneous instance types
    projects correctly.
    """
    if resource == "cpu":
        demand_ms = actor.cpu_ms_per_min * (
            actor.server.itype.cpu_speed / target.itype.cpu_speed)
        capacity = _MS_PER_MIN * target.itype.vcpus
        return 100.0 * demand_ms / capacity
    if resource == "net":
        capacity = _MS_PER_MIN * target.itype.net_bytes_per_ms()
        return 100.0 * actor.net_bytes_per_min / capacity
    if resource == "mem":
        return 100.0 * actor.mem_mb / target.itype.memory_mb
    raise ValueError(f"unknown resource {resource!r}")


@dataclass
class BalancePlan:
    """Outcome of one balance-planning pass."""

    actions: List[Action] = field(default_factory=list)
    need_scale_out: bool = False
    all_overloaded: bool = False
    all_underloaded: bool = False


def _movable(actors: Sequence[ActorSnapshot], types: Sequence[str],
             now: float, stability_ms: float) -> List[ActorSnapshot]:
    out = []
    for actor in actors:
        if types and "any" not in types and actor.type_name not in types:
            continue
        if actor.pinned or actor.migrating:
            continue
        if now - actor.last_placed_at < stability_ms:
            continue
        out.append(actor)
    return out


class MoveUnit:
    """A set of co-located actors that must migrate together.

    Balance is *group-aware*: actors tied by an active ``colocate`` rule
    move as one unit with their aggregate demand.  Without this, balance
    relocates a hot anchor alone, colocate drags its partners after it
    next period, the source looks idle again, and the pair of rules
    oscillates the group between servers forever (paper §4.3's
    balance-vs-colocate conflict)."""

    __slots__ = ("actors",)

    def __init__(self, actors: List[ActorSnapshot]) -> None:
        self.actors = actors

    def contribution(self, target: Server, resource: str) -> float:
        return sum(contribution_perc(actor, target, resource)
                   for actor in self.actors)

    def ids(self) -> Tuple[int, ...]:
        return tuple(actor.actor_id for actor in self.actors)


def build_units(actors: Sequence[ActorSnapshot],
                groups: Optional[Dict[int, int]] = None) -> List[MoveUnit]:
    """Group same-server actors by colocation-group id; ungrouped actors
    are singleton units.  ``groups`` maps actor id -> group id."""
    if not groups:
        return [MoveUnit([actor]) for actor in actors]
    by_group: Dict[int, List[ActorSnapshot]] = {}
    units: List[MoveUnit] = []
    for actor in actors:
        group = groups.get(actor.actor_id)
        if group is None:
            units.append(MoveUnit([actor]))
        else:
            by_group.setdefault(group, []).append(actor)
    units.extend(MoveUnit(members) for members in by_group.values())
    return units


def plan_balance(servers: Sequence[ServerSnapshot],
                 actors_by_server: Dict[int, List[ActorSnapshot]],
                 types: Sequence[str], resource: str,
                 lower: float, upper: float, now: float,
                 stability_ms: float, max_moves_per_server: int,
                 rule_index: int = -1,
                 groups: Optional[Dict[int, int]] = None,
                 draining: Optional[Set[int]] = None,
                 unreachable: Optional[Set[int]] = None) -> BalancePlan:
    """Plan migrations that bring every server's ``resource`` usage into
    the [lower, upper] band.

    Sources are servers above ``upper`` (overload path); when none are
    but some servers sit below ``lower`` (underload path, e.g. E-Store's
    ``server.cpu.perc < 50 => balance``), the busiest servers above the
    band midpoint feed the idle ones.  Projected loads are updated as
    actions are planned so one round never overshoots.

    ``draining`` lists server ids being evacuated for scale-in; they are
    never chosen as targets (an actor placed there would immediately
    need a second migration — or worse, strand on a retiring server).
    ``unreachable`` lists quorum-less servers behind an active network
    partition: a partition-filtered report set normally keeps them out
    of ``servers`` entirely, but this guard also covers snapshots taken
    just before the cut opened.
    """
    plan = BalancePlan()
    draining = (draining or set()) | (unreachable or set())
    loads: Dict[int, float] = {
        snap.server.server_id: snap.resource_perc(resource)
        for snap in servers}
    by_id: Dict[int, ServerSnapshot] = {
        snap.server.server_id: snap for snap in servers}

    overloaded = [sid for sid, load in loads.items() if load > upper]
    underloaded = [sid for sid, load in loads.items() if load < lower]
    plan.all_overloaded = bool(servers) and len(overloaded) == len(servers)
    plan.all_underloaded = bool(servers) and len(underloaded) == len(servers)
    if not overloaded and not underloaded:
        return plan

    moved: Set[int] = set()
    moves_from: Dict[int, int] = {}

    def best_fit_move(src_id: int):
        """Pick the (unit, target) pair minimizing the resulting
        max(src, dst) load, requiring a strict improvement of that max —
        the monotonicity that prevents the planner from thrashing (a move
        it makes this round can never look wrong next round, since the
        pair's peak only ever decreases)."""
        src_snap = by_id[src_id]
        all_units = build_units(list(actors_by_server.get(src_id, ())),
                                groups)
        # A unit is movable only when every member is: moving a partial
        # colocate group would recreate the split the grouping prevents.
        units = [unit for unit in all_units
                 if len(_movable(unit.actors, types, now, stability_ms))
                 == len(unit.actors)]
        best = None
        best_peak = loads[src_id] - 0.5  # require a meaningful improvement
        for unit in units:
            if any(actor_id in moved for actor_id in unit.ids()):
                continue
            own = unit.contribution(src_snap.server, resource)
            src_after = loads[src_id] - own
            for sid, snap in by_id.items():
                if (sid == src_id or sid in draining
                        or not snap.server.running):
                    continue
                contrib = unit.contribution(snap.server, resource)
                dst_after = loads[sid] + contrib
                peak = max(src_after, dst_after)
                if peak < best_peak:
                    best_peak = peak
                    best = (unit, snap, own, contrib)
        return best

    def drain(src_id: int, stop_at: float) -> None:
        while (loads[src_id] > stop_at
               and moves_from.get(src_id, 0) < max_moves_per_server):
            choice = best_fit_move(src_id)
            if choice is None:
                if loads[src_id] > upper:
                    plan.need_scale_out = True
                return
            unit, target, own, contrib = choice
            for actor in unit.actors:
                plan.actions.append(Action(
                    kind="balance", actor=actor, src=by_id[src_id].server,
                    dst=target.server, rule_index=rule_index,
                    resource=resource, src_load_perc=loads[src_id]))
                moved.add(actor.actor_id)
            moves_from[src_id] = moves_from.get(src_id, 0) + 1
            loads[src_id] -= own
            loads[target.server.server_id] += contrib

    if overloaded:
        for src_id in sorted(overloaded, key=lambda s: -loads[s]):
            drain(src_id, stop_at=upper)
    elif len(underloaded) < len(servers):
        # Underload path (e.g. E-Store's `server.cpu.perc < 50 =>
        # balance`): shrink the spread by feeding the idle servers from
        # the busiest ones, still via strictly-improving best-fit moves.
        midpoint = (lower + upper) / 2.0
        feeders = sorted((sid for sid, load in loads.items()
                          if load > midpoint),
                         key=lambda sid: -loads[sid])
        for src_id in feeders:
            if not any(loads[t] < lower for t in underloaded):
                break
            drain(src_id, stop_at=midpoint)
    return plan


def plan_reserve(actor: ActorSnapshot, servers: Sequence[ServerSnapshot],
                 actors_by_server: Dict[int, List[ActorSnapshot]],
                 resource: str, admission_upper: float, now: float,
                 stability_ms: float, rule_index: int = -1,
                 groups: Optional[Dict[int, int]] = None,
                 trigger: Optional[float] = None,
                 projected_load: Optional[Dict[int, float]] = None,
                 projected_pop: Optional[Dict[int, int]] = None,
                 draining: Optional[Set[int]] = None,
                 unreachable: Optional[Set[int]] = None
                 ) -> Tuple[List[Action], bool]:
    """Place ``actor`` (and its colocation group) on a dedicated server
    with idle ``resource``.

    "Dedicated" is taken literally (paper §3.2: "keep those actors on
    dedicated servers exclusively"): if the actor's current server hosts
    nothing outside its own colocation group, it already has a dedicated
    server and the plan is empty — otherwise a reserve rule whose
    condition keeps matching would bounce the actor between idle servers
    forever.  Targets prefer the fewest-actors server, then lowest load.
    Returns ``(actions, need_scale_out)``.

    Reserve outranks pin (priority table in :mod:`repro.core.epl`): a
    rule that *names* an actor for reservation may move it even when
    another rule pinned it — the Media Service pins VideoStreams against
    disruptive balance moves yet still expects them reserved onto
    CPU-rich servers.  The colocated partners follow the move.

    ``projected_load`` / ``projected_pop`` carry the deltas of reserves
    already planned this round (this function updates them in place), so
    successive reservations don't all flock to the same snapshot-idle
    server and overload it.  ``draining`` server ids (scale-in victims
    being evacuated) are excluded from the candidate targets — a
    draining server *looks* ideally idle and empty, which is exactly why
    reserve would otherwise pick it.  ``unreachable`` (quorum-less
    servers behind a partition) is excluded for the same reason as in
    :func:`plan_balance`.
    """
    if actor.migrating:
        return [], False
    if now - actor.last_placed_at < stability_ms:
        return [], False
    src = actor.server
    src_actors = actors_by_server.get(src.server_id, [])

    group_id = groups.get(actor.actor_id) if groups else None
    if group_id is not None:
        members = [a for a in src_actors
                   if groups.get(a.actor_id) == group_id]
        if actor.actor_id not in {a.actor_id for a in members}:
            members = [actor] + members
    else:
        members = [actor]
    unit = MoveUnit(members)

    # Dedication is judged on the server's *total* population (reports
    # may be filtered to rule-relevant actor types).
    src_population = next(
        (snap.actor_count for snap in servers if snap.server is src),
        len(src_actors))
    if src_population <= len(members):
        return [], False  # already on a dedicated server

    if any(a.migrating or now - a.last_placed_at < stability_ms
           for a in members):
        return [], False

    # A reserve target must have genuinely *idle* resources: after the
    # move it stays below the rule's own trigger bound (the overload
    # threshold whose crossing fired the rule).  This makes reserve
    # convergent — a group placed on an idle server is never re-selected
    # (its server no longer matches the rule condition) and never
    # shuffled sideways between equally busy servers.
    threshold = min(trigger if trigger is not None else admission_upper,
                    admission_upper)
    projected_load = projected_load if projected_load is not None else {}
    projected_pop = projected_pop if projected_pop is not None else {}
    src_load = next((snap.resource_perc(resource) for snap in servers
                     if snap.server is src), 100.0)
    draining = (draining or set()) | (unreachable or set())
    candidates: List[Tuple[int, float, ServerSnapshot]] = []
    for snap in servers:
        if (snap.server is src or not snap.server.running
                or snap.server.server_id in draining):
            continue
        sid = snap.server.server_id
        contrib = unit.contribution(snap.server, resource)
        load = snap.resource_perc(resource) + projected_load.get(sid, 0.0)
        if load + contrib > threshold:
            continue
        population = (len(actors_by_server.get(sid, ()))
                      + projected_pop.get(sid, 0))
        candidates.append((population, load, snap))
    if not candidates:
        # No server with idle resources exists; ask for a new one while
        # the group's current host is over the trigger.
        return [], src_load > threshold
    candidates.sort(key=lambda item: (item[0], item[1]))
    target = candidates[0][2]
    target_id = target.server.server_id
    projected_load[target_id] = (projected_load.get(target_id, 0.0)
                                 + unit.contribution(target.server,
                                                     resource))
    projected_pop[target_id] = (projected_pop.get(target_id, 0)
                                + len(members))
    actions = [Action(kind="reserve", actor=member, src=src,
                      dst=target.server, rule_index=rule_index,
                      resource=resource)
               for member in members]
    return actions, False


def plan_drain(server: ServerSnapshot,
               others: Sequence[ServerSnapshot],
               actors: Sequence[ActorSnapshot], resource: str,
               upper: float, now: float,
               stability_ms: float) -> Optional[List[Action]]:
    """Plan the evacuation of every movable actor off ``server`` (scale-in).

    Returns the action list, or ``None`` when any actor cannot be placed
    elsewhere within the ``upper`` bound — a server is only reclaimed if
    it can be fully drained.
    """
    loads = {snap.server.server_id: snap.resource_perc(resource)
             for snap in others if snap.server.running}
    by_id = {snap.server.server_id: snap for snap in others
             if snap.server.running}
    actions: List[Action] = []
    for actor in actors:
        if actor.pinned or actor.migrating:
            return None
        if now - actor.last_placed_at < stability_ms:
            return None
        best_id = None
        best_load = float("inf")
        for sid, snap in by_id.items():
            contrib = contribution_perc(actor, snap.server, resource)
            if loads[sid] + contrib > upper:
                continue
            if loads[sid] < best_load:
                best_load = loads[sid]
                best_id = sid
        if best_id is None:
            return None
        loads[best_id] += contribution_perc(actor, by_id[best_id].server,
                                            resource)
        actions.append(Action(
            kind="balance", actor=actor, src=server.server,
            dst=by_id[best_id].server, resource=resource))
    return actions
