"""Global elasticity manager (GEM) — paper Algorithm 2.

A GEM accumulates REPORTs from the LEMs that picked it this period,
builds a global runtime snapshot of those servers, applies the *resource*
elasticity rules (``applyResRules``), and returns per-server migration
actions in RREPLYs.  When its whole region is overloaded (resp.
under-utilized) it runs the adjustment protocol — a majority vote among
GEMs — to grow (resp. shrink) the server fleet.

GEMs keep no synchronized state (paper §4.3): a failed GEM simply stops
replying, LEM timeouts fire, and the next period the shuffling process
routes reports to healthy GEMs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ...sim import Signal
from ..epl import Balance, Reserve
from ..profiling import ActorSnapshot, ServerSnapshot
from .actions import Action
from .evaluate import (EvaluationScope, bound_snapshot, colocate_groups,
                       evaluate_rule, extract_bounds)
from .planning import plan_balance, plan_drain, plan_reserve

if TYPE_CHECKING:  # pragma: no cover
    from .lem import LEM
    from .manager import ElasticityManager

__all__ = ["GEM"]


class GEM:
    """Global elasticity manager."""

    def __init__(self, manager: "ElasticityManager", gem_id: int) -> None:
        self.manager = manager
        self.gem_id = gem_id
        self.failed = False
        #: Control-plane epoch this GEM last synced to.  Every RREPLY
        #: carries it; a LEM on a higher epoch rejects the actions as
        #: stale (epoch fencing).
        self.epoch = 0
        #: Quorum-less read-only mode: set by the manager while this GEM
        #: cannot reach a strict majority of running servers' LEMs.  A
        #: degraded GEM plans no migrations, requests no votes, and
        #: makes no fleet changes — it only acknowledges reports.
        self.degraded = False
        self.rounds_processed = 0
        self.overload_fraction = 0.0     # last observed region view
        self.underload_fraction = 0.0
        self._reports: List[Tuple["LEM", List[ActorSnapshot],
                                  ServerSnapshot, Signal]] = []
        self._processing_scheduled = False
        self._boots_this_round = 0
        #: Last-known-good snapshot per server id (time, server snap,
        #: actor snaps).  Only maintained while overload protection is
        #: active: a browned-out LEM reports less often, and planning
        #: against a bounded-staleness snapshot of a drowning server
        #: beats planning as if the server did not exist.
        self._last_known_good: Dict[int, Tuple[
            float, ServerSnapshot, List[ActorSnapshot]]] = {}
        self.stale_snapshots_used = 0

    def fail(self) -> None:
        """Simulate a GEM crash: stop replying to reports."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    # ------------------------------------------------------------------

    def receive_report(self, lem: "LEM", actors: List[ActorSnapshot],
                       server_snap: ServerSnapshot, reply: Signal) -> None:
        """REPORT from a LEM.  Processing starts ``gem_wait_ms`` after the
        first report of a round, so co-managed servers are considered
        together (the paper waits for |servers| > K reports)."""
        if self.failed:
            return
        self._reports.append((lem, actors, server_snap, reply))
        enough = len(self._reports) >= max(1, self.manager.config.min_reports)
        if not self._processing_scheduled and enough:
            self._processing_scheduled = True
            self.manager.backend.schedule(
                self.manager.config.gem_wait_ms, self._process)

    # ------------------------------------------------------------------

    def _process(self) -> None:
        self._processing_scheduled = False
        reports, self._reports = self._reports, []
        if not reports or self.failed:
            return
        if self.degraded:
            # Read-only mode: acting on a partial (partition-filtered)
            # snapshot makes provably bad decisions, so acknowledge the
            # reports with empty action lists and plan nothing.  The
            # LEMs proceed with local actions only, exactly as if this
            # GEM had timed out.
            delay = self.manager.config.control_latency_ms
            for _lem, _actors, server_snap, reply in reports:
                if self.manager.reply_reachable(self, server_snap.server):
                    self.manager.backend.schedule(
                        delay, reply.trigger, ((), self.epoch))
            return
        self.rounds_processed += 1
        self._boots_this_round = 0

        servers = [server_snap for (_l, _a, server_snap, _r) in reports]
        actors: List[ActorSnapshot] = []
        actors_by_server: Dict[int, List[ActorSnapshot]] = {}
        for _lem, actor_snaps, server_snap, _reply in reports:
            actors.extend(actor_snaps)
            actors_by_server[server_snap.server.server_id] = list(actor_snaps)

        if self.manager.overload is not None:
            self._fold_stale_snapshots(reports, servers, actors,
                                       actors_by_server)

        scope = EvaluationScope(
            servers=servers, actors=actors,
            resolve_ref=self.manager.resolve_ref_global)

        actions, need_scale_out, any_balance_bounds = self._apply_res_rules(
            scope, actors_by_server)

        self._update_region_view(servers, any_balance_bounds)
        if need_scale_out:
            self._try_scale_out()
        else:
            drain_actions = self._try_scale_in(
                servers, actors_by_server, any_balance_bounds)
            # Planning ran before the scale-in decision, so this round's
            # balance/reserve actions may target the just-chosen victim
            # (it looks ideally idle — that is *why* it was chosen).
            # Drop them rather than land actors on a draining server;
            # still-valid moves are simply replanned next period.
            draining = self.manager.draining_ids()
            if draining:
                actions = [action for action in actions
                           if action.dst.server_id not in draining]
            actions.extend(drain_actions)

        # RREPLY: route each action to the LEM of its source server,
        # stamped with this GEM's epoch.  A reply whose path a partition
        # severed is simply lost — the LEM's reply timeout covers it.
        queues: Dict[int, List[Action]] = {}
        for action in actions:
            queues.setdefault(action.src.server_id, []).append(action)
        delay = self.manager.config.control_latency_ms
        for lem, _actors, server_snap, reply in reports:
            if not self.manager.reply_reachable(self, server_snap.server):
                continue
            lem_actions = queues.get(server_snap.server.server_id, [])
            self.manager.backend.schedule(delay, reply.trigger,
                                             (lem_actions, self.epoch))

        # Hierarchical mode: ship a delta-compressed aggregate up to the
        # root tier for every group this leaf serves — its home group
        # plus any group it adopted after that group's own leaves all
        # failed.  The publish path also doubles as leaf-driven root
        # failure detection (a dead root is promoted before shipping).
        # An inert (single-group) tree publishes nothing — bit-identical
        # to flat mode.
        hierarchy = self.manager.hierarchy
        if hierarchy is not None and hierarchy.active():
            hierarchy.publish(self, servers, actors_by_server)

    def _fold_stale_snapshots(
            self, reports, servers: List[ServerSnapshot],
            actors: List[ActorSnapshot],
            actors_by_server: Dict[int, List[ActorSnapshot]]) -> None:
        """Brownout fallback: refresh the last-known-good cache from this
        round's reports, then plan against bounded-staleness snapshots of
        browned-out servers that skipped the round.

        Only *browned-out* servers are substituted — a server that is
        silent without having announced brownout is a failure-detector
        problem, not a planning problem.  No RREPLY is routed to a
        substituted server (its LEM did not report), so stale snapshots
        inform other servers' decisions without commanding the drowning
        one.
        """
        overload = self.manager.overload
        now = self.manager.backend.now
        for _lem, actor_snaps, server_snap, _reply in reports:
            self._last_known_good[server_snap.server.server_id] = (
                now, server_snap, list(actor_snaps))
        reported = set(actors_by_server)
        for server_id in sorted(self._last_known_good):
            when, server_snap, cached = self._last_known_good[server_id]
            if not server_snap.server.running:
                del self._last_known_good[server_id]
                continue
            if (server_id in reported
                    or now - when > overload.config.stale_snapshot_ms
                    or not overload.is_browned_out(server_snap.server.name)):
                continue
            servers.append(server_snap)
            actors.extend(cached)
            actors_by_server[server_id] = list(cached)
            self.stale_snapshots_used += 1
            self.manager.emit("stale-snapshot-used", gem_id=self.gem_id,
                              server=server_snap.server.name,
                              age_ms=now - when)

    # -- applyResRules -----------------------------------------------------

    def _apply_res_rules(self, scope: EvaluationScope,
                         actors_by_server: Dict[int, List[ActorSnapshot]]):
        config = self.manager.config
        now = self.manager.backend.now
        stability = config.stability_window_ms()
        actions: List[Action] = []
        need_scale_out = False
        bounds: Optional[Tuple[float, float]] = None
        groups = colocate_groups(self.manager.policy.actor_rules, scope)

        for rule in self.manager.policy.resource_rules:
            matches = evaluate_rule(rule, scope)
            if not matches:
                continue
            actions_before_rule = len(actions)
            for behavior in rule.behaviors:
                if isinstance(behavior, Balance):
                    lower, upper = extract_bounds(rule, behavior.resource)
                    bounds = (lower, upper)
                    plan = plan_balance(
                        scope.servers, actors_by_server,
                        behavior.actor_types, behavior.resource,
                        lower, upper, now, stability,
                        config.max_moves_per_server, rule.index,
                        groups=groups,
                        draining=self.manager.draining_ids(),
                        unreachable=self.manager.isolated_server_ids())
                    actions.extend(plan.actions)
                    need_scale_out |= (plan.need_scale_out
                                       or plan.all_overloaded)
                elif isinstance(behavior, Reserve):
                    taken = {a.actor_id for a in actions}
                    reserved_dst: Dict[int, "Server"] = {}
                    moves_per_src: Dict[int, int] = {}
                    projected_load: Dict[int, float] = {}
                    projected_pop: Dict[int, int] = {}
                    _lower, trigger = extract_bounds(
                        rule, behavior.resource,
                        default_upper=config.admission_upper)
                    for match in matches:
                        target_snap = bound_snapshot(behavior.target, match)
                        if target_snap is None:
                            continue
                        if target_snap.actor_id in taken:
                            continue
                        src_id = target_snap.server.server_id
                        if (moves_per_src.get(src_id, 0)
                                >= config.max_moves_per_server):
                            continue  # gradual, like balance (§4.3)
                        planned, scale = plan_reserve(
                            target_snap, scope.servers, actors_by_server,
                            behavior.resource, config.admission_upper, now,
                            stability, rule.index, groups=groups,
                            trigger=trigger,
                            projected_load=projected_load,
                            projected_pop=projected_pop,
                            draining=self.manager.draining_ids(),
                            unreachable=self.manager.isolated_server_ids())
                        need_scale_out |= scale
                        if planned:
                            moves_per_src[src_id] = \
                                moves_per_src.get(src_id, 0) + 1
                        for action in planned:
                            if action.actor_id in taken:
                                continue
                            taken.add(action.actor_id)
                            reserved_dst[action.actor_id] = action.dst
                            actions.append(action)
                    actions.extend(self._companion_colocations(
                        rule, behavior, matches, reserved_dst, taken))
            if rule.priority is not None:
                for action in actions[actions_before_rule:]:
                    action.priority_override = rule.priority
        return actions, need_scale_out, bounds

    def _companion_colocations(self, rule, behavior: Reserve, matches,
                               reserved_dst, taken) -> List[Action]:
        """When a mixed rule reserves an actor *and* colocates others with
        it (the Metadata Server rule), the colocated partners must follow
        the reserve's freshly chosen target — the LEM cannot know it.
        Emits colocate actions toward the reserved actor's destination.
        """
        companions = [
            r for r in self.manager.policy.actor_rules
            if r.index == rule.index]
        if not companions:
            return []
        reserve_var = behavior.target.var
        if reserve_var is None:
            return []
        actions: List[Action] = []
        from ..epl import Colocate
        for companion in companions:
            for colocate in companion.behaviors:
                if not isinstance(colocate, Colocate):
                    continue
                sides = (colocate.first.var, colocate.second.var)
                if reserve_var not in sides:
                    continue
                other_var = sides[1] if sides[0] == reserve_var else sides[0]
                if other_var is None:
                    continue
                for match in matches:
                    anchor = match.bindings.get(reserve_var)
                    other = match.bindings.get(other_var)
                    if anchor is None or other is None:
                        continue
                    dst = reserved_dst.get(anchor.actor_id)
                    if dst is None:
                        # Anchor stayed put (already well placed); bring
                        # the partner to wherever the anchor lives now.
                        dst = anchor.server
                    if other.server is dst or other.pinned or other.migrating:
                        continue
                    if other.actor_id in taken:
                        continue
                    taken.add(other.actor_id)
                    actions.append(Action(
                        kind="colocate", actor=other, src=other.server,
                        dst=dst, rule_index=rule.index))
        return actions

    # -- fleet adjustment (scale out / in) ------------------------------------

    def _update_region_view(self, servers: List[ServerSnapshot],
                            bounds: Optional[Tuple[float, float]]) -> None:
        if not servers:
            return
        lower, upper = bounds if bounds else (60.0, 80.0)
        resource = "cpu"
        over = sum(1 for s in servers if s.resource_perc(resource) > upper)
        under = sum(1 for s in servers if s.resource_perc(resource) < lower)
        self.overload_fraction = over / len(servers)
        self.underload_fraction = under / len(servers)

    def _try_scale_out(self) -> None:
        config = self.manager.config
        if not config.allow_scale_out or self.degraded:
            return
        if self._boots_this_round >= config.max_scale_out_per_period:
            return
        if self.manager.system.provisioner.pending_boots() > 0:
            return
        if not self.manager.vote(self, "overloaded"):
            return
        self._boots_this_round += 1
        self.manager.emit("scale-out", gem_id=self.gem_id,
                          overload_fraction=self.overload_fraction)
        self.manager.system.provisioner.boot_server(
            config.scale_instance_type)

    def _try_scale_in(self, servers: List[ServerSnapshot],
                      actors_by_server: Dict[int, List[ActorSnapshot]],
                      bounds: Optional[Tuple[float, float]]) -> List[Action]:
        config = self.manager.config
        if not config.allow_scale_in or self.degraded or len(servers) < 2:
            return []
        lower, upper = bounds if bounds else (60.0, 80.0)
        fleet = self.manager.system.provisioner.fleet_size()
        if fleet <= config.min_servers:
            return []
        below = [s for s in servers if s.resource_perc("cpu") < lower
                 and not self.manager.is_draining(s.server)]
        if len(below) != len(servers):
            return []
        if not self.manager.vote(self, "underloaded"):
            return []
        victim = min(servers, key=lambda s: s.resource_perc("cpu"))
        others = [s for s in servers if s is not victim
                  and not self.manager.is_draining(s.server)]
        if not others:
            return []
        victim_actors = actors_by_server.get(victim.server.server_id, [])
        now = self.manager.backend.now
        drain = plan_drain(victim, others, victim_actors, "cpu", upper,
                           now, config.stability_window_ms())
        if drain is None:
            return []
        self.manager.emit("scale-in", gem_id=self.gem_id,
                          victim=victim.server.name,
                          underload_fraction=self.underload_fraction,
                          planned_moves=len(drain))
        self.manager.mark_draining(victim.server)
        return drain
