"""Migration actions (paper Table 2b) and conflict resolution.

An :class:`Action` names an actor, its current server (``src``) and the
migration target (``dst``).  Actions carry the priority of the behavior
that produced them; :func:`resolve_actions` implements the paper's
runtime conflict-resolution rule — for each actor keep only the
highest-priority action (balance > reserve > separate > colocate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ...cluster import Server
from ..epl import BEHAVIOR_PRIORITIES
from ..profiling import ActorSnapshot

__all__ = ["Action", "resolve_actions"]


@dataclass
class Action:
    """One proposed actor migration."""

    kind: str                   # balance | reserve | colocate | separate
    actor: ActorSnapshot        # actor for migration (with demand info)
    src: Server                 # server currently holding the actor
    dst: Server                 # target server for actor migration
    rule_index: int = -1
    resource: Optional[str] = None
    #: Source load at planning time.  Admission control accepts a move
    #: that leaves the target below the source even when it exceeds the
    #: static admission bound — migrating off an overloaded server must
    #: not be vetoed by a target that would still be the less-loaded one.
    src_load_perc: float = 100.0
    #: Programmer-specified rule priority (EPL ``priority N:`` prefix);
    #: overrides the behavior-kind default in conflict resolution.
    priority_override: Optional[int] = None

    @property
    def priority(self) -> int:
        if self.priority_override is not None:
            return self.priority_override
        return BEHAVIOR_PRIORITIES[self.kind]

    @property
    def actor_id(self) -> int:
        return self.actor.actor_id

    def __repr__(self) -> str:
        return (f"<Action {self.kind} {self.actor.ref} "
                f"{self.src.name}->{self.dst.name}>")


def resolve_actions(*action_lists: Iterable[Action]) -> List[Action]:
    """Merge action lists, keeping one action per actor by priority.

    Ties keep the earliest proposal (LEM actions are passed first in
    Alg. 1's ``resolveActions(lemActions, gemActions)``; the paper
    prioritizes resource actions, which our priority table encodes, so
    GEM balance/reserve actions win over local colocate ones).
    Actions whose source no longer matches the actor's server are stale
    and dropped by the executor, not here.
    """
    best: Dict[int, Action] = {}
    order: List[int] = []
    for actions in action_lists:
        for action in actions:
            current = best.get(action.actor_id)
            if current is None:
                best[action.actor_id] = action
                order.append(action.actor_id)
            elif action.priority > current.priority:
                best[action.actor_id] = action
    return [best[actor_id] for actor_id in order]
