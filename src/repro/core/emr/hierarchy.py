"""Two-tier GEM tree for cluster-scale control (hierarchical mode).

Flat PLASMA lets every GEM evaluate whatever servers reported to it —
fine at 10 servers, quadratic pain at 5,000.  With
``EmrConfig.control_plane="hierarchical"``:

- **Leaf tier**: the fleet is split into contiguous *server groups*
  (:class:`~repro.cluster.ServerGroupMap`); each group gets its own set
  of ``gem_count`` leaf GEMs running the unchanged Algorithm-2 loop over
  group-local snapshots.  LEMs shuffle among their *group's* leaves only
  (same RNG stream, same draw — with one group this is bit-identical to
  flat mode, which the differential harness pins).
- **Root tier**: after each processing round a leaf publishes a
  :class:`GroupAggregate` — summed resource vectors plus the top-k hot
  actors, *not* per-actor rows — to the single :class:`RootGem`.
  Aggregates are **delta-compressed** (only fields that changed since
  the group's last publish ship) and **batched** (the root folds
  everything arriving within one collection window before deciding).
  The root arbitrates exactly two things: cross-group migrations (top-k
  hot actors from the hottest group onto the coldest group's least
  loaded server) and fleet scaling (a veto over leaf scale votes when a
  majority of *other* groups disagrees).

With a single group the tree is degenerate and the hierarchy is fully
inert: no aggregates, no root events, no root decisions — the leaf set
behaves exactly like the flat GEM set.  Root decision cost is
``O(groups · top_k)`` per round, so sizing groups ~sqrt(fleet) keeps it
sub-linear in server count (``benchmarks/test_scale_cluster.py`` gates
this).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ...cluster import Server, ServerGroupMap
from ...sim import Timeout, spawn
from ..profiling import ActorSnapshot, ServerSnapshot
from .actions import Action

if TYPE_CHECKING:  # pragma: no cover
    from .gem import GEM
    from .manager import ElasticityManager

__all__ = ["ControlHierarchy", "GroupAggregate", "RootGem"]


@dataclass
class GroupAggregate:
    """One leaf group's compressed REPORT to the root tier.

    Summed resource vectors and a bounded hot set — the root never sees
    per-actor rows, which is what keeps its per-round decision cost
    independent of the actor population.
    """

    group: int
    gem_id: int
    epoch: int
    server_count: int
    actor_count: int
    cpu_sum: float
    mem_sum: float
    net_sum: float
    overload_fraction: float
    underload_fraction: float
    server_names: Tuple[str, ...]
    server_cpu_percs: Tuple[float, ...]
    top_actors: Tuple[ActorSnapshot, ...]
    least_loaded: Optional[ServerSnapshot]

    def delta_against(self, prev: Optional["GroupAggregate"]) -> Dict[str, Any]:
        """Fields that changed since ``prev`` (everything on first
        publish).  ``group``/``gem_id``/``epoch`` always ship — they are
        the envelope, not payload."""
        names = [f.name for f in dataclass_fields(self)]
        if prev is None:
            return {name: getattr(self, name) for name in names}
        delta: Dict[str, Any] = {"group": self.group, "gem_id": self.gem_id,
                                 "epoch": self.epoch}
        for name in names:
            if name in delta:
                continue
            if getattr(self, name) != getattr(prev, name):
                delta[name] = getattr(self, name)
        return delta


def build_aggregate(group: int, gem: "GEM",
                    servers: List[ServerSnapshot],
                    actors_by_server: Dict[int, List[ActorSnapshot]],
                    top_k: int) -> GroupAggregate:
    """Fold a leaf round's group-local snapshot into an aggregate."""
    actors: List[ActorSnapshot] = []
    for snaps in actors_by_server.values():
        actors.extend(snaps)
    top = tuple(sorted(actors,
                       key=lambda s: (-s.cpu_perc, s.actor_id))[:top_k])
    least = None
    if servers:
        least = min(servers, key=lambda s: (s.cpu_perc, s.server.server_id))
    return GroupAggregate(
        group=group, gem_id=gem.gem_id, epoch=gem.epoch,
        server_count=len(servers), actor_count=len(actors),
        cpu_sum=sum(s.cpu_perc for s in servers),
        mem_sum=sum(s.mem_perc for s in servers),
        net_sum=sum(s.net_perc for s in servers),
        overload_fraction=gem.overload_fraction,
        underload_fraction=gem.underload_fraction,
        server_names=tuple(s.server.name for s in servers),
        server_cpu_percs=tuple(s.cpu_perc for s in servers),
        top_actors=top, least_loaded=least)


class RootGem:
    """Root tier: folds per-group aggregate views, arbitrates only
    cross-group migrations and fleet scaling."""

    def __init__(self, manager: "ElasticityManager",
                 hierarchy: "ControlHierarchy") -> None:
        self.manager = manager
        self.hierarchy = hierarchy
        #: Folded per-group view: group -> field dict, updated by deltas.
        self.views: Dict[int, Dict[str, Any]] = {}
        self._flush_scheduled = False
        self.rounds_processed = 0
        self.cross_migrations_planned = 0
        self.aggregates_received = 0

    # -- aggregate ingest (delta-folded, batched) -----------------------

    def receive_aggregate(self, group: int, delta: Dict[str, Any]) -> None:
        self.aggregates_received += 1
        self.views.setdefault(group, {}).update(delta)
        if not self._flush_scheduled:
            # Batch: every aggregate landing within one collection
            # window rides the same root round.
            self._flush_scheduled = True
            self.manager.system.sim.schedule(
                self.manager.config.gem_wait_ms, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self.manager.running:
            return
        self.rounds_processed += 1
        self.manager.emit("root-round", groups=tuple(
            (group, view.get("cpu_sum", 0.0), view.get("server_count", 0),
             view.get("actor_count", 0))
            for group, view in sorted(self.views.items())))
        for action in self.arbitrate(self.views):
            self.cross_migrations_planned += 1
            spawn(self.manager.system.sim, self._execute_cross(action),
                  name=f"root/cross-migrate/{action.actor_id}")

    # -- cross-group arbitration ----------------------------------------

    def arbitrate(self, views: Dict[int, Dict[str, Any]]) -> List[Action]:
        """Plan cross-group balance moves from the folded views.

        Pure function of the views (no RNG, no clock mutation): hottest
        group's top-k hot actors onto the coldest group's least loaded
        server, only when the mean-CPU gap exceeds the band.  Cost is
        ``O(groups + top_k)`` — independent of servers and actors.
        """
        config = self.manager.config
        means: Dict[int, float] = {}
        for group, view in views.items():
            count = view.get("server_count", 0)
            if count:
                means[group] = view.get("cpu_sum", 0.0) / count
        if len(means) < 2:
            return []
        hot = max(sorted(means), key=lambda g: means[g])
        cold = min(sorted(means), key=lambda g: means[g])
        if hot == cold or means[hot] - means[cold] <= config.cross_group_band:
            return []
        least = views[cold].get("least_loaded")
        if least is None or not least.server.running:
            return []
        now = self.manager.system.sim.now
        stability = config.stability_window_ms()
        actions: List[Action] = []
        for snap in views[hot].get("top_actors", ()):
            if len(actions) >= config.max_moves_per_server:
                break
            if snap.pinned or snap.migrating:
                continue
            if now - snap.last_placed_at < stability:
                continue
            if snap.server is least.server:
                continue
            actions.append(Action(
                kind="balance", actor=snap, src=snap.server,
                dst=least.server, resource="cpu",
                src_load_perc=means[hot]))
        return actions

    def _execute_cross(self, action: Action):
        """Admission-checked execution of one root-planned move (the
        same guards the LEM applies to its own actions)."""
        manager = self.manager
        sim = manager.system.sim
        config = manager.config
        record = manager.system.directory.try_lookup(action.actor_id)
        if record is None or record.migrating or record.pinned:
            return
        if record.server is not action.src:
            return  # stale: the actor moved since the aggregate
        if not action.dst.running or manager.is_draining(action.dst):
            return
        if (manager.server_quorumless(action.src)
                or manager.server_quorumless(action.dst)):
            return
        if sim.now - record.last_placed_at < config.stability_window_ms():
            return
        target_lem = manager.lem_for(action.dst)
        if target_lem is None:
            return
        yield Timeout(sim, config.control_latency_ms)
        accepted = target_lem.check_idle_res(action)
        yield Timeout(sim, config.control_latency_ms)
        if not accepted:
            return
        manager.system.migrate_actor(record.ref, action.dst)
        manager.note_migration(action, issuer="root")

    # -- fleet-scaling arbitration --------------------------------------

    def concurs(self, requester_group: Optional[int], direction: str) -> bool:
        """Root's scale-vote arbitration: a majority of the *other*
        groups must not contradict the requesting group's view.  A group
        with no view yet abstains in favour (same rule as a GEM that has
        processed no rounds).  Vacuously true with one group — the
        degenerate tree adds no veto, preserving flat equivalence."""
        others = [group for group in self.hierarchy.groups.groups()
                  if group != requester_group]
        if not others:
            return True
        key = ("overload_fraction" if direction == "overloaded"
               else "underload_fraction")
        agreeing = 0
        for group in others:
            view = self.views.get(group)
            if view is None or view.get(key, 0.0) >= 0.5:
                agreeing += 1
        return agreeing * 2 >= len(others)


class ControlHierarchy:
    """Wires groups, leaf GEMs and the root tier to one manager."""

    def __init__(self, manager: "ElasticityManager") -> None:
        self.manager = manager
        self.groups = ServerGroupMap(manager.config.server_group_size)
        #: gem_id -> group owning that leaf.
        self.leaf_group: Dict[int, int] = {}
        self.root = RootGem(manager, self)
        self._last_published: Dict[int, GroupAggregate] = {}
        #: Membership announcements, in assignment order.  A degenerate
        #: (single-group) tree is inert and emits nothing; the backlog
        #: is flushed the moment a second group opens.
        self._memberships: List[Tuple[str, int, int]] = []
        self._announced = 0
        for server in manager.system.provisioner.servers:
            self.groups.assign(server)

    def build_leaf_gems(self) -> List["GEM"]:
        """One set of ``gem_count`` leaf GEMs per initial group (a
        groupless fleet still gets group 0's set so reports have
        somewhere to go)."""
        from .gem import GEM
        gems: List[GEM] = []
        for group in range(max(1, self.groups.group_count())):
            for _ in range(self.manager.config.gem_count):
                gem = GEM(self.manager, len(gems))
                self.leaf_group[gem.gem_id] = group
                gems.append(gem)
        return gems

    def active(self) -> bool:
        """The tree only does work with more than one group; degenerate
        (single-group) trees stay fully inert so hierarchical mode is
        bit-identical to flat there."""
        return self.groups.group_count() > 1

    def note_server(self, server: Server) -> int:
        """Assign (idempotently) a server to its group, growing the leaf
        tier when the assignment opens a new group.

        ``group-assigned`` events follow the inertness rule: nothing is
        emitted while the tree is degenerate (one group — where the
        event stream must stay bit-identical to flat mode); when a
        second group opens, the whole backlog flushes in assignment
        order, so the checker's membership view is complete before the
        first aggregate can possibly be published.
        """
        group = self.groups.assign(server)
        if group not in self.leaf_group.values():
            from .gem import GEM
            for _ in range(self.manager.config.gem_count):
                gem = GEM(self.manager, len(self.manager.gems))
                gem.epoch = self.manager.epoch
                self.leaf_group[gem.gem_id] = group
                self.manager.gems.append(gem)
        self._memberships.append((server.name, server.server_id, group))
        if self.active():
            while self._announced < len(self._memberships):
                name, server_id, grp = self._memberships[self._announced]
                self._announced += 1
                self.manager.emit("group-assigned", server=name,
                                  server_id=server_id, group=grp)
        return group

    def group_for_server(self, server: Server) -> int:
        group = self.groups.group_of(server.server_id)
        if group is None:
            group = self.groups.assign(server)
        return group

    def leaves_of(self, group: int) -> List["GEM"]:
        return [gem for gem in self.manager.gems
                if self.leaf_group.get(gem.gem_id) == group]

    def publish(self, gem: "GEM", servers: List[ServerSnapshot],
                actors_by_server: Dict[int, List[ActorSnapshot]]) -> None:
        """Leaf round complete: delta-compress this group's aggregate
        and ship it to the root (one control-latency hop)."""
        config = self.manager.config
        group = self.leaf_group.get(gem.gem_id)
        if group is None:
            # Groupless emergency respawn (see respawn_gem): it may have
            # heard from several groups at once, so a "group" aggregate
            # from it would be meaningless — skip.
            return
        # A leaf can transiently hear from foreign servers (their own
        # group's leaves all failed, so they fell back to this one).
        # Those reports inform this round's decisions, but the *group*
        # aggregate covers only the group's own members.
        own = [snap for snap in servers
               if self.groups.group_of(snap.server.server_id) == group]
        if not own:
            return
        own_actors = {server_id: snaps
                      for server_id, snaps in actors_by_server.items()
                      if self.groups.group_of(server_id) == group}
        aggregate = build_aggregate(group, gem, own, own_actors,
                                    config.group_top_k)
        delta = aggregate.delta_against(self._last_published.get(group))
        self._last_published[group] = aggregate
        self.manager.emit(
            "gem-aggregate", group=group, gem_id=gem.gem_id,
            epoch=gem.epoch, server_names=aggregate.server_names,
            server_cpu_percs=aggregate.server_cpu_percs,
            cpu_sum=aggregate.cpu_sum, mem_sum=aggregate.mem_sum,
            net_sum=aggregate.net_sum,
            server_count=aggregate.server_count,
            actor_count=aggregate.actor_count,
            delta_fields=tuple(sorted(delta)))
        self.manager.system.sim.schedule(
            config.control_latency_ms, self.root.receive_aggregate,
            group, delta)
