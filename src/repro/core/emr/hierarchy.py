"""Two-tier GEM tree for cluster-scale control (hierarchical mode).

Flat PLASMA lets every GEM evaluate whatever servers reported to it —
fine at 10 servers, quadratic pain at 5,000.  With
``EmrConfig.control_plane="hierarchical"``:

- **Leaf tier**: the fleet is split into contiguous *server groups*
  (:class:`~repro.cluster.ServerGroupMap`); each group gets its own set
  of ``gem_count`` leaf GEMs running the unchanged Algorithm-2 loop over
  group-local snapshots.  LEMs shuffle among their *group's* leaves only
  (same RNG stream, same draw — with one group this is bit-identical to
  flat mode, which the differential harness pins).
- **Root tier**: after each processing round a leaf publishes a
  :class:`GroupAggregate` — summed resource vectors plus the top-k hot
  actors, *not* per-actor rows — to the single :class:`RootGem`.
  Aggregates are **delta-compressed** (only fields that changed since
  the group's last publish ship) and **batched** (the root folds
  everything arriving within one collection window before deciding).
  The root arbitrates exactly two things: cross-group migrations (top-k
  hot actors from the hottest group onto the coldest group's least
  loaded server) and fleet scaling (a veto over leaf scale votes when a
  majority of *other* groups disagrees).

With a single group the tree is degenerate and the hierarchy is fully
inert: no aggregates, no root events, no root decisions — the leaf set
behaves exactly like the flat GEM set.  Root decision cost is
``O(groups · top_k)`` per round, so sizing groups ~sqrt(fleet) keeps it
sub-linear in server count (``benchmarks/test_scale_cluster.py`` gates
this).

Every tier has a failure-and-recovery story (PR 9):

- **Root failover**: the root is killable (``kill-root`` chaos fault)
  and generation-fenced.  The first leaf to publish after the root dies
  promotes deterministically (:meth:`ControlHierarchy.ensure_root` —
  also driven by the failure detector); promotion bumps ``generation``,
  discards the folded views, and clears the whole delta history so
  every group's next publish is a *full* aggregate.  Root-planned
  migrations in flight check the generation before committing, so a
  stale root's decision never executes after its successor takes over.
- **Leaf failover with group adoption**: when all of a group's home
  leaves fail, a surviving leaf from another group *adopts* the group
  (``_adopted``): LEM reports route to the adopter, which publishes a
  separate per-group aggregate for each group it serves.  Adoption and
  release both reset the group's delta baseline — ``delta_against``
  assumes an unbroken stream, so any publisher change forces a full
  republish (the ``aggregate-resync-after-failover`` invariant).
- A delta arriving for a group the root has no view of (in flight
  across a promotion, or after a view prune) is undecodable and is
  dropped unless it carries every field; the full republish that the
  baseline reset forces supersedes it within one report period.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ...cluster import Server, ServerGroupMap
from ...sim import Timeout, spawn
from ..profiling import ActorSnapshot, ServerSnapshot
from .actions import Action

if TYPE_CHECKING:  # pragma: no cover
    from .gem import GEM
    from .manager import ElasticityManager

__all__ = ["ControlHierarchy", "GroupAggregate", "RootGem"]


@dataclass
class GroupAggregate:
    """One leaf group's compressed REPORT to the root tier.

    Summed resource vectors and a bounded hot set — the root never sees
    per-actor rows, which is what keeps its per-round decision cost
    independent of the actor population.
    """

    group: int
    gem_id: int
    epoch: int
    server_count: int
    actor_count: int
    cpu_sum: float
    mem_sum: float
    net_sum: float
    overload_fraction: float
    underload_fraction: float
    server_names: Tuple[str, ...]
    server_cpu_percs: Tuple[float, ...]
    top_actors: Tuple[ActorSnapshot, ...]
    least_loaded: Optional[ServerSnapshot]

    def delta_against(self, prev: Optional["GroupAggregate"]) -> Dict[str, Any]:
        """Fields that changed since ``prev`` (everything on first
        publish).  ``group``/``gem_id``/``epoch`` always ship — they are
        the envelope, not payload."""
        names = [f.name for f in dataclass_fields(self)]
        if prev is None:
            return {name: getattr(self, name) for name in names}
        delta: Dict[str, Any] = {"group": self.group, "gem_id": self.gem_id,
                                 "epoch": self.epoch}
        for name in names:
            if name in delta:
                continue
            if getattr(self, name) != getattr(prev, name):
                delta[name] = getattr(self, name)
        return delta


def build_aggregate(group: int, gem: "GEM",
                    servers: List[ServerSnapshot],
                    actors_by_server: Dict[int, List[ActorSnapshot]],
                    top_k: int) -> GroupAggregate:
    """Fold a leaf round's group-local snapshot into an aggregate."""
    actors: List[ActorSnapshot] = []
    for snaps in actors_by_server.values():
        actors.extend(snaps)
    top = tuple(sorted(actors,
                       key=lambda s: (-s.cpu_perc, s.actor_id))[:top_k])
    least = None
    if servers:
        least = min(servers, key=lambda s: (s.cpu_perc, s.server.server_id))
    return GroupAggregate(
        group=group, gem_id=gem.gem_id, epoch=gem.epoch,
        server_count=len(servers), actor_count=len(actors),
        cpu_sum=sum(s.cpu_perc for s in servers),
        mem_sum=sum(s.mem_perc for s in servers),
        net_sum=sum(s.net_perc for s in servers),
        overload_fraction=gem.overload_fraction,
        underload_fraction=gem.underload_fraction,
        server_names=tuple(s.server.name for s in servers),
        server_cpu_percs=tuple(s.cpu_perc for s in servers),
        top_actors=top, least_loaded=least)


#: Number of fields a *full* (non-delta) aggregate carries; a delta for
#: a group with no folded view is undecodable below this.
_AGGREGATE_FIELD_COUNT = len(dataclass_fields(GroupAggregate))


class RootGem:
    """Root tier: folds per-group aggregate views, arbitrates only
    cross-group migrations and fleet scaling.

    Killable and fenced: ``failed`` stops ingest, rounds and vetoes;
    ``generation`` is bumped on every promotion so in-flight decisions
    from a dead incarnation can be rejected; ``epoch`` follows the
    manager's partition epoch (the root always sides with the majority).
    """

    def __init__(self, manager: "ElasticityManager",
                 hierarchy: "ControlHierarchy") -> None:
        self.manager = manager
        self.hierarchy = hierarchy
        #: Folded per-group view: group -> field dict, updated by deltas.
        self.views: Dict[int, Dict[str, Any]] = {}
        self._flush_scheduled = False
        self.rounds_processed = 0
        self.cross_migrations_planned = 0
        self.aggregates_received = 0
        self.failed = False
        #: Incarnation counter: bumped on every promotion.
        self.generation = 0
        #: gem_id of the promoted leaf hosting root duty (``None`` for
        #: the initial / respawned dedicated root).
        self.host_gem_id: Optional[int] = None
        self.epoch = 0

    def fail(self) -> None:
        """Fail-stop this incarnation (chaos ``kill-root``)."""
        self.failed = True

    def recover(self) -> None:
        """Recover the *same* incarnation (no promotion happened).

        The recovering root missed every delta shipped while it was
        down, so its folded views are garbage: discard them and reset
        the delta history so each group's next publish is full.
        """
        self.failed = False
        self.views.clear()
        self.hierarchy.reset_delta_history()

    # -- aggregate ingest (delta-folded, batched) -----------------------

    def receive_aggregate(self, group: int, delta: Dict[str, Any]) -> None:
        if self.failed:
            return
        if group not in self.views and len(delta) < _AGGREGATE_FIELD_COUNT:
            # A delta with no base view to fold onto is undecodable —
            # it was in flight across a promotion/recovery (which wiped
            # the views) or a view prune.  Drop it; the baseline reset
            # already forced the publisher's next aggregate to be full.
            return
        self.aggregates_received += 1
        self.views.setdefault(group, {}).update(delta)
        if not self._flush_scheduled:
            # Batch: every aggregate landing within one collection
            # window rides the same root round.
            self._flush_scheduled = True
            self.manager.system.sim.schedule(
                self.manager.config.gem_wait_ms, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self.manager.running or self.failed or not self.views:
            return
        self.rounds_processed += 1
        self.manager.emit("root-round", generation=self.generation,
                          groups=tuple(
            (group, view.get("cpu_sum", 0.0), view.get("server_count", 0),
             view.get("actor_count", 0))
            for group, view in sorted(self.views.items())))
        for action in self.arbitrate(self.views):
            self.cross_migrations_planned += 1
            spawn(self.manager.system.sim, self._execute_cross(action),
                  name=f"root/cross-migrate/{action.actor_id}")

    # -- cross-group arbitration ----------------------------------------

    def arbitrate(self, views: Dict[int, Dict[str, Any]]) -> List[Action]:
        """Plan cross-group balance moves from the folded views.

        Pure function of the views (no RNG, no clock mutation): hottest
        group's top-k hot actors onto the coldest group's least loaded
        server, only when the mean-CPU gap exceeds the band.  Cost is
        ``O(groups + top_k)`` — independent of servers and actors.
        """
        config = self.manager.config
        means: Dict[int, float] = {}
        for group, view in views.items():
            count = view.get("server_count", 0)
            if count:
                means[group] = view.get("cpu_sum", 0.0) / count
        if len(means) < 2:
            return []
        hot = max(sorted(means), key=lambda g: means[g])
        cold = min(sorted(means), key=lambda g: means[g])
        if hot == cold or means[hot] - means[cold] <= config.cross_group_band:
            return []
        least = views[cold].get("least_loaded")
        if least is None or not least.server.running:
            return []
        now = self.manager.system.sim.now
        stability = config.stability_window_ms()
        actions: List[Action] = []
        for snap in views[hot].get("top_actors", ()):
            if len(actions) >= config.max_moves_per_server:
                break
            if snap.pinned or snap.migrating:
                continue
            if now - snap.last_placed_at < stability:
                continue
            if snap.server is least.server:
                continue
            actions.append(Action(
                kind="balance", actor=snap, src=snap.server,
                dst=least.server, resource="cpu",
                src_load_perc=means[hot]))
        return actions

    def _execute_cross(self, action: Action):
        """Admission-checked execution of one root-planned move (the
        same guards the LEM applies to its own actions).

        Generation-fenced: the proc captures the issuing incarnation and
        bails at every resumption if the root died or was superseded —
        a stale root's plan must never start a migration (once started,
        the two-phase protocol's own timeouts drive it to commit or
        rollback regardless of what happens to the root).
        """
        manager = self.manager
        sim = manager.system.sim
        config = manager.config
        generation = self.generation
        record = manager.system.directory.try_lookup(action.actor_id)
        if record is None or record.migrating or record.pinned:
            return
        if record.server is not action.src:
            return  # stale: the actor moved since the aggregate
        if not action.dst.running or manager.is_draining(action.dst):
            return
        if (manager.server_quorumless(action.src)
                or manager.server_quorumless(action.dst)):
            return
        if sim.now - record.last_placed_at < config.stability_window_ms():
            return
        target_lem = manager.lem_for(action.dst)
        if target_lem is None:
            return
        yield Timeout(sim, config.control_latency_ms)
        if self.failed or self.generation != generation:
            return
        accepted = target_lem.check_idle_res(action)
        yield Timeout(sim, config.control_latency_ms)
        if not accepted:
            return
        if (self.failed or self.generation != generation
                or self.epoch < manager.epoch):
            return  # issuing incarnation lost authority mid-flight
        manager.system.migrate_actor(record.ref, action.dst)
        manager.note_migration(action, issuer="root")

    # -- fleet-scaling arbitration --------------------------------------

    def concurs(self, requester_group: Optional[int], direction: str) -> bool:
        """Root's scale-vote arbitration: a majority of the *other*
        groups must not contradict the requesting group's view.  A group
        with no view yet abstains in favour (same rule as a GEM that has
        processed no rounds).  Vacuously true with one group — the
        degenerate tree adds no veto, preserving flat equivalence.  A
        failed root abstains entirely: no veto authority while dead."""
        if self.failed:
            return True
        others = [group for group in self.hierarchy.groups.groups()
                  if group != requester_group]
        if not others:
            return True
        key = ("overload_fraction" if direction == "overloaded"
               else "underload_fraction")
        agreeing = 0
        for group in others:
            view = self.views.get(group)
            if view is None or view.get(key, 0.0) >= 0.5:
                agreeing += 1
        return agreeing * 2 >= len(others)


class ControlHierarchy:
    """Wires groups, leaf GEMs and the root tier to one manager."""

    def __init__(self, manager: "ElasticityManager") -> None:
        self.manager = manager
        self.groups = ServerGroupMap(manager.config.server_group_size)
        #: gem_id -> group owning that leaf.
        self.leaf_group: Dict[int, int] = {}
        self.root = RootGem(manager, self)
        self._last_published: Dict[int, GroupAggregate] = {}
        #: group -> gem_id of the foreign leaf currently adopting it
        #: (all the group's home leaves are failed).  ``leaf_group``
        #: stays the permanent *home* map — adoption never rewrites it,
        #: so a recovering home leaf can reclaim its group.
        self._adopted: Dict[int, int] = {}
        #: Membership announcements, in assignment order.  A degenerate
        #: (single-group) tree is inert and emits nothing; the backlog
        #: is flushed the moment a second group opens.
        self._memberships: List[Tuple[str, int, int]] = []
        self._announced = 0
        for server in manager.system.provisioner.servers:
            self.groups.assign(server)

    def build_leaf_gems(self) -> List["GEM"]:
        """One set of ``gem_count`` leaf GEMs per initial group (a
        groupless fleet still gets group 0's set so reports have
        somewhere to go)."""
        from .gem import GEM
        gems: List[GEM] = []
        for group in range(max(1, self.groups.group_count())):
            for _ in range(self.manager.config.gem_count):
                gem = GEM(self.manager, len(gems))
                self.leaf_group[gem.gem_id] = group
                gems.append(gem)
        return gems

    def active(self) -> bool:
        """The tree only does work with more than one group; degenerate
        (single-group) trees stay fully inert so hierarchical mode is
        bit-identical to flat there."""
        return self.groups.group_count() > 1

    def note_server(self, server: Server) -> int:
        """Assign (idempotently) a server to its group, growing the leaf
        tier when the assignment opens a new group.

        ``group-assigned`` events follow the inertness rule: nothing is
        emitted while the tree is degenerate (one group — where the
        event stream must stay bit-identical to flat mode); when a
        second group opens, the whole backlog flushes in assignment
        order, so the checker's membership view is complete before the
        first aggregate can possibly be published.
        """
        group = self.groups.assign(server)
        if group not in self.leaf_group.values():
            from .gem import GEM
            for _ in range(self.manager.config.gem_count):
                gem = GEM(self.manager, len(self.manager.gems))
                gem.epoch = self.manager.epoch
                self.leaf_group[gem.gem_id] = group
                self.manager.gems.append(gem)
        self._memberships.append((server.name, server.server_id, group))
        if self.active():
            while self._announced < len(self._memberships):
                name, server_id, grp = self._memberships[self._announced]
                self._announced += 1
                self.manager.emit("group-assigned", server=name,
                                  server_id=server_id, group=grp)
        return group

    def group_for_server(self, server: Server) -> int:
        group = self.groups.group_of(server.server_id)
        if group is None:
            group = self.groups.assign(server)
        return group

    def leaves_of(self, group: int) -> List["GEM"]:
        return [gem for gem in self.manager.gems
                if self.leaf_group.get(gem.gem_id) == group]

    def _gem_by_id(self, gem_id: Optional[int]) -> Optional["GEM"]:
        if gem_id is None:
            return None
        for gem in self.manager.gems:
            if gem.gem_id == gem_id:
                return gem
        return None

    def adopter_for(self, group: int) -> Optional["GEM"]:
        """The alive foreign leaf adopting ``group``, if any."""
        adopter = self._gem_by_id(self._adopted.get(group))
        if adopter is not None and adopter.failed:
            return None
        return adopter

    def _group_has_running_member(self, group: int) -> bool:
        for server in self.manager.system.provisioner.servers:
            if (server.running
                    and self.groups.group_of(server.server_id) == group):
                return True
        return False

    # -- failure and recovery -------------------------------------------

    def reset_delta_history(self) -> None:
        """Drop every group's delta baseline: the next publish from each
        group ships a full aggregate.  Called whenever the aggregate
        stream breaks (root promotion or recovery)."""
        self._last_published.clear()

    def ensure_root(self) -> bool:
        """Promote a replacement root if the current one is failed.

        Deterministic: the alive leaf with the lowest gem_id hosts the
        next incarnation (every leaf runs the same rule, so whichever
        one detects the failure first — via its own publish or the
        failure detector — picks the same successor).  With no alive
        leaf a fresh dedicated root is respawned instead.  Either way
        the views and the delta history are discarded: the new
        incarnation rebuilds from the full aggregates that leaves
        re-publish.  Returns True if a promotion happened.
        """
        root = self.root
        if not root.failed:
            return False
        alive = [gem for gem in self.manager.gems
                 if not gem.failed
                 and self.leaf_group.get(gem.gem_id) is not None]
        promoted = min(alive, key=lambda g: g.gem_id) if alive else None
        root.generation += 1
        root.failed = False
        root.host_gem_id = promoted.gem_id if promoted else None
        root.views.clear()
        root.epoch = self.manager.epoch
        self.reset_delta_history()
        self.manager.root_failovers += 1
        if self.active():
            self.manager.emit(
                "root-failover", generation=root.generation,
                promoted_leaf=(promoted.gem_id if promoted else None),
                respawned=promoted is None)
        return True

    def reassign_orphan_groups(self) -> None:
        """Real leaf failover: groups whose home leaves are all failed
        are *adopted* by a surviving foreign leaf (LEM reports route to
        it via ``pick_gem`` and it publishes the group's aggregates),
        instead of falling through to the groupless emergency respawn.
        Recovered home leaves reclaim their group.  Every adoption
        change resets the group's delta baseline so the next publisher
        starts with a full aggregate."""
        if not self.active():
            return
        manager = self.manager
        # Release first: a recovered home leaf reclaims its group, and a
        # dead adopter frees the slot for the re-adoption pass below.
        for group in list(self._adopted):
            adopter_id = self._adopted[group]
            adopter = self._gem_by_id(adopter_id)
            home_alive = [g for g in self.leaves_of(group) if not g.failed]
            if home_alive:
                del self._adopted[group]
                self._last_published.pop(group, None)
                manager.emit("group-adoption-released", group=group,
                             adopter=adopter_id,
                             leaf=min(g.gem_id for g in home_alive))
            elif adopter is None or adopter.failed:
                del self._adopted[group]
                self._last_published.pop(group, None)
        alive = [gem for gem in manager.gems
                 if not gem.failed
                 and self.leaf_group.get(gem.gem_id) is not None]
        for group in self.groups.groups():
            if group in self._adopted:
                continue
            home = self.leaves_of(group)
            if not home or any(not gem.failed for gem in home):
                continue
            if not self._group_has_running_member(group):
                continue  # dissolved group: nothing left to manage
            candidates = [gem for gem in alive
                          if self.leaf_group.get(gem.gem_id) != group]
            if not candidates:
                continue
            adopter = min(candidates, key=lambda g: g.gem_id)
            self._adopted[group] = adopter.gem_id
            self._last_published.pop(group, None)
            manager.leaf_failovers += 1
            manager.emit("group-adopted", group=group,
                         adopter=adopter.gem_id,
                         home_leaves=tuple(sorted(g.gem_id for g in home)))

    def note_server_gone(self, server: Server) -> None:
        """A server crashed or retired: if its whole group is gone,
        drop the group's delta baseline, folded root view and adoption —
        a stale baseline would corrupt the next delta if the group ever
        repopulates, and a stale cold view would attract cross-group
        migrations onto dead servers forever."""
        group = self.groups.group_of(server.server_id)
        if group is None:
            return
        if self._group_has_running_member(group):
            return
        self._last_published.pop(group, None)
        self.root.views.pop(group, None)
        self._adopted.pop(group, None)

    def publish(self, gem: "GEM", servers: List[ServerSnapshot],
                actors_by_server: Dict[int, List[ActorSnapshot]]) -> None:
        """Leaf round complete: delta-compress one aggregate per group
        this leaf serves (its home group plus any groups it adopted) and
        ship each to the root (one control-latency hop).

        This is also the leaf-driven root failure detection path: a
        publish that finds the root dead promotes first (and thereby
        resets the delta history), so the promoted incarnation's first
        inputs are full aggregates — within one report period of the
        failure, without waiting for the suspicion timer.
        """
        config = self.manager.config
        home = self.leaf_group.get(gem.gem_id)
        if home is None:
            # Groupless emergency respawn (see respawn_gem): it may have
            # heard from several groups at once, so a "group" aggregate
            # from it would be meaningless — skip.
            return
        if self.root.failed:
            self.ensure_root()
        groups_served = [home] + sorted(
            group for group, adopter_id in self._adopted.items()
            if adopter_id == gem.gem_id and group != home)
        for group in groups_served:
            # A leaf can transiently hear from foreign servers (their
            # own group's leaves all failed, so they fell back to this
            # one).  Those reports inform this round's decisions, but
            # each *group* aggregate covers only that group's members.
            own = [snap for snap in servers
                   if self.groups.group_of(snap.server.server_id) == group]
            if not own:
                continue
            own_actors = {server_id: snaps
                          for server_id, snaps in actors_by_server.items()
                          if self.groups.group_of(server_id) == group}
            aggregate = build_aggregate(group, gem, own, own_actors,
                                        config.group_top_k)
            delta = aggregate.delta_against(self._last_published.get(group))
            self._last_published[group] = aggregate
            self.manager.emit(
                "gem-aggregate", group=group, gem_id=gem.gem_id,
                epoch=gem.epoch, server_names=aggregate.server_names,
                server_cpu_percs=aggregate.server_cpu_percs,
                cpu_sum=aggregate.cpu_sum, mem_sum=aggregate.mem_sum,
                net_sum=aggregate.net_sum,
                server_count=aggregate.server_count,
                actor_count=aggregate.actor_count,
                delta_fields=tuple(sorted(delta)))
            self.manager.system.sim.schedule(
                config.control_latency_ms, self.root.receive_aggregate,
                group, delta)
