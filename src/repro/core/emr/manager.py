"""The elasticity management runtime facade.

:class:`ElasticityManager` wires everything together: it attaches the
profiling runtime to the actor system, creates one LEM per server (and
for every server that later joins), starts the configured number of
GEMs, installs rule-aware new-actor placement, and tracks migrations and
fleet changes for the benchmarks.

Typical use::

    policy = compile_source(EPL_RULES, [Folder, File])
    manager = ElasticityManager(system, policy,
                                EmrConfig(period_ms=80_000.0))
    manager.start()
    ... run the simulation ...
    manager.stop()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ...actors import ActorRecord, ActorRef, ActorSystem, RuntimeHooks
from ...cluster import Server
from ...sim import Timeout, spawn
from ..epl import CompiledPolicy
from ..profiling import ActorSnapshot, ProfilingRuntime
from .actions import Action
from .config import EmrConfig
from .gem import GEM
from .lem import LEM
from .placement import PlasmaPlacement

__all__ = ["ElasticityManager", "MigrationEvent"]


@dataclass
class _PartitionEntry:
    """Control-plane view of one active network partition.

    ``server_ids``/``gem_ids`` are the group side of the cut as injected;
    ``minority_server_ids``/``minority_gem_ids`` are recomputed against
    the *current* running fleet (a crash mid-partition can flip which
    side holds the majority).
    """

    server_ids: FrozenSet[int]
    gem_ids: FrozenSet[int]
    symmetric: bool
    minority_server_ids: FrozenSet[int] = frozenset()
    minority_gem_ids: FrozenSet[int] = frozenset()
    #: The full minority side, crashed servers included.  The majority's
    #: failure detector cannot see liveness across the cut, so "behind
    #: the cut" must not depend on whether the server actually crashed.
    cut_server_ids: FrozenSet[int] = frozenset()


@dataclass
class MigrationEvent:
    """One migration started by the elasticity runtime.

    ``rule_line`` is the source line of the EPL rule whose behavior
    produced the action (-1 for non-rule moves such as drain), so a
    migration can always be explained back to the policy text.
    """

    time_ms: float
    actor: ActorRef
    kind: str
    src: str
    dst: str
    rule_line: int = -1


class _EmrSystemHooks(RuntimeHooks):
    """Feeds actor-runtime crash events into the elasticity manager.

    A LEM runs *on* its server, so it dies with the host immediately;
    GEM-side awareness of the failure only comes later, when the
    heartbeat silence exceeds the suspicion timeout.
    """

    def __init__(self, manager: "ElasticityManager") -> None:
        self.manager = manager

    def on_server_crashed(self, server: Server,
                          lost: List[ActorRecord]) -> None:
        self.manager._note_server_crash(server, lost)


class ElasticityManager:
    """PLASMA's elasticity management runtime (EMR)."""

    def __init__(self, system: ActorSystem, policy: CompiledPolicy,
                 config: Optional[EmrConfig] = None) -> None:
        self.system = system
        #: The narrow :class:`~repro.runtime.RuntimeBackend` surface the
        #: elasticity layer drives — every migrate/pin/observe call below
        #: goes through it, never through runtime internals, so the EMR
        #: stays portable across the sim and live backends.
        self.backend = system.backend
        self.policy = policy
        self.config = config or EmrConfig()
        self.running = False
        self.profiler = ProfilingRuntime(
            system.sim, window_ms=self.config.period_ms,
            overhead_cpu_ms=self.config.profiling_overhead_cpu_ms,
            incremental=self.config.incremental_profiling,
            warm_start=self.config.warm_start_profiles,
            meter_backend=self.config.meter_backend)
        #: Durable-state subsystem; created at start() when an enabled
        #: DurabilityConfig is carried on the EmrConfig, else None.
        self.durability = None
        #: Overload-protection subsystem; created at start() when an
        #: OverloadConfig is carried on the EmrConfig, else None.  The
        #: same object is installed as ``system.overload`` so the data
        #: plane and control plane share one ledger + brownout machine.
        self.overload = None
        self.placement = PlasmaPlacement(self)
        #: Two-tier GEM tree (``control_plane="hierarchical"``): server
        #: groups, per-group leaf GEMs, and the root aggregate tier.
        #: None in flat mode — every consumer guards on that.
        self.hierarchy = None
        if self.config.control_plane == "hierarchical":
            from .hierarchy import ControlHierarchy
            self.hierarchy = ControlHierarchy(self)
            self.gems: List[GEM] = self.hierarchy.build_leaf_gems()
        else:
            self.gems: List[GEM] = [GEM(self, i)
                                    for i in range(self.config.gem_count)]
        self.lems: Dict[int, LEM] = {}
        self.migration_log: List[MigrationEvent] = []
        self._draining: Set[int] = set()
        self._lem_counter = 0
        self._gem_rng = system.streams.stream("lem-gem-shuffle")
        self._listeners: List[Callable[[str, dict], None]] = []
        #: When true, LEMs/GEMs emit verbose per-round events
        #: (``lem-round``, ``actions-resolved``, ``gem-vote``) on the
        #: event bus for the invariant checker.  Off by default so the
        #: tracer's normal event stream (and the hot path) is unchanged.
        self.debug_events = False
        self._last_report: Dict[Server, float] = {}
        self._lost_actors: Dict[int, List[ActorRecord]] = {}
        self._failed_gems_noted: Set[int] = set()
        #: Hierarchical failover accounting, surfaced in fuzz summaries:
        #: root promotions/respawns and group adoptions performed.
        self.root_failovers = 0
        self.leaf_failovers = 0
        self._system_hooks = _EmrSystemHooks(self)
        #: Control-plane epoch: bumped on every partition event (inject
        #: and heal).  Every GEM decision carries the epoch it was made
        #: under; LEMs reject commands from a lower epoch.
        self.epoch = 0
        self._partitions: Dict[int, _PartitionEntry] = {}
        self._isolated_servers: FrozenSet[int] = frozenset()
        self._isolated_gems: FrozenSet[int] = frozenset()
        self._cut_off_servers: FrozenSet[int] = frozenset()
        #: Servers the failure detector declared unreachable (silent but
        #: cut off by a partition — possibly still alive on the far
        #: side), by server id; value records the server and the last
        #: heartbeat time.  Unlike a suspected crash, no resurrection
        #: happens until a heal confirms the server's fate.
        self._unreachable: Dict[int, Tuple[Server, float]] = {}
        self._probe_running = False
        system.provisioner.add_join_listener(self._on_server_join)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Attach profiling and start per-server LEM period timers."""
        if self.running:
            return
        self.running = True
        self.backend.add_hooks(self.profiler)
        self.backend.add_hooks(self._system_hooks)
        self.system.placement_policy = self.placement
        self.system.epoch_source = lambda: self.epoch
        self.system.migration_phase_timeout_ms = \
            self.config.migration_phase_timeout_ms
        if (self.config.durability is not None
                and self.config.durability.enabled):
            from ...durability import DurabilityManager
            self.durability = DurabilityManager(self)
            self.durability.start()
        if self.config.overload is not None:
            from ...overload import OverloadManager
            self.overload = OverloadManager(
                self.system, self.config.overload, emit=self.emit)
            self.system.overload = self.overload
        for server in self.system.provisioner.servers:
            self._add_lem(server)
        bind_hosts = getattr(self.system.directory, "bind_hosts", None)
        if bind_hosts is not None:
            # Sharded directory: pin each shard to a host server so a
            # crash can take its shard range down (and remap it).
            bind_hosts(self.system.provisioner.servers)
        spawn(self.system.sim, self._janitor(), name="emr/janitor")
        if self.config.suspicion_timeout_ms is not None:
            spawn(self.system.sim, self._failure_detector(),
                  name="emr/failure-detector")

    def stop(self) -> None:
        """Stop elasticity management (profiling detaches too)."""
        if not self.running:
            return
        self.running = False
        if self.durability is not None:
            self.durability.stop()
            self.durability = None
        if self.overload is not None:
            if self.system.overload is self.overload:
                self.system.overload = None
            self.overload = None
        if self.profiler in self.system.hooks:
            self.backend.remove_hooks(self.profiler)
        if self._system_hooks in self.system.hooks:
            self.backend.remove_hooks(self._system_hooks)
        if self.system.placement_policy is self.placement:
            self.system.placement_policy = None
        self.system.epoch_source = None

    def _add_lem(self, server: Server) -> None:
        if server.server_id in self.lems:
            return
        if self.hierarchy is not None:
            self.hierarchy.note_server(server)
        lem = LEM(self, server, self._lem_counter)
        # A server booted mid-run joins at the current control-plane
        # epoch: the manager that boots it hands over the configuration,
        # so it must not reject the first RREPLY as "newer than mine".
        lem.epoch = self.epoch
        self._lem_counter += 1
        self.lems[server.server_id] = lem
        # Baseline heartbeat: a server that never manages a first round
        # must still become suspect once the timeout elapses.
        self._last_report[server] = self.system.sim.now
        lem.start()

    def _on_server_join(self, server: Server) -> None:
        if self.running:
            self._add_lem(server)

    def _janitor(self):
        """Periodic housekeeping: retire fully drained servers even when
        no migration event fires the check."""
        while self.running:
            yield Timeout(self.system.sim, self.config.period_ms / 2.0)
            self._maybe_retire()

    # ------------------------------------------------------------------
    # elasticity event bus (consumed by the tracer and the chaos engine)
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[str, dict], None]) -> None:
        """Subscribe to EMR events: ``listener(kind, detail_dict)``."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[str, dict], None]) -> None:
        """Unsubscribe a listener added with :meth:`add_listener`."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def emit(self, kind: str, **detail) -> None:
        """Broadcast an elasticity event to every listener."""
        for listener in list(self._listeners):
            listener(kind, detail)

    # ------------------------------------------------------------------
    # failure detection and recovery
    # ------------------------------------------------------------------

    def note_report(self, server: Server) -> None:
        """Heartbeat: a LEM round on ``server`` just started.

        A heartbeat from a quorum-less (minority-side) server cannot
        cross the partition to the authoritative control plane, so it is
        not recorded — after the suspicion timeout the failure detector
        declares the server *unreachable* (not crashed).
        """
        if self._partitions and server.server_id in self._isolated_servers:
            return
        self._last_report[server] = self.system.sim.now
        if self.overload is not None:
            # The LEM spoke: if it had been flagged as drowning, the
            # next silence starts a fresh announcement.
            self.overload.note_report_received(server.name)

    def _note_server_crash(self, server: Server,
                           lost: List[ActorRecord]) -> None:
        """The actor runtime lost a server: its LEM dies with it, and the
        records of the actors it hosted become resurrection tombstones.
        GEM-side suspicion (and recovery) follows via missed heartbeats.
        """
        lem = self.lems.pop(server.server_id, None)
        if lem is not None:
            lem.cancel()
        self._draining.discard(server.server_id)
        if lost:
            self._lost_actors[server.server_id] = list(lost)
        if self.hierarchy is not None:
            self.hierarchy.note_server_gone(server)
        self._note_directory_host_gone(server)

    def _note_directory_host_gone(self, server: Server) -> None:
        """A directory-shard host left the fleet: remap its shard range
        onto the survivors and drop its lookup cache."""
        note = getattr(self.system.directory, "note_host_crashed", None)
        if note is None:
            return
        shards_removed, records_moved = note(server.server_id)
        if shards_removed:
            self.emit("shard-remapped", server=server.name,
                      shards_removed=shards_removed,
                      records_moved=records_moved)

    def _failure_detector(self):
        """GEM-side failure detection (runs only when
        ``suspicion_timeout_ms`` is configured): a server whose LEM has
        been silent for longer than the suspicion timeout is declared
        dead, and the actors it hosted are re-created through rule-aware
        placement on the surviving servers.  Failed GEMs are detected on
        the same tick and their servers adopted by a surviving (or
        freshly respawned) GEM.
        """
        sim = self.system.sim
        timeout = self.config.suspicion_timeout_ms
        while self.running:
            yield Timeout(sim, timeout / 2.0)
            if not self.running:
                return
            now = sim.now
            for server, last in list(self._last_report.items()):
                if now - last > timeout:
                    if (self.overload is not None
                            and server.server_id not in self._cut_off_servers
                            and self.overload.is_browned_out(server.name)
                            and now - last <= timeout
                            * self.overload.config.brownout_stretch):
                        # Drowning, not dead: the LEM announced brownout,
                        # so its reporting period is stretched and the
                        # silence is expected.  Grant the same stretch
                        # factor of grace before suspecting — resurrecting
                        # actors off a merely-slow server would duplicate
                        # them.  Beyond the stretched timeout the server
                        # is treated as dead like any other (staleness
                        # stays bounded).
                        if self.overload.note_drowning(server.name):
                            self.emit("server-drowning", server=server.name,
                                      silence_ms=now - last)
                        continue
                    del self._last_report[server]
                    if server.server_id in self._cut_off_servers:
                        # Silent because the partition eats its
                        # heartbeats — it may well be alive on the far
                        # side.  Crashed and unreachable are
                        # indistinguishable from here, so do NOT
                        # resurrect: a double-placed actor is worse than
                        # a late recovery.  The heal-time anti-entropy
                        # pass settles its fate.
                        self._unreachable[server.server_id] = (server, last)
                        self.emit("server-unreachable", server=server.name,
                                  silence_ms=now - last)
                        continue
                    self._on_server_suspected(server, now - last)
            self._check_gems()

    def _on_server_suspected(self, server: Server, silence_ms: float) -> None:
        lost = self._lost_actors.pop(server.server_id, [])
        self.emit("server-suspected", server=server.name,
                  silence_ms=silence_ms, lost_actors=len(lost))
        if not self.config.resurrect_lost_actors:
            return
        for record in lost:
            self.backend.resurrect_actor(record)

    def _check_gems(self) -> None:
        """Note newly failed GEMs and hand their servers to a survivor.

        Adoption is implicit in the shuffling process of §4.3 — LEMs pick
        a random healthy GEM every round — so the adopter recorded here is
        the deterministic first survivor, purely for accounting.  When no
        GEM survives, a replacement is respawned so reports have
        somewhere to go next period.
        """
        for gem in list(self.gems):
            if not gem.failed:
                self._failed_gems_noted.discard(gem.gem_id)
                continue
            if gem.gem_id in self._failed_gems_noted:
                continue
            self._failed_gems_noted.add(gem.gem_id)
            survivors = [g for g in self.gems if not g.failed]
            adopter = survivors[0] if survivors else self.respawn_gem()
            self.emit("gem-failover", failed_gem=gem.gem_id,
                      adopter=adopter.gem_id,
                      respawned=not survivors)
        if self.hierarchy is not None:
            # Hierarchical failover rides the same detection tick: a
            # dead root is replaced, and groups whose home leaves are
            # all down are adopted by a surviving foreign leaf (or
            # released back when a home leaf recovers).
            if self.hierarchy.root.failed:
                self.hierarchy.ensure_root()
            self.hierarchy.reassign_orphan_groups()

    def respawn_gem(self) -> GEM:
        """Boot a replacement GEM (used when every GEM has failed).

        In hierarchical mode the respawn is deliberately *groupless*: it
        belongs to no leaf set, so every group's LEMs reach it through
        the ``pick_gem`` fallback and the fleet keeps a control plane
        until real leaves recover.  It publishes no group aggregate.
        """
        gem = GEM(self, len(self.gems))
        self.gems.append(gem)
        return gem

    # ------------------------------------------------------------------
    # partition tolerance: epochs, quorum, anti-entropy
    # ------------------------------------------------------------------

    def note_partition(self, token: int, server_ids: FrozenSet[int],
                       gem_ids: FrozenSet[int], symmetric: bool) -> None:
        """A network partition opened (called by the chaos engine).

        Advances the epoch, distributes it to the majority side only
        (the minority cannot hear about it — that is what makes its
        GEMs' later commands rejectably stale), and drops quorum-less
        GEMs into degraded read-only mode.
        """
        self._partitions[token] = _PartitionEntry(
            server_ids=frozenset(server_ids), gem_ids=frozenset(gem_ids),
            symmetric=symmetric)
        self._recompute_isolation()
        self.epoch += 1
        self.emit("epoch-advanced", epoch=self.epoch, reason="partition")
        self._sync_epochs(majority_only=True)
        self._refresh_gem_modes()
        if not self._probe_running:
            self._probe_running = True
            spawn(self.system.sim, self._quorum_probe(),
                  name="emr/quorum-probe")

    def note_partition_healed(self, token: int) -> None:
        """A partition healed: epoch-sync everyone (highest epoch wins),
        restore quorums, and run the anti-entropy pass."""
        entry = self._partitions.pop(token, None)
        if entry is None:
            return
        self._recompute_isolation()
        self.epoch += 1
        self.emit("epoch-advanced", epoch=self.epoch, reason="heal")
        self._sync_epochs(majority_only=False)
        self._refresh_gem_modes()
        self._anti_entropy(entry)

    def _recompute_isolation(self) -> None:
        """Recompute each partition's minority side against the current
        running fleet, and the union of all minority sides."""
        # Universe for side membership: the provisioner forgets crashed
        # servers, but a server that died behind a cut is still "behind
        # the cut" until a heal lets the majority confirm its fate.
        all_ids = {server.server_id
                   for server in self.system.provisioner.servers}
        all_ids.update(server.server_id for server in self._last_report)
        all_ids.update(self._unreachable)
        running = {server.server_id
                   for server in self.system.provisioner.servers
                   if server.running}
        isolated_servers: Set[int] = set()
        isolated_gems: Set[int] = set()
        cut_off: Set[int] = set()
        for entry in self._partitions.values():
            group_running = entry.server_ids & running
            rest_running = running - entry.server_ids
            # The side with a strict majority of running servers keeps
            # control-plane authority; ties leave the group side quorum-
            # less (quorum requires a strict majority).
            if len(group_running) > len(rest_running):
                entry.minority_server_ids = frozenset(rest_running)
                entry.minority_gem_ids = frozenset(
                    gem.gem_id for gem in self.gems
                    if gem.gem_id not in entry.gem_ids)
                entry.cut_server_ids = frozenset(all_ids - entry.server_ids)
            else:
                entry.minority_server_ids = frozenset(group_running)
                entry.minority_gem_ids = entry.gem_ids
                entry.cut_server_ids = frozenset(entry.server_ids & all_ids)
            isolated_servers.update(entry.minority_server_ids)
            isolated_gems.update(entry.minority_gem_ids)
            cut_off.update(entry.cut_server_ids)
        self._isolated_servers = frozenset(isolated_servers)
        self._isolated_gems = frozenset(isolated_gems)
        self._cut_off_servers = frozenset(cut_off)

    def _sync_epochs(self, majority_only: bool) -> None:
        for gem in self.gems:
            if not majority_only or not self._gem_isolated(gem):
                gem.epoch = max(gem.epoch, self.epoch)
        for lem in self.lems.values():
            if (not majority_only
                    or lem.server.server_id not in self._isolated_servers):
                lem.epoch = max(lem.epoch, self.epoch)
        if self.hierarchy is not None:
            # The root sits above the fabric and always sides with the
            # majority, so it is never fenced out by a partition.
            root = self.hierarchy.root
            root.epoch = max(root.epoch, self.epoch)

    def _gem_isolated(self, gem: GEM) -> bool:
        return gem.gem_id in self._isolated_gems

    def server_quorumless(self, server: Server) -> bool:
        """Is ``server`` on the minority side of any active partition?
        Quorum-less servers defer all migrations (LEM execute guard)."""
        return bool(self._partitions
                    and server.server_id in self._isolated_servers)

    def report_reachable(self, server: Server, gem: GEM) -> bool:
        """Can a REPORT from ``server``'s LEM reach ``gem``?"""
        for entry in self._partitions.values():
            server_in = server.server_id in entry.server_ids
            gem_in = gem.gem_id in entry.gem_ids
            if server_in != gem_in and (entry.symmetric or server_in):
                return False
        return True

    def reply_reachable(self, gem: GEM, server: Server) -> bool:
        """Can an RREPLY from ``gem`` reach ``server``'s LEM?"""
        for entry in self._partitions.values():
            server_in = server.server_id in entry.server_ids
            gem_in = gem.gem_id in entry.gem_ids
            if server_in != gem_in and (entry.symmetric or gem_in):
                return False
        return True

    def _gems_mutually_reachable(self, first: GEM, second: GEM) -> bool:
        """A vote needs a request and a reply, so one severed direction
        is enough to lose the peer."""
        for entry in self._partitions.values():
            if ((first.gem_id in entry.gem_ids)
                    != (second.gem_id in entry.gem_ids)):
                return False
        return True

    def _gem_quorumless(self, gem: GEM) -> bool:
        """A GEM has quorum while it can exchange control messages with
        a strict majority of the running servers' LEMs."""
        if not self._partitions:
            return False
        running = [server for server in self.system.provisioner.servers
                   if server.running]
        if not running:
            return False
        reachable = sum(
            1 for server in running
            if self.report_reachable(server, gem)
            and self.reply_reachable(gem, server))
        return reachable * 2 <= len(running)

    def _refresh_gem_modes(self) -> None:
        for gem in self.gems:
            if gem.failed:
                continue
            quorumless = self._gem_quorumless(gem)
            if quorumless and not gem.degraded:
                gem.degraded = True
                self.emit("gem-degraded", gem_id=gem.gem_id,
                          epoch=gem.epoch)
            elif not quorumless and gem.degraded:
                gem.degraded = False
                self.emit("gem-restored", gem_id=gem.gem_id,
                          epoch=gem.epoch)

    def _quorum_probe(self):
        """Re-evaluates quorums while any partition is active: a crash
        or boot mid-partition can flip which side holds the majority.
        The process exists only between the first inject and the last
        heal, so fault-free runs schedule nothing."""
        sim = self.system.sim
        interval = self.config.partition_probe_interval_ms
        if interval is None:
            interval = self.config.period_ms / 2.0
        while self.running and self._partitions:
            yield Timeout(sim, interval)
            if self._partitions:
                self._recompute_isolation()
                self._refresh_gem_modes()
        self._probe_running = False

    def _anti_entropy(self, healed: _PartitionEntry) -> None:
        """Post-heal reconciliation: re-admit the minority side's LEMs
        and reconcile directory/placement views (highest epoch wins —
        the directory is authoritative and every record carries the
        epoch of its last placement, so a stale minority view can never
        overwrite a newer placement)."""
        sim = self.system.sim
        now = sim.now
        readmitted: List[str] = []
        for server_id in sorted(healed.cut_server_ids):
            if server_id in self._cut_off_servers:
                continue  # still cut off by another active partition
            since = self._unreachable.pop(server_id, None)
            lem = self.lems.get(server_id)
            if lem is not None and lem.server.running:
                # Fresh heartbeat baseline, with grace for one reply-
                # timeout wait: the LEM may still be blocked on an
                # RREPLY the partition ate, and that silence is the
                # partition's fault, not the server's.
                self._last_report[lem.server] = (
                    now + self.config.gem_reply_timeout_ms)
                readmitted.append(lem.server.name)
                self.emit("server-readmitted", server=lem.server.name,
                          epoch=self.epoch)
            elif since is not None and not since[0].running:
                # It really did crash behind the cut: now confirmable,
                # so the normal suspicion path (tombstone resurrection)
                # finally runs.
                self._on_server_suspected(since[0], now - since[1])
        directory = self.system.directory
        minority_actors = sum(
            1 for record in directory.records()
            if record.server.server_id in healed.minority_server_ids)
        stale = len(directory.stale_records(self.epoch))
        self.emit("partition-healed", epoch=self.epoch,
                  readmitted=tuple(readmitted),
                  actors_minority_side=minority_actors,
                  actors_total=directory.count(),
                  stale_view_records=stale)

    # ------------------------------------------------------------------
    # services used by LEMs and GEMs
    # ------------------------------------------------------------------

    def pick_gem(self, server: Optional[Server] = None) -> Optional[GEM]:
        """Random healthy GEM — the shuffling process of §4.3 that lets
        LEMs route around failed GEMs.

        In hierarchical mode a LEM shuffles only among its server
        group's leaf GEMs.  When the group's home leaves are all down
        it routes to the leaf that *adopted* the group, if any; only
        with no adopter either does it fall back to the full alive set
        (so an emergency respawn can serve the whole fleet).  With one
        group the candidate list — and therefore the RNG draw — is
        exactly the flat one, which keeps the two control planes
        bit-identical there.
        """
        alive = [gem for gem in self.gems if not gem.failed]
        if self.hierarchy is not None and server is not None:
            group = self.hierarchy.group_for_server(server)
            in_group = [gem for gem in alive
                        if self.hierarchy.leaf_group.get(gem.gem_id)
                        == group]
            if in_group:
                alive = in_group
            else:
                adopter = self.hierarchy.adopter_for(group)
                if adopter is not None:
                    alive = [adopter]
        if not alive:
            return None
        return self._gem_rng.choice(alive)

    def lem_for(self, server: Server) -> Optional[LEM]:
        """The LEM managing ``server``, if one is running."""
        return self.lems.get(server.server_id)

    def resolve_ref_global(self, ref: ActorRef) -> Optional[ActorSnapshot]:
        """Snapshot any live actor by ref (for ref-joins across servers)."""
        record = self.system.directory.try_lookup(ref.actor_id)
        if record is None:
            return None
        return self.profiler._snapshot_one(record)

    def least_loaded_server(self, exclude: Optional[Server] = None,
                            resource: str = "cpu") -> Optional[Server]:
        """Running, non-draining server with the lowest ``resource`` use.

        While a partition is active, quorum-less (minority-side) servers
        are excluded: the control plane cannot reach them, so placing an
        actor there would strand it behind the cut.
        """
        window = self.config.period_ms
        candidates = [s for s in self.system.provisioner.servers
                      if s.running and s is not exclude
                      and s.server_id not in self._draining]
        if self._partitions:
            candidates = [s for s in candidates
                          if s.server_id not in self._isolated_servers]
        if not candidates:
            return None
        if resource == "cpu":
            return min(candidates,
                       key=lambda s: (s.cpu_percent(window), s.server_id))
        if resource == "net":
            return min(candidates,
                       key=lambda s: (s.net_percent(window), s.server_id))
        return min(candidates,
                   key=lambda s: (s.memory_percent(), s.server_id))

    def note_migration(self, action: Action, issuer: str = "lem") -> None:
        """Record a started migration in the explainable event log.

        ``issuer`` says which authority executed the action: ``"lem"``
        for the per-server loop (both its own and GEM-planned actions)
        or ``"root"`` for a cross-group move arbitrated by the root tier
        — the cross-group-single-authority invariant keys off it.
        """
        rule_line = -1
        if 0 <= action.rule_index < len(self.policy.source_policy.rules):
            rule_line = self.policy.source_policy.rules[
                action.rule_index].line
        self.migration_log.append(MigrationEvent(
            time_ms=self.system.sim.now, actor=action.actor.ref,
            kind=action.kind, src=action.src.name, dst=action.dst.name,
            rule_line=rule_line))
        if self._listeners:
            record = self.system.directory.try_lookup(action.actor_id)
            self.emit("migration-started", actor=str(action.actor.ref),
                      actor_id=action.actor_id, action=action.kind,
                      src=action.src.name, dst=action.dst.name,
                      rule_index=action.rule_index, issuer=issuer,
                      pinned=record.pinned if record is not None else False,
                      dst_draining=action.dst.server_id in self._draining,
                      dst_running=action.dst.running,
                      epoch=self.epoch)
        # A draining server that just lost its last actor can be retired.
        self._maybe_retire()

    def vote(self, requester: GEM, direction: str) -> bool:
        """Majority vote among GEMs on a fleet adjustment (§4.2).

        Each peer replies whether its own region view agrees (more than
        half of its servers over/under the bounds).  The requester
        proceeds if a majority of peers corroborate; with a single GEM
        there are no peers and the adjustment proceeds.

        Epoch fencing: a degraded (quorum-less) or stale-epoch requester
        is vetoed outright — defence in depth behind the GEM's own
        degraded-mode short-circuit.  Peers on the far side of a
        partition cannot reply, so they count as silent (not agreeing)
        while still counting toward the majority denominator: a
        requester that lost half its peers cannot reach quorum.
        """
        if requester.degraded or requester.epoch < self.epoch:
            if self.debug_events:
                self.emit("gem-vote", requester=requester.gem_id,
                          direction=direction, peer_views=(),
                          agreeing=0, decision=False,
                          vetoed=("degraded" if requester.degraded
                                  else "stale-epoch"))
            return False
        peers = [gem for gem in self.gems
                 if gem is not requester and not gem.failed]
        if self.hierarchy is not None:
            # Hierarchical mode: the vote is local to the requester's
            # group (its co-leaves), but the root — which sees every
            # group's folded aggregate — may veto when a majority of
            # *other* groups contradicts the request.  With one group
            # both clauses degenerate to the flat behaviour exactly.
            group = self.hierarchy.leaf_group.get(requester.gem_id)
            peers = [gem for gem in peers
                     if self.hierarchy.leaf_group.get(gem.gem_id) == group]
            if not self.hierarchy.root.concurs(group, direction):
                if self.debug_events:
                    self.emit("gem-vote", requester=requester.gem_id,
                              direction=direction, peer_views=(),
                              agreeing=0, decision=False,
                              vetoed="root-arbiter")
                return False
        if not peers:
            if self.debug_events:
                self.emit("gem-vote", requester=requester.gem_id,
                          direction=direction, peer_views=(),
                          agreeing=0, decision=True)
            return True
        agreeing = 0
        views = []
        for peer in peers:
            if direction == "overloaded":
                view = peer.overload_fraction
            else:
                view = peer.underload_fraction
            reachable = (not self._partitions
                         or self._gems_mutually_reachable(requester, peer))
            if reachable and (view >= 0.5 or peer.rounds_processed == 0):
                agreeing += 1
            views.append((peer.gem_id, view, peer.rounds_processed,
                          reachable))
        decision = agreeing * 2 >= len(peers)
        if self.debug_events:
            self.emit("gem-vote", requester=requester.gem_id,
                      direction=direction, peer_views=tuple(views),
                      agreeing=agreeing, decision=decision)
        return decision

    # -- scale-in bookkeeping --------------------------------------------------

    def mark_draining(self, server: Server) -> None:
        """Exclude ``server`` from placement; retire it once empty."""
        self._draining.add(server.server_id)
        self.emit("server-draining", server=server.name)

    def is_draining(self, server: Server) -> bool:
        """Whether ``server`` is being drained for retirement."""
        return server.server_id in self._draining

    def draining_ids(self) -> frozenset:
        """Ids of servers being drained (planning excludes them as
        migration targets)."""
        return frozenset(self._draining)

    def isolated_server_ids(self) -> frozenset:
        """Ids of quorum-less servers behind an active partition
        (planning excludes them as migration targets)."""
        return self._isolated_servers if self._partitions else frozenset()

    def _maybe_retire(self) -> None:
        if not self._draining:
            return
        provisioner = self.system.provisioner
        for server in list(provisioner.servers):
            if server.server_id not in self._draining:
                continue
            if self.backend.actors_on(server):
                continue
            self._draining.discard(server.server_id)
            self.lems.pop(server.server_id, None)
            # Deliberately retired, not crashed: stop monitoring it.
            self._last_report.pop(server, None)
            provisioner.retire_server(server)
            if self.hierarchy is not None:
                self.hierarchy.note_server_gone(server)
            self._note_directory_host_gone(server)

    # -- statistics --------------------------------------------------------------

    def migrations_total(self) -> int:
        """Number of migrations the runtime has started."""
        return len(self.migration_log)

    def redistribution_rounds(self) -> int:
        """Number of elasticity periods in which at least one migration
        happened (the x-axis of the paper's Fig. 7b/7c and 8b/8c)."""
        if not self.migration_log:
            return 0
        period = self.config.period_ms
        rounds = {int(event.time_ms // period)
                  for event in self.migration_log}
        return len(rounds)
