"""The elasticity management runtime facade.

:class:`ElasticityManager` wires everything together: it attaches the
profiling runtime to the actor system, creates one LEM per server (and
for every server that later joins), starts the configured number of
GEMs, installs rule-aware new-actor placement, and tracks migrations and
fleet changes for the benchmarks.

Typical use::

    policy = compile_source(EPL_RULES, [Folder, File])
    manager = ElasticityManager(system, policy,
                                EmrConfig(period_ms=80_000.0))
    manager.start()
    ... run the simulation ...
    manager.stop()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ...actors import ActorRef, ActorSystem
from ...cluster import Server
from ...sim import Timeout, spawn
from ..epl import CompiledPolicy
from ..profiling import ActorSnapshot, ProfilingRuntime
from .actions import Action
from .config import EmrConfig
from .gem import GEM
from .lem import LEM
from .placement import PlasmaPlacement

__all__ = ["ElasticityManager", "MigrationEvent"]


@dataclass
class MigrationEvent:
    """One migration started by the elasticity runtime.

    ``rule_line`` is the source line of the EPL rule whose behavior
    produced the action (-1 for non-rule moves such as drain), so a
    migration can always be explained back to the policy text.
    """

    time_ms: float
    actor: ActorRef
    kind: str
    src: str
    dst: str
    rule_line: int = -1


class ElasticityManager:
    """PLASMA's elasticity management runtime (EMR)."""

    def __init__(self, system: ActorSystem, policy: CompiledPolicy,
                 config: Optional[EmrConfig] = None) -> None:
        self.system = system
        self.policy = policy
        self.config = config or EmrConfig()
        self.running = False
        self.profiler = ProfilingRuntime(
            system.sim, window_ms=self.config.period_ms,
            overhead_cpu_ms=self.config.profiling_overhead_cpu_ms)
        self.placement = PlasmaPlacement(self)
        self.gems: List[GEM] = [GEM(self, i)
                                for i in range(self.config.gem_count)]
        self.lems: Dict[int, LEM] = {}
        self.migration_log: List[MigrationEvent] = []
        self._draining: Set[int] = set()
        self._lem_counter = 0
        self._gem_rng = system.streams.stream("lem-gem-shuffle")
        system.provisioner.add_join_listener(self._on_server_join)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Attach profiling and start per-server LEM period timers."""
        if self.running:
            return
        self.running = True
        self.system.add_hooks(self.profiler)
        self.system.placement_policy = self.placement
        for server in self.system.provisioner.servers:
            self._add_lem(server)
        spawn(self.system.sim, self._janitor(), name="emr/janitor")

    def stop(self) -> None:
        """Stop elasticity management (profiling detaches too)."""
        if not self.running:
            return
        self.running = False
        if self.profiler in self.system.hooks:
            self.system.remove_hooks(self.profiler)
        if self.system.placement_policy is self.placement:
            self.system.placement_policy = None

    def _add_lem(self, server: Server) -> None:
        if server.server_id in self.lems:
            return
        lem = LEM(self, server, self._lem_counter)
        self._lem_counter += 1
        self.lems[server.server_id] = lem
        lem.start()

    def _on_server_join(self, server: Server) -> None:
        if self.running:
            self._add_lem(server)

    def _janitor(self):
        """Periodic housekeeping: retire fully drained servers even when
        no migration event fires the check."""
        while self.running:
            yield Timeout(self.system.sim, self.config.period_ms / 2.0)
            self._maybe_retire()

    # ------------------------------------------------------------------
    # services used by LEMs and GEMs
    # ------------------------------------------------------------------

    def pick_gem(self) -> Optional[GEM]:
        """Random healthy GEM — the shuffling process of §4.3 that lets
        LEMs route around failed GEMs."""
        alive = [gem for gem in self.gems if not gem.failed]
        if not alive:
            return None
        return self._gem_rng.choice(alive)

    def lem_for(self, server: Server) -> Optional[LEM]:
        """The LEM managing ``server``, if one is running."""
        return self.lems.get(server.server_id)

    def resolve_ref_global(self, ref: ActorRef) -> Optional[ActorSnapshot]:
        """Snapshot any live actor by ref (for ref-joins across servers)."""
        record = self.system.directory.try_lookup(ref.actor_id)
        if record is None:
            return None
        return self.profiler._snapshot_one(record)

    def least_loaded_server(self, exclude: Optional[Server] = None,
                            resource: str = "cpu") -> Optional[Server]:
        """Running, non-draining server with the lowest ``resource`` use."""
        window = self.config.period_ms
        candidates = [s for s in self.system.provisioner.servers
                      if s.running and s is not exclude
                      and s.server_id not in self._draining]
        if not candidates:
            return None
        if resource == "cpu":
            return min(candidates,
                       key=lambda s: (s.cpu_percent(window), s.server_id))
        if resource == "net":
            return min(candidates,
                       key=lambda s: (s.net_percent(window), s.server_id))
        return min(candidates,
                   key=lambda s: (s.memory_percent(), s.server_id))

    def note_migration(self, action: Action) -> None:
        """Record a started migration in the explainable event log."""
        rule_line = -1
        if 0 <= action.rule_index < len(self.policy.source_policy.rules):
            rule_line = self.policy.source_policy.rules[
                action.rule_index].line
        self.migration_log.append(MigrationEvent(
            time_ms=self.system.sim.now, actor=action.actor.ref,
            kind=action.kind, src=action.src.name, dst=action.dst.name,
            rule_line=rule_line))
        # A draining server that just lost its last actor can be retired.
        self._maybe_retire()

    def vote(self, requester: GEM, direction: str) -> bool:
        """Majority vote among GEMs on a fleet adjustment (§4.2).

        Each peer replies whether its own region view agrees (more than
        half of its servers over/under the bounds).  The requester
        proceeds if a majority of peers corroborate; with a single GEM
        there are no peers and the adjustment proceeds.
        """
        peers = [gem for gem in self.gems
                 if gem is not requester and not gem.failed]
        if not peers:
            return True
        agreeing = 0
        for peer in peers:
            if direction == "overloaded":
                view = peer.overload_fraction
            else:
                view = peer.underload_fraction
            if view >= 0.5 or peer.rounds_processed == 0:
                agreeing += 1
        return agreeing * 2 >= len(peers)

    # -- scale-in bookkeeping --------------------------------------------------

    def mark_draining(self, server: Server) -> None:
        """Exclude ``server`` from placement; retire it once empty."""
        self._draining.add(server.server_id)

    def is_draining(self, server: Server) -> bool:
        """Whether ``server`` is being drained for retirement."""
        return server.server_id in self._draining

    def _maybe_retire(self) -> None:
        if not self._draining:
            return
        provisioner = self.system.provisioner
        for server in list(provisioner.servers):
            if server.server_id not in self._draining:
                continue
            if self.system.actors_on(server):
                continue
            self._draining.discard(server.server_id)
            self.lems.pop(server.server_id, None)
            provisioner.retire_server(server)

    # -- statistics --------------------------------------------------------------

    def migrations_total(self) -> int:
        """Number of migrations the runtime has started."""
        return len(self.migration_log)

    def redistribution_rounds(self) -> int:
        """Number of elasticity periods in which at least one migration
        happened (the x-axis of the paper's Fig. 7b/7c and 8b/8c)."""
        if not self.migration_log:
            return 0
        period = self.config.period_ms
        rounds = {int(event.time_ms // period)
                  for event in self.migration_log}
        return len(rounds)
