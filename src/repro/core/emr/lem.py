"""Local elasticity manager (LEM) — paper Algorithm 1.

One LEM runs per server.  Every elasticity period it:

1. reads local actors' runtime info from the profiling runtime and
   applies the *actor* (interaction) elasticity rules locally
   (``applyActRules``) — pinning actors and proposing colocate/separate
   migrations;
2. reports actor + server runtime info to a randomly chosen GEM
   (``REPORT``) and waits for the GEM's migration actions (``RREPLY``),
   tolerating GEM failure by timing out and proceeding with local
   actions only;
3. resolves conflicts between its own and the GEM's actions by priority
   (``resolveActions``);
4. queries each action's target server for admission
   (``QUERY``/``QREPLY``, :meth:`check_idle_res`) and starts the live
   migrations the targets accepted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ...cluster import Server
from ...sim import Signal, Timeout, spawn
from ..epl import Colocate, Pin, Separate
from ..profiling import ActorSnapshot, ServerSnapshot
from .actions import Action, resolve_actions
from .evaluate import EvaluationScope, evaluate_rule
from .planning import contribution_perc

if TYPE_CHECKING:  # pragma: no cover
    from .manager import ElasticityManager

__all__ = ["LEM"]


class LEM:
    """Local elasticity manager for one server."""

    def __init__(self, manager: "ElasticityManager", server: Server,
                 index: int) -> None:
        self.manager = manager
        self.server = server
        self.index = index
        #: Control-plane epoch this LEM last observed.  RREPLY actions
        #: stamped with a lower epoch are rejected as stale: they were
        #: planned by a GEM that has not seen the latest partition event.
        self.epoch = 0
        self.rounds_run = 0
        self.migrations_started = 0
        self.stale_replies_rejected = 0
        self._reserved_perc: Dict[str, float] = {}
        self._process = None

    def start(self) -> None:
        sim = self.manager.system.sim
        self._process = spawn(sim, self._run(), name=f"lem/{self.server.name}")

    def cancel(self) -> None:
        """Stop this LEM's period timer (its host server crashed)."""
        if self._process is not None and not self._process.finished:
            self._process.interrupt()

    # ------------------------------------------------------------------

    def _run(self):
        sim = self.manager.system.sim
        config = self.manager.config
        # Align rounds to global period boundaries (plus a small stagger)
        # so every LEM's REPORT reaches its GEM within one collection
        # window — a server that boots mid-period must not end up
        # permanently phase-shifted from the rest of the fleet, or GEMs
        # would never see hot and idle servers in the same snapshot.
        offset = min(config.lem_stagger_ms * self.index,
                     config.gem_wait_ms / 2.0)
        while self.manager.running and self.server.running:
            to_boundary = config.period_ms - (sim.now % config.period_ms)
            yield Timeout(sim, to_boundary + offset)
            if not (self.manager.running and self.server.running):
                return
            yield from self._round()
            overload = self.manager.overload
            if (overload is not None
                    and overload.is_browned_out(self.server.name)
                    and overload.config.brownout_stretch > 1):
                # Brownout: stretch the reporting period — skip the next
                # stretch-1 boundaries, then realign as usual.  Every
                # skipped round is profiling and control traffic a
                # saturated server does not pay.
                yield Timeout(sim, (overload.config.brownout_stretch - 1)
                              * config.period_ms)

    def _round(self):
        sim = self.manager.system.sim
        config = self.manager.config
        self.rounds_run += 1
        self._reserved_perc = {}
        # Heartbeat for failure detection: a round starting is proof the
        # server is alive, even under policies with no resource rules
        # (where no REPORT would otherwise reach a GEM).
        self.manager.note_report(self.server)

        records = self.manager.backend.actors_on(self.server)
        actor_snaps = self.manager.profiler.snapshot_actors(records)
        server_snap = self.manager.profiler.snapshot_server(
            self.server, records)
        # Booked memory as of the snapshot.  The round then blocks on the
        # GEM reply; a migration completing during that wait would change
        # the live value and make the snapshot/memory identity in
        # _emit_round_debug racy.
        mem_used_mb = self.server.memory_used_mb

        overload = self.manager.overload
        browned_out = False
        if overload is not None:
            server_snap.mailbox_backlog = sum(
                self.manager.backend.mailbox_depth(record.ref.actor_id)
                for record in records)
            server_snap.messages_shed = overload.shed_by_server.get(
                self.server.name, 0)
            browned_out = overload.note_lem_round(
                self.server, server_snap.cpu_perc, sim.now)

        lem_actions = self._apply_act_rules(actor_snaps, server_snap)

        gem_actions: List[Action] = []
        gem = self.manager.pick_gem(self.server)
        if gem is not None and self.manager.policy.resource_rules:
            related = self._collect_actors_for_res_rules(actor_snaps)
            if (browned_out
                    and len(related) > overload.config.brownout_top_k):
                related = self._truncate_report(related)
            reply = Signal(sim)
            if self.manager.report_reachable(self.server, gem):
                sim.schedule(config.control_latency_ms, gem.receive_report,
                             self, related, server_snap, reply)
            # A REPORT a partition ate still costs the full reply wait:
            # the LEM cannot tell a lost message from a slow GEM.
            sim.schedule(config.gem_reply_timeout_ms, reply.trigger, None)
            result = yield reply
            if result is not None:
                actions, gem_epoch = result
                if gem_epoch < self.epoch:
                    # Epoch fencing: these actions were planned under a
                    # superseded view of the fleet.
                    self.stale_replies_rejected += 1
                    self.manager.emit("stale-epoch-rejected",
                                      server=self.server.name,
                                      gem_id=gem.gem_id,
                                      lem_epoch=self.epoch,
                                      gem_epoch=gem_epoch)
                else:
                    self.epoch = gem_epoch
                    gem_actions = list(actions)

        final = resolve_actions(lem_actions, gem_actions)
        if self.manager.debug_events:
            self._emit_round_debug(actor_snaps, server_snap, mem_used_mb,
                                   lem_actions, gem_actions, final)
        for action in final:
            yield from self._execute(action)

    def _truncate_report(
            self, related: List[ActorSnapshot]) -> List[ActorSnapshot]:
        """Brownout REPORT compression: keep only the top-k actors by
        CPU share (deterministic: ties broken by actor id).  The GEM
        still sees the server-level totals, so its region view stays
        correct; what it loses is per-actor detail about the cold tail —
        exactly the actors no resource rule is about to move."""
        top_k = self.manager.overload.config.brownout_top_k
        truncated = sorted(related,
                           key=lambda s: (-s.cpu_perc, s.actor_id))[:top_k]
        self.manager.emit("report-truncated", server=self.server.name,
                          kept=len(truncated), dropped=len(related)
                          - len(truncated))
        return truncated

    def _emit_round_debug(self, actor_snaps: List[ActorSnapshot],
                          server_snap: ServerSnapshot,
                          mem_used_mb: float,
                          lem_actions: List[Action],
                          gem_actions: List[Action],
                          final: List[Action]) -> None:
        """Verbose per-round events for the invariant checker (gated on
        ``manager.debug_events`` so normal runs pay nothing)."""
        manager = self.manager
        depths = tuple(manager.backend.mailbox_depth(snap.actor_id)
                       for snap in actor_snaps)
        overload = manager.overload
        manager.emit(
            "lem-round", server=self.server.name,
            server_cpu_perc=server_snap.cpu_perc,
            server_mem_perc=server_snap.mem_perc,
            server_net_perc=server_snap.net_perc,
            actor_count=server_snap.actor_count,
            actor_mem_mb=sum(snap.mem_mb for snap in actor_snaps),
            server_mem_used_mb=mem_used_mb,
            memory_mb=self.server.itype.memory_mb,
            actor_cpu_percs=tuple(snap.cpu_perc for snap in actor_snaps),
            # Overload diagnosability: queue depth and drop accounting
            # in every round event, so an overload incident can be
            # reconstructed from a trace without re-running.
            mailbox_backlog=sum(depths),
            mailbox_depth_max=max(depths, default=0),
            messages_shed=(overload.shed_by_server.get(self.server.name, 0)
                           if overload is not None else 0),
            brownout=(overload.is_browned_out(self.server.name)
                      if overload is not None else False))
        if lem_actions or gem_actions:
            candidates: Dict[int, list] = {}
            for action in list(lem_actions) + list(gem_actions):
                candidates.setdefault(action.actor_id, []).append(
                    (action.kind, action.priority))
            manager.emit(
                "actions-resolved", server=self.server.name,
                candidates=candidates,
                chosen={action.actor_id: (action.kind, action.priority)
                        for action in final})

    # -- applyActRules --------------------------------------------------------

    def _apply_act_rules(self, actor_snaps: List[ActorSnapshot],
                         server_snap: ServerSnapshot) -> List[Action]:
        scope = EvaluationScope(
            servers=[server_snap], actors=actor_snaps,
            resolve_ref=self.manager.resolve_ref_global)
        actions: List[Action] = []
        # Projected placements for this round: separate actions must see
        # where earlier actions already decided to send actors, or every
        # mover picks the same least-loaded target and the group travels
        # together, never actually separating.
        projected: Dict[int, Server] = {}
        arrivals: Dict[int, int] = {}
        for rule in self.manager.policy.actor_rules:
            for match in evaluate_rule(rule, scope):
                for behavior in rule.behaviors:
                    if isinstance(behavior, Pin):
                        self._apply_pin(behavior, match)
                    elif isinstance(behavior, Colocate):
                        action = self._plan_colocate(behavior, match,
                                                     rule.index)
                        if action is not None:
                            action.priority_override = rule.priority
                            actions.append(action)
                    elif isinstance(behavior, Separate):
                        action = self._plan_separate(behavior, match,
                                                     rule.index,
                                                     projected, arrivals)
                        if action is not None:
                            action.priority_override = rule.priority
                            actions.append(action)
        return actions

    def _bound(self, pattern, match) -> Optional[ActorSnapshot]:
        if pattern.var is not None:
            return match.bindings.get(pattern.var)
        # Anonymous pattern: single candidate of that type in the match.
        for var, snap in match.bindings.items():
            if var.startswith("__anon") and snap.type_name == pattern.type_name:
                return snap
        return None

    def _apply_pin(self, behavior: Pin, match) -> None:
        snap = self._bound(behavior.target, match)
        if snap is not None:
            self.manager.backend.pin(snap.ref, True)
            snap.pinned = True

    def _plan_colocate(self, behavior: Colocate, match,
                       rule_index: int) -> Optional[Action]:
        first = self._bound(behavior.first, match)
        second = self._bound(behavior.second, match)
        if first is None or second is None:
            return None
        if first.server is second.server:
            return None
        mover, anchor = self._choose_mover(first, second)
        if mover is None:
            return None
        if self.manager.is_draining(anchor.server):
            # The anchor is about to be drained off this server anyway;
            # colocate once both have settled somewhere that stays up.
            return None
        return Action(kind="colocate", actor=mover, src=mover.server,
                      dst=anchor.server, rule_index=rule_index)

    @staticmethod
    def _choose_mover(first: ActorSnapshot, second: ActorSnapshot):
        """Pick which of the two actors migrates: never a pinned one;
        otherwise the one with less state to transfer (second on ties)."""
        if first.pinned and second.pinned:
            return None, None
        if first.pinned:
            return second, first
        if second.pinned:
            return first, second
        if first.state_size_mb < second.state_size_mb:
            return first, second
        return second, first

    def _plan_separate(self, behavior: Separate, match, rule_index: int,
                       projected: Dict[int, Server],
                       arrivals: Dict[int, int]) -> Optional[Action]:
        first = self._bound(behavior.first, match)
        second = self._bound(behavior.second, match)
        if first is None or second is None:
            return None
        first_server = projected.get(first.actor_id, first.server)
        second_server = projected.get(second.actor_id, second.server)
        if first_server is not second_server:
            return None  # already apart (possibly thanks to this round)
        # Move the rule's first argument by convention ("separate(l1, p)"
        # reads as "move l1 away from p"), unless it is pinned.
        mover, anchor = (first, second) if not first.pinned else (
            (second, first) if not second.pinned else (None, None))
        if mover is None:
            return None
        anchor_server = projected.get(anchor.actor_id, anchor.server)
        target = self._separate_target(mover, anchor_server, arrivals)
        if target is None:
            return None  # "whenever resources are available" — they aren't
        projected[mover.actor_id] = target
        arrivals[target.server_id] = arrivals.get(target.server_id, 0) + 1
        return Action(kind="separate", actor=mover,
                      src=mover.server, dst=target, rule_index=rule_index)

    def _separate_target(self, mover: ActorSnapshot, avoid: Server,
                         arrivals: Dict[int, int]) -> Optional[Server]:
        """Least-loaded server other than the anchor's, tie-broken by how
        many actors this round already routed there."""
        window = self.manager.config.period_ms
        # A draining scale-in victim looks ideally idle — exclude it, or
        # separated actors land on a server about to retire.
        candidates = [
            s for s in self.manager.system.provisioner.servers
            if (s.running and s is not avoid and s is not mover.server
                and not self.manager.is_draining(s)
                and not self.manager.server_quorumless(s))]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda s: (arrivals.get(s.server_id, 0),
                                  s.cpu_percent(window), s.server_id))

    # -- resource-rule reporting ------------------------------------------------

    def _collect_actors_for_res_rules(
            self, actor_snaps: List[ActorSnapshot]) -> List[ActorSnapshot]:
        """Table 2's ``collectActorsFResRules``: actors whose type any
        resource rule may act upon (its subjects and bound variables)."""
        relevant = set()
        for rule in self.manager.policy.resource_rules:
            relevant.update(rule.subject_types)
            relevant.update(rule.variables.values())
        if "any" in relevant:
            return actor_snaps
        return [snap for snap in actor_snaps if snap.type_name in relevant]

    # -- action execution ------------------------------------------------------

    def _execute(self, action: Action):
        sim = self.manager.system.sim
        config = self.manager.config
        if self.manager.server_quorumless(self.server):
            # This server sits on the minority side of a partition: its
            # view is partial and its control plane is cut off, so defer
            # every migration until the heal re-admits it.
            return
        # Resolve through this LEM's lookup cache when the directory is
        # sharded (epoch-fenced, so a commit since the fill forces the
        # shard-consultation miss path); the flat map resolves directly.
        directory = self.manager.system.directory
        cached = getattr(directory, "cached_lookup", None)
        if cached is not None:
            record = cached(self.server.server_id, action.actor_id)
        else:
            record = directory.try_lookup(action.actor_id)
        if record is None or record.migrating:
            return
        if record.pinned and action.kind != "reserve":
            return  # pin blocks every behavior except an explicit reserve
        if record.server is not action.src:
            return  # stale: the actor moved since planning
        if not action.dst.running or self.manager.is_draining(action.dst):
            return  # stale: the target retired or became a scale-in victim
        if self.manager.server_quorumless(action.dst):
            # A partition opened after this plan was made and the target
            # landed on the minority side.  Epoch fencing cannot catch
            # this (planner and executor are both on the majority side),
            # so recheck the destination at execute time.
            return
        if (sim.now - record.last_placed_at
                < config.stability_window_ms()):
            return
        target_lem = self.manager.lem_for(action.dst)
        if target_lem is None:
            return
        # QUERY the target server; one control-message round trip.
        yield Timeout(sim, config.control_latency_ms)
        accepted = target_lem.check_idle_res(action)
        yield Timeout(sim, config.control_latency_ms)
        if not accepted:
            return
        # Fire-and-continue: the live-migration protocol runs on its own
        # (the actor is flagged `migrating`, which blocks double moves);
        # blocking here would make a slow state transfer eat whole
        # elasticity periods for every other actor on this server.
        self.manager.backend.migrate_actor(
            record.ref, action.dst, force=action.kind == "reserve")
        self.migrations_started += 1
        self.manager.note_migration(action)

    def check_idle_res(self, action: Action) -> bool:
        """``checkIdleRes``: admission control on the target server.

        Accepts the actor if the server's windowed usage plus all
        reservations already granted this period stays within the
        admission bound.  Accepted demand is reserved immediately
        (Alg. 1 line 19) so concurrent senders cannot overload us.
        """
        resource = action.resource or "cpu"
        window = self.manager.config.period_ms
        if resource == "cpu":
            current = self.server.cpu_percent(window)
        elif resource == "net":
            current = self.server.net_percent(window)
        else:
            current = self.server.memory_percent()
        reserved = self._reserved_perc.get(resource, 0.0)
        contrib = contribution_perc(action.actor, self.server, resource)
        projected = current + reserved + contrib
        # Accept within the admission bound, or when this server would
        # still end up below the sender (the move improves the imbalance
        # even if both sides are hot — see Action.src_load_perc).
        bound = max(self.manager.config.admission_upper,
                    action.src_load_perc - contrib)
        if projected > bound:
            return False
        self._reserved_perc[resource] = reserved + contrib
        return True
