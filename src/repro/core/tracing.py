"""Structured elasticity event tracing.

The elasticity runtime's decisions are spread across LEM rounds, GEM
rounds, admission checks and the provisioner.  :class:`ElasticityTracer`
collects them into one ordered, structured event log — the first thing
to read when a policy does something surprising.

Usage::

    tracer = ElasticityTracer(manager)
    tracer.attach()
    ... run ...
    for event in tracer.events:
        print(event)
    print(tracer.summary())

The tracer is pure observation: it wraps manager/GEM entry points and
subscribes to runtime hooks, never altering decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..actors import ActorRecord, RuntimeHooks
from ..cluster import Server

__all__ = ["TraceEvent", "ElasticityTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One elasticity decision or lifecycle event."""

    time_ms: float
    kind: str          # migration | actor-created | actor-destroyed |
                       # server-joined | server-retired | gem-round |
                       # scale-out | scale-in | pin | server-crashed |
                       # server-suspected | server-draining |
                       # actor-resurrected | migration-aborted |
                       # migration-started | gem-failover |
                       # fault-injected | fault-healed | fault-skipped |
                       # and, with durability enabled:
                       # checkpoint-written | checkpoint-replicated |
                       # state-restored | journal-replayed |
                       # and, with manager.debug_events on:
                       # lem-round | actions-resolved | gem-vote
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{key}={value}"
                         for key, value in self.detail.items())
        return f"[{self.time_ms / 1000.0:9.3f}s] {self.kind:<15s} {parts}"


class _TracerHooks(RuntimeHooks):
    def __init__(self, tracer: "ElasticityTracer") -> None:
        self.tracer = tracer

    def on_actor_created(self, record: ActorRecord) -> None:
        self.tracer._record("actor-created", actor=str(record.ref),
                            server=record.server.name)

    def on_actor_destroyed(self, record: ActorRecord) -> None:
        self.tracer._record("actor-destroyed", actor=str(record.ref),
                            server=record.server.name)

    def on_actor_migrated(self, record: ActorRecord, old_server: Server,
                          new_server: Server) -> None:
        self.tracer._record("migration", actor=str(record.ref),
                            src=old_server.name, dst=new_server.name)

    def on_migration_aborted(self, record: ActorRecord, source: Server,
                             target: Server, reason: str) -> None:
        self.tracer._record("migration-aborted", actor=str(record.ref),
                            src=source.name, dst=target.name, reason=reason)

    def on_server_crashed(self, server: Server, lost) -> None:
        self.tracer._record("server-crashed", server=server.name,
                            lost_actors=len(lost))

    def on_actor_resurrected(self, record: ActorRecord) -> None:
        self.tracer._record("actor-resurrected", actor=str(record.ref),
                            server=record.server.name)


class ElasticityTracer:
    """Collects a structured event log from a running elasticity manager."""

    def __init__(self, manager, max_events: int = 100_000) -> None:
        self.manager = manager
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._hooks = _TracerHooks(self)
        self._attached = False
        self._original_boot = None
        self._original_retire = None

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        system = self.manager.system
        system.add_hooks(self._hooks)
        provisioner = system.provisioner
        provisioner.add_join_listener(self._on_server_join)
        self._original_retire = provisioner.retire_server

        def retire_traced(server: Server) -> None:
            self._record("server-retired", server=server.name)
            self._original_retire(server)

        provisioner.retire_server = retire_traced  # type: ignore[assignment]
        if hasattr(self.manager, "add_listener"):
            self.manager.add_listener(self._on_emr_event)

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        system = self.manager.system
        if self._hooks in system.hooks:
            system.remove_hooks(self._hooks)
        if self._original_retire is not None:
            system.provisioner.retire_server = self._original_retire
        if hasattr(self.manager, "remove_listener"):
            self.manager.remove_listener(self._on_emr_event)

    # -- event intake -------------------------------------------------------------

    def _record(self, kind: str, **detail: Any) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(
            time_ms=self.manager.system.sim.now, kind=kind, detail=detail))

    def _on_server_join(self, server: Server) -> None:
        self._record("server-joined", server=server.name,
                     type=server.itype.name)

    def _on_emr_event(self, kind: str, detail: Dict[str, Any]) -> None:
        """EMR event-bus intake (server-suspected, gem-failover, faults)."""
        self._record(kind, **detail)

    # -- queries -------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def tail(self, count: int = 20) -> List[TraceEvent]:
        """The most recent ``count`` events — the context an invariant
        violation report attaches so a repro is readable on its own."""
        return self.events[-count:]

    def summary(self) -> Dict[str, int]:
        """Event counts by kind."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def network_summary(self) -> Dict[str, Any]:
        """Fabric message-loss counters: total drops, the share charged
        to partition cuts, and the per-link partition breakdown
        (``(src, dst) -> count``)."""
        fabric = self.manager.system.fabric
        return {
            "messages_dropped": fabric.messages_dropped,
            "partition_drops": fabric.partition_drops,
            "drops_by_link": dict(fabric.drops_by_link),
        }

    def timeline(self, bucket_ms: float = 60_000.0) -> Dict[int, Dict[str, int]]:
        """Events per time bucket per kind — a coarse activity picture."""
        buckets: Dict[int, Dict[str, int]] = {}
        for event in self.events:
            bucket = int(event.time_ms // bucket_ms)
            counts = buckets.setdefault(bucket, {})
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return buckets
