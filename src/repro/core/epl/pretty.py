"""EPL pretty-printer (unparser).

Renders an AST back to canonical EPL source.  Round-trip property:
``parse_policy(format_policy(parse_policy(src)))`` equals
``parse_policy(src)`` — useful for policy tooling (normalizing user
policies, emitting policies from programs) and exercised by the
property-based tests.
"""

from __future__ import annotations

from .ast import (ActorPattern, AndCond, Balance, Behavior, CallFeature,
                  Colocate, CompareCond, Condition, OrCond, Pin, Policy,
                  RefCond, Reserve, ResourceFeature, Rule, Separate,
                  TrueCond, SERVER_ENTITY)

__all__ = ["format_policy", "format_rule", "format_condition",
           "format_behavior"]


def format_policy(policy: Policy) -> str:
    """Render a whole policy, one rule per line."""
    return "\n".join(format_rule(rule) for rule in policy.rules) + "\n" \
        if policy.rules else ""


def format_rule(rule: Rule) -> str:
    """Render one rule as canonical single-line EPL source."""
    prefix = f"priority {rule.priority}: " if rule.priority is not None \
        else ""
    behaviors = " ".join(f"{format_behavior(b)};" for b in rule.behaviors)
    return f"{prefix}{format_condition(rule.condition)} => {behaviors}"


def _pattern(pattern: ActorPattern) -> str:
    return pattern.describe()


def format_condition(condition: Condition,
                     parent: str = "or") -> str:
    """Render a condition; parenthesizes only where precedence needs it."""
    if isinstance(condition, TrueCond):
        return "true"
    if isinstance(condition, OrCond):
        text = (f"{format_condition(condition.left, 'or')} or "
                f"{format_condition(condition.right, 'or')}")
        return f"({text})" if parent == "and" else text
    if isinstance(condition, AndCond):
        return (f"{format_condition(condition.left, 'and')} and "
                f"{format_condition(condition.right, 'and')}")
    if isinstance(condition, CompareCond):
        return (f"{_feature(condition.feature)} {condition.comparison} "
                f"{_number(condition.value)}")
    if isinstance(condition, RefCond):
        return (f"{_pattern(condition.member)} in "
                f"ref({_pattern(condition.container)}."
                f"{condition.property_name})")
    raise TypeError(f"unexpected condition {condition!r}")


def _feature(feature) -> str:
    if isinstance(feature, ResourceFeature):
        entity = SERVER_ENTITY if feature.is_server() \
            else _pattern(feature.entity)
        return f"{entity}.{feature.resource}.{feature.stat}"
    if isinstance(feature, CallFeature):
        caller = "client" if feature.is_client() \
            else _pattern(feature.caller)
        return (f"{caller}.call({_pattern(feature.callee)}."
                f"{feature.function}).{feature.stat}")
    raise TypeError(f"unexpected feature {feature!r}")


def _number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def format_behavior(behavior: Behavior) -> str:
    """Render one behavior (``balance({T}, cpu)``, ``pin(x)``, ...)."""
    if isinstance(behavior, Balance):
        types = ", ".join(behavior.actor_types)
        return f"balance({{{types}}}, {behavior.resource})"
    if isinstance(behavior, Reserve):
        return f"reserve({_pattern(behavior.target)}, {behavior.resource})"
    if isinstance(behavior, Colocate):
        return (f"colocate({_pattern(behavior.first)}, "
                f"{_pattern(behavior.second)})")
    if isinstance(behavior, Separate):
        return (f"separate({_pattern(behavior.first)}, "
                f"{_pattern(behavior.second)})")
    if isinstance(behavior, Pin):
        return f"pin({_pattern(behavior.target)})"
    raise TypeError(f"unexpected behavior {behavior!r}")
