"""Recursive-descent parser for the elasticity programming language.

Produces the :mod:`repro.core.epl.ast` node tree.  Whether a bare
identifier in an actor position is a *type name* or a *variable
reference* is not decidable syntactically (both are plain identifiers),
so the parser records it as a type-name pattern and the compiler
reinterprets identifiers that match a variable bound earlier in the same
rule — mirroring the paper's implicit inline variable declarations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .ast import (ActorPattern, AndCond, Balance, CallFeature, Colocate,
                  CompareCond, Condition, OrCond, Pin, Policy, RefCond,
                  Reserve, ResourceFeature, Rule, Separate, TrueCond,
                  CLIENT_CALLER, RESOURCES, SERVER_ENTITY, STATISTICS)
from .errors import EplSyntaxError
from .lexer import Token, tokenize

__all__ = ["parse_policy", "Parser"]

_BEHAVIOR_KEYWORDS = frozenset(
    {"balance", "reserve", "colocate", "separate", "pin"})


def parse_policy(source: str) -> Policy:
    """Parse EPL source text into a :class:`Policy`."""
    return Parser(tokenize(source)).parse_policy()


class Parser:
    """Token-stream parser.  One instance per parse."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token utilities -----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _expect(self, kind: str, what: str = "") -> Token:
        token = self._next()
        if token.kind != kind:
            wanted = what or kind
            raise EplSyntaxError(
                f"expected {wanted}, found {token.text!r}",
                token.line, token.column)
        return token

    def _expect_ident(self, *texts: str) -> Token:
        token = self._expect("IDENT")
        if texts and token.text not in texts:
            raise EplSyntaxError(
                f"expected one of {', '.join(texts)}, found {token.text!r}",
                token.line, token.column)
        return token

    def _at_ident(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "IDENT" and token.text == text

    # -- grammar -------------------------------------------------------------

    def parse_policy(self) -> Policy:
        rules: List[Rule] = []
        while self._peek().kind != "EOF":
            rules.append(self.parse_rule())
        return Policy(rules=rules)

    def parse_rule(self) -> Rule:
        start = self._peek()
        priority = None
        if (start.kind == "IDENT" and start.text == "priority"
                and self._peek(1).kind == "NUMBER"):
            self._next()
            priority_token = self._expect("NUMBER", "priority value")
            priority = int(float(priority_token.text))
            self._expect("COLON", "':'")
        condition = self.parse_condition()
        self._expect("ARROW", "'=>'")
        behaviors = [self.parse_behavior()]
        self._expect("SEMI", "';'")
        while (self._peek().kind == "IDENT"
               and self._peek().text in _BEHAVIOR_KEYWORDS):
            behaviors.append(self.parse_behavior())
            self._expect("SEMI", "';'")
        return Rule(condition=condition, behaviors=tuple(behaviors),
                    line=start.line, priority=priority)

    # conditions, precedence: or < and

    def parse_condition(self) -> Condition:
        left = self._parse_and()
        while self._at_ident("or"):
            self._next()
            left = OrCond(left, self._parse_and())
        return left

    def _parse_and(self) -> Condition:
        left = self._parse_primary()
        while self._at_ident("and"):
            self._next()
            left = AndCond(left, self._parse_primary())
        return left

    def _parse_primary(self) -> Condition:
        token = self._peek()
        if token.kind == "LPAREN":
            self._next()
            inner = self.parse_condition()
            self._expect("RPAREN", "')'")
            return inner
        if token.kind != "IDENT":
            raise EplSyntaxError(
                f"expected a condition, found {token.text!r}",
                token.line, token.column)
        if token.text == "true":
            self._next()
            return TrueCond()
        if token.text == SERVER_ENTITY:
            return self._parse_server_feature()
        if token.text == CLIENT_CALLER:
            return self._parse_call_feature(CLIENT_CALLER)
        return self._parse_actor_condition()

    def _parse_server_feature(self) -> Condition:
        self._next()  # 'server'
        self._expect("DOT", "'.'")
        resource = self._expect_ident(*RESOURCES).text
        self._expect("DOT", "'.'")
        stat = self._expect_ident(*STATISTICS).text
        return self._finish_compare(
            ResourceFeature(entity=SERVER_ENTITY, resource=resource,
                            stat=stat))

    def _parse_call_feature(
            self, caller: Union[str, ActorPattern]) -> Condition:
        if caller == CLIENT_CALLER:
            self._next()  # 'client'
            self._expect("DOT", "'.'")
            self._expect_ident("call")
        # caller actor path reaches here with 'call' already consumed
        self._expect("LPAREN", "'('")
        callee = self.parse_actor_pattern()
        self._expect("DOT", "'.'")
        function = self._expect("IDENT", "function name").text
        self._expect("RPAREN", "')'")
        self._expect("DOT", "'.'")
        stat = self._expect_ident(*STATISTICS).text
        return self._finish_compare(
            CallFeature(caller=caller, callee=callee, function=function,
                        stat=stat))

    def _parse_actor_condition(self) -> Condition:
        pattern = self.parse_actor_pattern()
        token = self._peek()
        if token.kind == "IDENT" and token.text == "in":
            self._next()
            self._expect_ident("ref")
            self._expect("LPAREN", "'('")
            container = self.parse_actor_pattern()
            self._expect("DOT", "'.'")
            pname = self._expect("IDENT", "property name").text
            self._expect("RPAREN", "')'")
            return RefCond(member=pattern, container=container,
                           property_name=pname)
        self._expect("DOT", "'.'")
        selector = self._expect("IDENT").text
        if selector == "call":
            return self._parse_call_feature(pattern)
        if selector in RESOURCES:
            self._expect("DOT", "'.'")
            stat = self._expect_ident(*STATISTICS).text
            return self._finish_compare(
                ResourceFeature(entity=pattern, resource=selector, stat=stat))
        raise EplSyntaxError(
            f"expected 'call' or a resource (cpu/mem/net), found "
            f"{selector!r}", token.line, token.column)

    def _finish_compare(self, feature) -> CompareCond:
        comp = self._expect("COMP", "comparison operator").text
        value_token = self._expect("NUMBER", "numeric bound")
        return CompareCond(feature=feature, comparison=comp,
                           value=float(value_token.text))

    def parse_actor_pattern(self) -> ActorPattern:
        name_token = self._expect("IDENT", "actor type or variable")
        var: Optional[str] = None
        if self._peek().kind == "LPAREN":
            self._next()
            var = self._expect("IDENT", "variable name").text
            self._expect("RPAREN", "')'")
        return ActorPattern(type_name=name_token.text, var=var)

    # behaviors

    def parse_behavior(self):
        token = self._expect("IDENT", "behavior")
        if token.text == "balance":
            return self._parse_balance()
        if token.text == "reserve":
            self._expect("LPAREN", "'('")
            target = self.parse_actor_pattern()
            self._expect("COMMA", "','")
            resource = self._expect_ident(*RESOURCES).text
            self._expect("RPAREN", "')'")
            return Reserve(target=target, resource=resource)
        if token.text in ("colocate", "separate"):
            self._expect("LPAREN", "'('")
            first = self.parse_actor_pattern()
            self._expect("COMMA", "','")
            second = self.parse_actor_pattern()
            self._expect("RPAREN", "')'")
            cls = Colocate if token.text == "colocate" else Separate
            return cls(first=first, second=second)
        if token.text == "pin":
            self._expect("LPAREN", "'('")
            target = self.parse_actor_pattern()
            self._expect("RPAREN", "')'")
            return Pin(target=target)
        raise EplSyntaxError(
            f"unknown behavior {token.text!r} (expected balance, reserve, "
            f"colocate, separate or pin)", token.line, token.column)

    def _parse_balance(self) -> Balance:
        self._expect("LPAREN", "'('")
        self._expect("LBRACE", "'{'")
        types: List[str] = [self._expect("IDENT", "actor type").text]
        while self._peek().kind == "COMMA":
            self._next()
            types.append(self._expect("IDENT", "actor type").text)
        self._expect("RBRACE", "'}'")
        self._expect("COMMA", "','")
        resource = self._expect_ident(*RESOURCES).text
        self._expect("RPAREN", "')'")
        return Balance(actor_types=tuple(types), resource=resource)
