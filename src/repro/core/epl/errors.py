"""EPL error and warning types."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EplError", "EplSyntaxError", "EplValidationError", "EplWarning"]


class EplError(Exception):
    """Base class for all EPL errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}" + (f", col {column})" if column else ")") \
            if line else ""
        super().__init__(f"{message}{location}")
        self.message = message
        self.line = line
        self.column = column


class EplSyntaxError(EplError):
    """Lexing or parsing failure."""


class EplValidationError(EplError):
    """Rule is syntactically valid but inconsistent with the actor program
    (unknown type/function/property, unbound variable, bad statistic...)."""


@dataclass(frozen=True)
class EplWarning:
    """Non-fatal diagnostic, e.g. conflicting rules for the same actor type
    (paper §4.3: the compiler detects conflicts and issues warnings)."""

    message: str
    line: int = 0

    def __str__(self) -> str:
        prefix = f"line {self.line}: " if self.line else ""
        return f"{prefix}{self.message}"
