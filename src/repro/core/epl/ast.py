"""Abstract syntax tree for PLASMA's elasticity programming language.

The node shapes follow the paper's Fig. 3.II grammar exactly:

    pol   ::= rul*
    rul   ::= cond => beh+ ;
    cond  ::= cond or cond | cond and cond | true
            | feat.stat comp val
            | actor in ref(actor.pname)
    feat  ::= entity.res | cllr.call(actor.fname)
    beh   ::= balance({atype}, res) | reserve(actor, res)
            | colocate(actor, actor) | separate(actor, actor)
            | pin(actor)

Actor occurrences are *patterns*: a type name optionally binding an inline
variable (``Folder(fo)``), the wildcard type ``any``, or a bare variable
bound earlier in the same rule (``fo``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "ActorPattern", "TrueCond", "AndCond", "OrCond", "CompareCond",
    "RefCond", "ResourceFeature", "CallFeature", "Balance", "Reserve",
    "Colocate", "Separate", "Pin", "Rule", "Policy", "Condition",
    "Feature", "Behavior", "SERVER_ENTITY", "CLIENT_CALLER",
    "RESOURCES", "STATISTICS", "COMPARISONS",
]

SERVER_ENTITY = "server"
CLIENT_CALLER = "client"

RESOURCES = ("cpu", "mem", "net")
STATISTICS = ("count", "size", "perc")
COMPARISONS = ("<", ">", ">=", "<=")


@dataclass(frozen=True)
class ActorPattern:
    """An actor occurrence in a rule.

    ``type_name`` is the declared actor type, ``"any"``, or ``None`` when
    the pattern is a bare variable reference.  ``var`` is the inline
    variable introduced (``Folder(fo)``) or referenced (``fo``).
    """

    type_name: Optional[str]
    var: Optional[str] = None

    def is_bare_var(self) -> bool:
        return self.type_name is None

    def describe(self) -> str:
        if self.type_name is None:
            return self.var or "?"
        if self.var:
            return f"{self.type_name}({self.var})"
        return self.type_name


# -- features ---------------------------------------------------------------


@dataclass(frozen=True)
class ResourceFeature:
    """``entity.res`` — resource usage of a server or of actors ([f-ra]/[f-rs])."""

    entity: Union[str, ActorPattern]  # SERVER_ENTITY or an actor pattern
    resource: str                     # cpu | mem | net
    stat: str                         # perc (count/size rejected by compiler)

    def is_server(self) -> bool:
        return self.entity == SERVER_ENTITY


@dataclass(frozen=True)
class CallFeature:
    """``cllr.call(actor.fname)`` — interaction feature ([f-ia])."""

    caller: Union[str, ActorPattern]  # CLIENT_CALLER or an actor pattern
    callee: ActorPattern
    function: str
    stat: str                         # count | size | perc

    def is_client(self) -> bool:
        return self.caller == CLIENT_CALLER


Feature = Union[ResourceFeature, CallFeature]


# -- conditions ---------------------------------------------------------------


@dataclass(frozen=True)
class TrueCond:
    """The trivial condition ``true``."""


@dataclass(frozen=True)
class AndCond:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class OrCond:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class CompareCond:
    """``feat.stat comp val``."""

    feature: Feature
    comparison: str  # < | > | >= | <=
    value: float


@dataclass(frozen=True)
class RefCond:
    """``actor in ref(actor'.pname)`` — selects members referenced by a
    property of the container actor."""

    member: ActorPattern
    container: ActorPattern
    property_name: str


Condition = Union[TrueCond, AndCond, OrCond, CompareCond, RefCond]


# -- behaviors ---------------------------------------------------------------


@dataclass(frozen=True)
class Balance:
    """``balance({atype...}, res)`` — [r-r]: balance server workload by
    migrating actors of the listed types."""

    actor_types: Tuple[str, ...]
    resource: str


@dataclass(frozen=True)
class Reserve:
    """``reserve(actor, res)`` — [r-r]: keep the actor on a server with
    sufficient idle ``res``."""

    target: ActorPattern
    resource: str


@dataclass(frozen=True)
class Colocate:
    """``colocate(a, b)`` — [r-i]: keep both actors on the same server."""

    first: ActorPattern
    second: ActorPattern


@dataclass(frozen=True)
class Separate:
    """``separate(a, b)`` — [r-i]: keep the actors apart when resources allow."""

    first: ActorPattern
    second: ActorPattern


@dataclass(frozen=True)
class Pin:
    """``pin(a)`` — [r-i]: never migrate the actor."""

    target: ActorPattern


Behavior = Union[Balance, Reserve, Colocate, Separate, Pin]


# -- rules & policy ------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """One ``cond => beh;...;`` rule with its source line for diagnostics.

    ``priority`` is the optional programmer-specified conflict priority
    (``priority N: cond => beh;`` — paper §4.3: "the highest priority,
    which can be specified by programmers").  ``None`` means the
    behaviors' built-in priorities apply.
    """

    condition: Condition
    behaviors: Tuple[Behavior, ...]
    line: int = 0
    priority: Optional[int] = None

    def behavior_kinds(self) -> Tuple[str, ...]:
        return tuple(type(b).__name__.lower() for b in self.behaviors)


@dataclass
class Policy:
    """A parsed elasticity policy: an ordered list of rules."""

    rules: List[Rule] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules)
