"""EPL compiler: validation, normalization and rule classification.

Mirrors the PLASMA compiler of the paper's Fig. 2: it consumes the parsed
elasticity policy *and* the actor program (as a schema of actor types,
their properties and functions, extracted from the Python actor classes),
then produces the *elasticity configuration* the management runtime
executes:

- variable occurrences are resolved (``Folder(fo)`` binds ``fo``; a later
  bare ``fo`` refers to it);
- every type, function, property, statistic and bound is validated;
- each rule's condition is normalized to disjunctive normal form, which
  the runtime evaluator consumes;
- rules are classified into **actor rules** (carrying colocate / separate
  / pin behaviors — executed by LEMs, paper Alg. 1) and **resource
  rules** (carrying balance / reserve — executed by GEMs, paper Alg. 2);
  a mixed rule contributes to both sides, like the Metadata Server rule
  whose ``reserve`` is global and whose ``colocate`` is local;
- conflicting rules for the same actor type produce compile *warnings*
  (paper §4.3), never errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ...actors import ActorTypeSchema, describe_actor_class
from .ast import (ActorPattern, AndCond, Balance, CallFeature, Colocate,
                  CompareCond, Condition, OrCond, Pin, Policy, RefCond,
                  Reserve, ResourceFeature, Rule, Separate, TrueCond,
                  Behavior, CLIENT_CALLER, SERVER_ENTITY)
from .errors import EplValidationError, EplWarning
from .parser import parse_policy

__all__ = ["CompiledRule", "CompiledPolicy", "compile_policy",
           "compile_source", "behavior_priority", "BEHAVIOR_PRIORITIES",
           "schema_from_classes"]

#: Migration-action priorities used for runtime conflict resolution
#: (paper §4.3: "If PLASMA prioritizes balance over colocate...").
#: Larger wins.  ``pin`` is not a migration — it is an absolute
#: constraint enforced by the runtime before any action applies.
BEHAVIOR_PRIORITIES: Dict[str, int] = {
    "balance": 40,
    "reserve": 30,
    "separate": 20,
    "colocate": 10,
    "pin": 0,
}

Atom = Union[TrueCond, CompareCond, RefCond]


def behavior_priority(behavior: Behavior) -> int:
    """Built-in conflict priority for ``behavior`` (see the table)."""
    return BEHAVIOR_PRIORITIES[type(behavior).__name__.lower()]


@dataclass(frozen=True)
class CompiledRule:
    """One executable rule.

    ``dnf`` is a tuple of conjunctions; the rule fires for a binding that
    satisfies *any* conjunction.  ``variables`` maps each inline variable
    to its actor type.  ``behaviors`` holds only the behaviors relevant to
    the side (LEM or GEM) this compiled rule was classified for.
    """

    index: int
    line: int
    dnf: Tuple[Tuple[Atom, ...], ...]
    behaviors: Tuple[Behavior, ...]
    variables: Dict[str, str]
    subject_types: FrozenSet[str]
    #: Programmer-specified priority (``priority N:``), or None.
    priority: Optional[int] = None

    def uses_server_features(self) -> bool:
        return any(
            isinstance(atom, CompareCond)
            and isinstance(atom.feature, ResourceFeature)
            and atom.feature.is_server()
            for conj in self.dnf for atom in conj)


@dataclass
class CompiledPolicy:
    """The elasticity configuration produced by the compiler."""

    source_policy: Policy
    actor_rules: List[CompiledRule]
    resource_rules: List[CompiledRule]
    warnings: List[EplWarning]
    schema: Dict[str, ActorTypeSchema]

    def all_rules(self) -> List[CompiledRule]:
        """Every compiled rule, LEM-side first."""
        return self.actor_rules + self.resource_rules

    def rule_count(self) -> int:
        """Number of source rules (Table 1's "rules" column)."""
        return len(self.source_policy.rules)

    def to_config(self) -> dict:
        """Serialize to the JSON-able elasticity configuration format."""
        return {
            "rules": [_rule_to_dict(rule)
                      for rule in self.source_policy.rules],
            "actor_rule_indexes": [r.index for r in self.actor_rules],
            "resource_rule_indexes": [r.index for r in self.resource_rules],
            "warnings": [str(w) for w in self.warnings],
            "types": sorted(self.schema),
        }

    def to_json(self, indent: int = 2) -> str:
        """The elasticity configuration as JSON text."""
        return json.dumps(self.to_config(), indent=indent)


def schema_from_classes(classes: Sequence[type]) -> Dict[str, ActorTypeSchema]:
    """Build the actor-program schema from Python actor classes."""
    schema: Dict[str, ActorTypeSchema] = {}
    for cls in classes:
        described = describe_actor_class(cls)
        schema[described.name] = described
    return schema


def compile_source(source: str,
                   actor_classes: Sequence[type]) -> CompiledPolicy:
    """Parse and compile EPL ``source`` against ``actor_classes``."""
    return compile_policy(parse_policy(source),
                          schema_from_classes(actor_classes))


def compile_policy(policy: Policy,
                   schema: Dict[str, ActorTypeSchema]) -> CompiledPolicy:
    """Validate and classify a parsed policy.  Raises
    :class:`EplValidationError` on inconsistencies; accumulates
    :class:`EplWarning` for rule conflicts and suspicious bounds."""
    warnings: List[EplWarning] = []
    actor_rules: List[CompiledRule] = []
    resource_rules: List[CompiledRule] = []
    normalized_rules: List[Rule] = []

    for index, rule in enumerate(policy.rules):
        resolver = _RuleResolver(schema, rule.line, warnings)
        condition = resolver.resolve_condition(rule.condition)
        behaviors = tuple(resolver.resolve_behavior(b)
                          for b in rule.behaviors)
        normalized = Rule(condition=condition, behaviors=behaviors,
                          line=rule.line, priority=rule.priority)
        normalized_rules.append(normalized)

        dnf = _to_dnf(condition)
        _validate_dnf(dnf, resolver, rule.line)

        interaction = tuple(b for b in behaviors
                            if isinstance(b, (Colocate, Separate, Pin)))
        resource = tuple(b for b in behaviors
                         if isinstance(b, (Balance, Reserve)))
        subjects = _subject_types(behaviors, resolver.bindings)
        if interaction:
            actor_rules.append(CompiledRule(
                index=index, line=rule.line, dnf=dnf,
                behaviors=interaction, variables=dict(resolver.bindings),
                subject_types=subjects, priority=rule.priority))
        if resource:
            resource_rules.append(CompiledRule(
                index=index, line=rule.line, dnf=dnf,
                behaviors=resource, variables=dict(resolver.bindings),
                subject_types=subjects, priority=rule.priority))

    warnings.extend(_detect_conflicts(normalized_rules))
    return CompiledPolicy(
        source_policy=Policy(rules=normalized_rules),
        actor_rules=actor_rules, resource_rules=resource_rules,
        warnings=warnings, schema=dict(schema))


# ---------------------------------------------------------------------------
# variable resolution & validation
# ---------------------------------------------------------------------------


class _RuleResolver:
    """Per-rule state: variable bindings and pattern normalization."""

    def __init__(self, schema: Dict[str, ActorTypeSchema], line: int,
                 warnings: List[EplWarning]) -> None:
        self.schema = schema
        self.line = line
        self.warnings = warnings
        self.bindings: Dict[str, str] = {}  # var -> type name (or 'any')

    def resolve_pattern(self, pattern: ActorPattern) -> ActorPattern:
        name = pattern.type_name
        if name in self.bindings:
            # Identifier refers to a previously bound variable.
            if pattern.var is not None:
                raise EplValidationError(
                    f"{name!r} is a variable; it cannot bind another "
                    f"variable {pattern.var!r}", self.line)
            return ActorPattern(type_name=None, var=name)
        if name != "any" and name not in self.schema:
            raise EplValidationError(
                f"unknown actor type {name!r}", self.line)
        if pattern.var is not None:
            if pattern.var in self.bindings:
                raise EplValidationError(
                    f"variable {pattern.var!r} bound twice", self.line)
            if pattern.var in self.schema or pattern.var == "any":
                raise EplValidationError(
                    f"variable {pattern.var!r} shadows an actor type name",
                    self.line)
            self.bindings[pattern.var] = name
        return pattern

    def pattern_type(self, pattern: ActorPattern) -> str:
        """Concrete (or 'any') type a resolved pattern denotes."""
        if pattern.type_name is not None:
            return pattern.type_name
        return self.bindings[pattern.var]

    # -- conditions --------------------------------------------------------

    def resolve_condition(self, condition: Condition) -> Condition:
        if isinstance(condition, TrueCond):
            return condition
        if isinstance(condition, AndCond):
            left = self.resolve_condition(condition.left)
            right = self.resolve_condition(condition.right)
            return AndCond(left, right)
        if isinstance(condition, OrCond):
            left = self.resolve_condition(condition.left)
            right = self.resolve_condition(condition.right)
            return OrCond(left, right)
        if isinstance(condition, CompareCond):
            return CompareCond(
                feature=self._resolve_feature(condition.feature),
                comparison=condition.comparison, value=condition.value)
        if isinstance(condition, RefCond):
            member = self.resolve_pattern(condition.member)
            container = self.resolve_pattern(condition.container)
            container_type = self.pattern_type(container)
            if container_type != "any":
                schema = self.schema[container_type]
                if not schema.has_property(condition.property_name):
                    raise EplValidationError(
                        f"type {container_type!r} has no property "
                        f"{condition.property_name!r}", self.line)
            return RefCond(member=member, container=container,
                           property_name=condition.property_name)
        raise EplValidationError(
            f"unsupported condition node {condition!r}", self.line)

    def _resolve_feature(self, feature):
        if isinstance(feature, ResourceFeature):
            if feature.is_server():
                entity = SERVER_ENTITY
            else:
                entity = self.resolve_pattern(feature.entity)
            self._check_resource_stat(feature.resource, feature.stat)
            return ResourceFeature(entity=entity, resource=feature.resource,
                                   stat=feature.stat)
        if isinstance(feature, CallFeature):
            caller = (CLIENT_CALLER if feature.is_client()
                      else self.resolve_pattern(feature.caller))
            callee = self.resolve_pattern(feature.callee)
            callee_type = self.pattern_type(callee)
            if callee_type == "any":
                raise EplValidationError(
                    "call features require a concrete callee type, "
                    "not 'any'", self.line)
            schema = self.schema[callee_type]
            if not schema.has_function(feature.function):
                raise EplValidationError(
                    f"type {callee_type!r} has no function "
                    f"{feature.function!r}", self.line)
            return CallFeature(caller=caller, callee=callee,
                               function=feature.function, stat=feature.stat)
        raise EplValidationError(
            f"unsupported feature node {feature!r}", self.line)

    def _check_resource_stat(self, resource: str, stat: str) -> None:
        allowed = ("perc", "size") if resource == "mem" else ("perc",)
        if stat not in allowed:
            raise EplValidationError(
                f"statistic {stat!r} does not apply to resource "
                f"{resource!r} (allowed: {', '.join(allowed)})", self.line)

    # -- behaviors --------------------------------------------------------

    def resolve_behavior(self, behavior: Behavior) -> Behavior:
        if isinstance(behavior, Balance):
            for type_name in behavior.actor_types:
                if type_name != "any" and type_name not in self.schema:
                    raise EplValidationError(
                        f"balance references unknown actor type "
                        f"{type_name!r}", self.line)
            return behavior
        if isinstance(behavior, Reserve):
            return Reserve(target=self.resolve_pattern(behavior.target),
                           resource=behavior.resource)
        if isinstance(behavior, Colocate):
            return Colocate(first=self.resolve_pattern(behavior.first),
                            second=self.resolve_pattern(behavior.second))
        if isinstance(behavior, Separate):
            return Separate(first=self.resolve_pattern(behavior.first),
                            second=self.resolve_pattern(behavior.second))
        if isinstance(behavior, Pin):
            return Pin(target=self.resolve_pattern(behavior.target))
        raise EplValidationError(
            f"unsupported behavior node {behavior!r}", self.line)


def _validate_dnf(dnf: Tuple[Tuple[Atom, ...], ...],
                  resolver: _RuleResolver, line: int) -> None:
    for conjunction in dnf:
        for atom in conjunction:
            if (isinstance(atom, CompareCond) and _is_percentage(atom)
                    and not 0.0 <= atom.value <= 100.0):
                resolver.warnings.append(EplWarning(
                    f"percentage bound {atom.value} outside [0, 100]",
                    line))


def _is_percentage(atom: CompareCond) -> bool:
    return getattr(atom.feature, "stat", None) == "perc"


def _subject_types(behaviors: Sequence[Behavior],
                   bindings: Dict[str, str]) -> FrozenSet[str]:
    """Actor types a rule's behaviors act upon (for conflict analysis)."""

    def pattern_types(pattern: ActorPattern) -> List[str]:
        if pattern.type_name is not None:
            return [pattern.type_name]
        return [bindings.get(pattern.var, "any")]

    subjects: List[str] = []
    for behavior in behaviors:
        if isinstance(behavior, Balance):
            subjects.extend(behavior.actor_types)
        elif isinstance(behavior, Reserve):
            subjects.extend(pattern_types(behavior.target))
        elif isinstance(behavior, (Colocate, Separate)):
            subjects.extend(pattern_types(behavior.first))
            subjects.extend(pattern_types(behavior.second))
        elif isinstance(behavior, Pin):
            subjects.extend(pattern_types(behavior.target))
    return frozenset(subjects)


# ---------------------------------------------------------------------------
# DNF conversion
# ---------------------------------------------------------------------------


def _to_dnf(condition: Condition) -> Tuple[Tuple[Atom, ...], ...]:
    """Convert a condition to disjunctive normal form.

    EPL rules in practice are small (the paper's largest has three
    conjuncts), so the worst-case blowup of distribution is irrelevant.
    """
    if isinstance(condition, (TrueCond, CompareCond, RefCond)):
        return ((condition,),)
    if isinstance(condition, OrCond):
        return _to_dnf(condition.left) + _to_dnf(condition.right)
    if isinstance(condition, AndCond):
        left = _to_dnf(condition.left)
        right = _to_dnf(condition.right)
        return tuple(l + r for l in left for r in right)
    raise EplValidationError(f"cannot normalize condition {condition!r}")


# ---------------------------------------------------------------------------
# conflict detection (paper §4.3, mechanism 1)
# ---------------------------------------------------------------------------


def _detect_conflicts(rules: Sequence[Rule]) -> List[EplWarning]:
    warnings: List[EplWarning] = []
    pinned: Dict[str, int] = {}
    balanced: Dict[str, int] = {}
    reserved: Dict[str, int] = {}
    colocate_pairs: Dict[Tuple[str, str], int] = {}
    separate_pairs: Dict[Tuple[str, str], int] = {}

    def type_of(pattern: ActorPattern, bindings: Dict[str, str]) -> str:
        if pattern.type_name is not None:
            return pattern.type_name
        return bindings.get(pattern.var or "", "any")

    for rule in rules:
        bindings: Dict[str, str] = {}
        _collect_bindings(rule.condition, bindings)
        for behavior in rule.behaviors:
            _collect_behavior_bindings(behavior, bindings)
        for behavior in rule.behaviors:
            if isinstance(behavior, Pin):
                pinned.setdefault(type_of(behavior.target, bindings),
                                  rule.line)
            elif isinstance(behavior, Balance):
                for type_name in behavior.actor_types:
                    balanced.setdefault(type_name, rule.line)
            elif isinstance(behavior, Reserve):
                reserved.setdefault(type_of(behavior.target, bindings),
                                    rule.line)
            elif isinstance(behavior, Colocate):
                pair = tuple(sorted((type_of(behavior.first, bindings),
                                     type_of(behavior.second, bindings))))
                colocate_pairs.setdefault(pair, rule.line)
            elif isinstance(behavior, Separate):
                pair = tuple(sorted((type_of(behavior.first, bindings),
                                     type_of(behavior.second, bindings))))
                separate_pairs.setdefault(pair, rule.line)

    for pair, line in colocate_pairs.items():
        if pair in separate_pairs:
            warnings.append(EplWarning(
                f"colocate and separate both target actor types "
                f"{pair[0]} and {pair[1]}", line))
    for type_name, line in pinned.items():
        if type_name in balanced:
            warnings.append(EplWarning(
                f"actor type {type_name!r} is pinned but also subject to "
                f"balance", line))
        if type_name in reserved:
            warnings.append(EplWarning(
                f"actor type {type_name!r} is pinned but also subject to "
                f"reserve", line))
    for type_name, line in balanced.items():
        for pair in colocate_pairs:
            if type_name in pair:
                warnings.append(EplWarning(
                    f"actor type {type_name!r} is subject to both balance "
                    f"and colocate; balance takes priority at runtime",
                    line))
                break
    return warnings


def _collect_bindings(condition: Condition,
                      bindings: Dict[str, str]) -> None:
    if isinstance(condition, (AndCond, OrCond)):
        _collect_bindings(condition.left, bindings)
        _collect_bindings(condition.right, bindings)
    elif isinstance(condition, CompareCond):
        feature = condition.feature
        if isinstance(feature, ResourceFeature) and not feature.is_server():
            _bind_pattern(feature.entity, bindings)
        elif isinstance(feature, CallFeature):
            if not feature.is_client():
                _bind_pattern(feature.caller, bindings)
            _bind_pattern(feature.callee, bindings)
    elif isinstance(condition, RefCond):
        _bind_pattern(condition.member, bindings)
        _bind_pattern(condition.container, bindings)


def _collect_behavior_bindings(behavior: Behavior,
                               bindings: Dict[str, str]) -> None:
    patterns: List[ActorPattern] = []
    if isinstance(behavior, Reserve):
        patterns = [behavior.target]
    elif isinstance(behavior, (Colocate, Separate)):
        patterns = [behavior.first, behavior.second]
    elif isinstance(behavior, Pin):
        patterns = [behavior.target]
    for pattern in patterns:
        _bind_pattern(pattern, bindings)


def _bind_pattern(pattern: ActorPattern, bindings: Dict[str, str]) -> None:
    if pattern.type_name is not None and pattern.var is not None:
        bindings.setdefault(pattern.var, pattern.type_name)


# ---------------------------------------------------------------------------
# serialization helpers
# ---------------------------------------------------------------------------


def _rule_to_dict(rule: Rule) -> dict:
    serialized = {
        "line": rule.line,
        "condition": _condition_to_dict(rule.condition),
        "behaviors": [_behavior_to_dict(b) for b in rule.behaviors],
    }
    if rule.priority is not None:
        serialized["priority"] = rule.priority
    return serialized


def _condition_to_dict(condition: Condition) -> dict:
    if isinstance(condition, TrueCond):
        return {"kind": "true"}
    if isinstance(condition, AndCond):
        return {"kind": "and", "left": _condition_to_dict(condition.left),
                "right": _condition_to_dict(condition.right)}
    if isinstance(condition, OrCond):
        return {"kind": "or", "left": _condition_to_dict(condition.left),
                "right": _condition_to_dict(condition.right)}
    if isinstance(condition, CompareCond):
        return {"kind": "compare", "feature": _feature_to_dict(
            condition.feature), "comparison": condition.comparison,
            "value": condition.value}
    if isinstance(condition, RefCond):
        return {"kind": "ref", "member": condition.member.describe(),
                "container": condition.container.describe(),
                "property": condition.property_name}
    raise TypeError(f"unexpected condition {condition!r}")


def _feature_to_dict(feature) -> dict:
    if isinstance(feature, ResourceFeature):
        entity = (SERVER_ENTITY if feature.is_server()
                  else feature.entity.describe())
        return {"kind": "resource", "entity": entity,
                "resource": feature.resource, "stat": feature.stat}
    return {"kind": "call",
            "caller": (CLIENT_CALLER if feature.is_client()
                       else feature.caller.describe()),
            "callee": feature.callee.describe(),
            "function": feature.function, "stat": feature.stat}


def _behavior_to_dict(behavior: Behavior) -> dict:
    if isinstance(behavior, Balance):
        return {"kind": "balance", "types": list(behavior.actor_types),
                "resource": behavior.resource}
    if isinstance(behavior, Reserve):
        return {"kind": "reserve", "target": behavior.target.describe(),
                "resource": behavior.resource}
    if isinstance(behavior, Colocate):
        return {"kind": "colocate", "first": behavior.first.describe(),
                "second": behavior.second.describe()}
    if isinstance(behavior, Separate):
        return {"kind": "separate", "first": behavior.first.describe(),
                "second": behavior.second.describe()}
    return {"kind": "pin", "target": behavior.target.describe()}
