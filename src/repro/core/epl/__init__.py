"""Elasticity Programming Language (EPL).

The EPL is PLASMA's second "level" of programming: declarative
``condition => behavior;`` rules over application semantics.  Parse with
:func:`parse_policy`, compile against the actor program with
:func:`compile_source` / :func:`compile_policy`.
"""

from .ast import (ActorPattern, AndCond, Balance, Behavior, CallFeature,
                  Colocate, CompareCond, Condition, Feature, OrCond, Pin,
                  Policy, RefCond, Reserve, ResourceFeature, Rule, Separate,
                  TrueCond, CLIENT_CALLER, COMPARISONS, RESOURCES,
                  SERVER_ENTITY, STATISTICS)
from .compiler import (BEHAVIOR_PRIORITIES, CompiledPolicy, CompiledRule,
                       behavior_priority, compile_policy, compile_source,
                       schema_from_classes)
from .errors import EplError, EplSyntaxError, EplValidationError, EplWarning
from .lexer import Token, tokenize
from .parser import Parser, parse_policy
from .pretty import (format_behavior, format_condition, format_policy,
                     format_rule)

__all__ = [
    "ActorPattern", "AndCond", "Balance", "Behavior", "CallFeature",
    "Colocate", "CompareCond", "Condition", "Feature", "OrCond", "Pin",
    "Policy", "RefCond", "Reserve", "ResourceFeature", "Rule", "Separate",
    "TrueCond", "CLIENT_CALLER", "COMPARISONS", "RESOURCES",
    "SERVER_ENTITY", "STATISTICS",
    "BEHAVIOR_PRIORITIES", "CompiledPolicy", "CompiledRule",
    "behavior_priority", "compile_policy", "compile_source",
    "schema_from_classes",
    "EplError", "EplSyntaxError", "EplValidationError", "EplWarning",
    "Token", "tokenize", "Parser", "parse_policy",
    "format_policy", "format_rule", "format_condition", "format_behavior",
]
