"""Tokenizer for the elasticity programming language.

Token kinds: identifiers/keywords, numbers, comparison operators, the
arrow ``=>`` and punctuation.  ``#`` and ``//`` start line comments.
Keywords are recognized at parse time (the lexer emits them as IDENT) so
that application actor types may freely shadow nothing — the grammar has
no position where a keyword and a type name are ambiguous except the
reserved words themselves, which the parser checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import EplSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset({
    "and", "or", "true", "in", "ref", "server", "client", "call",
    "count", "size", "perc", "cpu", "mem", "net",
    "balance", "reserve", "colocate", "separate", "pin", "any",
})

_PUNCT = {
    "(": "LPAREN", ")": "RPAREN", "{": "LBRACE", "}": "RBRACE",
    ",": "COMMA", ";": "SEMI", ".": "DOT", ":": "COLON",
}


@dataclass(frozen=True)
class Token:
    kind: str    # IDENT | NUMBER | COMP | ARROW | punctuation kinds | EOF
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`EplSyntaxError` on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("=>", i):
            yield Token("ARROW", "=>", line, column)
            i += 2
            column += 2
            continue
        if source.startswith(">=", i) or source.startswith("<=", i):
            yield Token("COMP", source[i:i + 2], line, column)
            i += 2
            column += 2
            continue
        if ch in "<>":
            yield Token("COMP", ch, line, column)
            i += 1
            column += 1
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, line, column)
            i += 1
            column += 1
            continue
        if ch.isdigit():
            start = i
            start_col = column
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
                column += 1
            text = source[start:i]
            if text.count(".") > 1:
                raise EplSyntaxError(f"malformed number {text!r}", line,
                                     start_col)
            yield Token("NUMBER", text, line, start_col)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = column
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
                column += 1
            yield Token("IDENT", source[start:i], line, start_col)
            continue
        raise EplSyntaxError(f"unexpected character {ch!r}", line, column)
    yield Token("EOF", "", line, column)
