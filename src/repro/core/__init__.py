"""PLASMA's primary contribution: the EPL and the elasticity runtime.

- :mod:`repro.core.epl` — the elasticity programming language.
- :mod:`repro.core.profiling` — the elasticity profiling runtime (EPR).
- :mod:`repro.core.emr` — the elasticity execution runtime (LEMs/GEMs).
"""

from .emr import ElasticityManager, EmrConfig
from .epl import CompiledPolicy, compile_policy, compile_source, parse_policy
from .profiling import ProfilingRuntime
from .tracing import ElasticityTracer, TraceEvent

__all__ = [
    "ElasticityManager",
    "EmrConfig",
    "CompiledPolicy",
    "compile_policy",
    "compile_source",
    "parse_policy",
    "ProfilingRuntime",
    "ElasticityTracer",
    "TraceEvent",
]
