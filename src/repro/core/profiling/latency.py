"""Streaming latency percentiles over a ring buffer of samples.

The live front door and the availability meter both need tail-latency
numbers (p50/p95/p99) without keeping every sample forever.  This
recorder keeps the most recent ``capacity`` samples in a flat ring,
records in O(1), and sorts lazily on the first percentile query after a
write — a query burst (one ``/stats`` scrape reading three percentiles)
pays for one sort.

Percentiles use the *nearest-rank* definition: for ``n`` retained
samples, ``percentile(p)`` is the ``ceil(p/100 * n)``-th smallest.  No
interpolation — with ring capacities in the thousands the difference is
noise, and nearest-rank is trivially checked by the brute-force
property tests.

Lifetime aggregates (``count``, ``total_ms``, ``max_ms``) are *not*
windowed: they keep counting after old samples fall out of the ring, so
a long benchmark still reports a true request count and mean.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Ring-buffered latency samples with lazy percentile queries."""

    __slots__ = ("capacity", "count", "total_ms", "max_ms",
                 "_ring", "_next", "_sorted", "_dirty")

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity!r}")
        self.capacity = capacity
        #: Lifetime number of samples recorded (not capped by the ring).
        self.count = 0
        #: Lifetime sum of all samples in milliseconds.
        self.total_ms = 0.0
        #: Lifetime maximum sample in milliseconds.
        self.max_ms = 0.0
        self._ring: List[float] = []
        self._next = 0
        self._sorted: List[float] = []
        self._dirty = False

    # -- recording -----------------------------------------------------

    def record(self, latency_ms: float) -> None:
        """Add one sample (milliseconds; negatives are clamped to 0)."""
        if latency_ms < 0.0:
            latency_ms = 0.0
        self.count += 1
        self.total_ms += latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms
        if len(self._ring) < self.capacity:
            self._ring.append(latency_ms)
        else:
            self._ring[self._next] = latency_ms
            self._next = (self._next + 1) % self.capacity
        self._dirty = True

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        """Samples currently retained in the ring (≤ capacity)."""
        return len(self._ring)

    def _view(self) -> List[float]:
        if self._dirty:
            self._sorted = sorted(self._ring)
            self._dirty = False
        return self._sorted

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over retained samples.

        ``p`` is in ``(0, 100]``; returns ``None`` with no samples.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile out of range (0, 100]: {p!r}")
        view = self._view()
        if not view:
            return None
        rank = math.ceil(p / 100.0 * len(view))
        return view[rank - 1]

    def percentiles(self, ps: Sequence[float] = (50.0, 95.0, 99.0),
                    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for the given ranks."""
        out: Dict[str, Optional[float]] = {}
        for p in ps:
            key = f"p{p:g}"
            out[key] = self.percentile(p)
        return out

    def mean_ms(self) -> Optional[float]:
        """Lifetime mean (over *all* samples, not just the ring)."""
        if self.count == 0:
            return None
        return self.total_ms / self.count

    def summary(self) -> Dict[str, object]:
        """One JSON-friendly dict: count, mean, max, and p50/p95/p99."""
        out: Dict[str, object] = {
            "count": self.count,
            "mean_ms": self.mean_ms(),
            "max_ms": self.max_ms if self.count else None,
        }
        out.update(self.percentiles())
        return out

    def reset(self) -> None:
        """Drop all samples and lifetime aggregates."""
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self._ring = []
        self._next = 0
        self._sorted = []
        self._dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LatencyRecorder(count={self.count}, "
                f"retained={len(self._ring)}/{self.capacity})")
