"""Snapshot datatypes exchanged between profiling and elasticity runtimes.

These are the payloads of the paper's Table 2 API: LEMs call
``getActorsRuntime`` / ``getServerRuntime`` and ship the results to GEMs
in REPORT messages.  Snapshots are plain data (no references into the
live runtime other than the server handle used as a location token), so a
GEM operating on them is structurally unable to mutate application state —
the same isolation the paper's EMR design prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ...actors import ActorRef
from ...cluster import Server
from .stats import CallKey, PairKey

__all__ = ["ActorSnapshot", "ServerSnapshot"]


@dataclass
class ActorSnapshot:
    """Runtime information for one actor over the profiling window.

    Rates are per *minute* (the paper's example time unit for interaction
    features).  ``call_perc`` is the percentage of each call type this
    actor received out of all same-type actors on the same server —
    computed by the LEM, which sees all local actors.
    """

    ref: ActorRef
    server: Server
    cpu_perc: float                 # share of hosting server's CPU, 0-100
    cpu_ms_per_min: float
    mem_mb: float
    mem_perc: float                 # share of hosting server's memory
    net_bytes_per_min: float
    net_perc: float                 # share of hosting server's NIC
    call_count_per_min: Dict[CallKey, float] = field(default_factory=dict)
    call_bytes_per_min: Dict[CallKey, float] = field(default_factory=dict)
    call_perc: Dict[CallKey, float] = field(default_factory=dict)
    pair_count_per_min: Dict[PairKey, float] = field(default_factory=dict)
    refs: Dict[str, Tuple[ActorRef, ...]] = field(default_factory=dict)
    pinned: bool = False
    migrating: bool = False
    last_placed_at: float = 0.0
    state_size_mb: float = 1.0

    @property
    def actor_id(self) -> int:
        return self.ref.actor_id

    @property
    def type_name(self) -> str:
        return self.ref.type_name

    def resource_perc(self, resource: str) -> float:
        """Resolve an EPL resource name to this actor's usage percent."""
        if resource == "cpu":
            return self.cpu_perc
        if resource == "mem":
            return self.mem_perc
        if resource == "net":
            return self.net_perc
        raise ValueError(f"unknown resource {resource!r}")

    def demand(self, resource: str) -> float:
        """Absolute demand used by admission checks (checkIdleRes)."""
        if resource == "cpu":
            return self.cpu_ms_per_min
        if resource == "mem":
            return self.mem_mb
        if resource == "net":
            return self.net_bytes_per_min
        raise ValueError(f"unknown resource {resource!r}")


@dataclass
class ServerSnapshot:
    """Runtime information for one server over the profiling window."""

    server: Server
    cpu_perc: float
    mem_perc: float
    net_perc: float
    actor_count: int
    vcpus: int
    instance_type: str
    #: Overload telemetry, filled by the LEM only when overload
    #: protection is active (zero otherwise): total messages queued in
    #: this server's actor mailboxes at snapshot time, and cumulative
    #: messages shed here.  Lets a GEM (and traces) see *queueing*
    #: pressure, which CPU percent alone understates.
    mailbox_backlog: int = 0
    messages_shed: int = 0

    @property
    def name(self) -> str:
        return self.server.name

    def resource_perc(self, resource: str) -> float:
        if resource == "cpu":
            return self.cpu_perc
        if resource == "mem":
            return self.mem_perc
        if resource == "net":
            return self.net_perc
        raise ValueError(f"unknown resource {resource!r}")
