"""Ring-buffer windowed counters for the profiling hot path.

:class:`RingMeter` answers the same question as
:class:`repro.cluster.WindowedMeter` — "how much accumulated over the
trailing window?" — but in O(1) amortized time per query instead of a
scan over every retained bucket.  The elasticity profiling runtime calls
``total()`` for every meter of every actor every period, so this is the
difference between decision latency growing with history length and
staying flat (the Elasticutor-style incremental maintenance the
scalability goal needs).

Exactness contract
------------------
``RingMeter.total(w)`` returns a float **bit-identical** to
``WindowedMeter.total(w)`` over the same event sequence (for ``w`` up to
the configured window).  This is what lets the incremental profiling
path produce byte-identical decision traces to the full-recompute path:

* both implementations accumulate each bucket in arrival order;
* the cached window total is maintained as the *same left-to-right
  association* a fresh sum over in-window buckets would use: a running
  prefix over closed buckets, plus the open bucket on top.  Appending a
  newly closed bucket extends the prefix on the right (associativity
  preserved); evicting an expired bucket on the left breaks the prefix,
  so eviction triggers a full left-to-right recompute.  Evictions happen
  at most once per bucket boundary, so the recompute is amortized O(1)
  per event.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ...sim import Simulator

__all__ = ["RingMeter"]


class RingMeter:
    """Windowed accumulator with O(1) adds and O(1) amortized totals.

    Parameters
    ----------
    window_ms:
        The window ``total()`` answers by default — and the retention
        horizon: data older than one window (rounded up to bucket
        granularity) is dropped.  Queries for a *smaller* window are
        answered exactly by a bucket scan; larger windows are not
        supported (the data is gone).
    bucket_ms:
        Bucket width; identical default to :class:`WindowedMeter` so the
        two implementations bucket events identically.
    """

    __slots__ = ("_sim", "_bucket_ms", "_window_ms", "_max_buckets",
                 "_buckets", "_closed_sum", "_stale", "_lifetime")

    def __init__(self, sim: Simulator, window_ms: float,
                 bucket_ms: float = 500.0) -> None:
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        if window_ms < 0:
            raise ValueError("window_ms must be non-negative")
        self._sim = sim
        self._bucket_ms = bucket_ms
        self._window_ms = window_ms
        # Enough buckets to cover the window plus the partially expired
        # boundary bucket WindowedMeter's cutoff comparison still counts.
        self._max_buckets = int(window_ms // bucket_ms) + 2
        self._buckets: Deque[List[float]] = deque()  # [bucket index, total]
        self._closed_sum = 0.0   # left-to-right sum of all but the last bucket
        self._stale = False      # closed_sum needs a recompute (post-eviction)
        self._lifetime = 0.0

    @property
    def lifetime_total(self) -> float:
        """Total accumulated since creation (never forgotten)."""
        return self._lifetime

    @property
    def window_ms(self) -> float:
        return self._window_ms

    def add(self, amount: float, at: Optional[float] = None) -> None:
        """Record ``amount`` at time ``at`` (default: now)."""
        when = self._sim.now if at is None else at
        index = int(when // self._bucket_ms)
        self._lifetime += amount
        buckets = self._buckets
        if buckets:
            last = buckets[-1]
            if last[0] == index:
                last[1] += amount
                return
            self._closed_sum += last[1]
        buckets.append([index, amount])
        # Bound memory without waiting for a query: anything this far
        # behind the newest bucket is below every future cutoff.
        floor = index - self._max_buckets
        while buckets[0][0] < floor:
            buckets.popleft()
            self._stale = True

    def total(self, window_ms: Optional[float] = None) -> float:
        """Sum recorded over the trailing window (default: configured).

        Matches ``WindowedMeter.total`` bit-for-bit: buckets whose index
        is at or above ``int((now - window) // bucket_ms)`` are included,
        summed oldest-first.
        """
        window = self._window_ms if window_ms is None else window_ms
        if window <= 0:
            return 0.0
        buckets = self._buckets
        if not buckets:
            return 0.0
        cutoff = int((self._sim.now - self._window_ms) // self._bucket_ms)
        while buckets and buckets[0][0] < cutoff:
            buckets.popleft()
            self._stale = True
        if not buckets:
            self._closed_sum = 0.0
            self._stale = False
            return 0.0
        if self._stale:
            closed = 0.0
            for position in range(len(buckets) - 1):
                closed += buckets[position][1]
            self._closed_sum = closed
            self._stale = False
        if window >= self._window_ms:
            return self._closed_sum + buckets[-1][1]
        # Narrower-than-configured window: rare path, exact bucket scan.
        narrow_cutoff = int((self._sim.now - window) // self._bucket_ms)
        result = 0.0
        for index, bucket_total in buckets:
            if index >= narrow_cutoff:
                result += bucket_total
        return result

    def rate_per_ms(self, window_ms: Optional[float] = None) -> float:
        """Average accumulation rate over the trailing window, with the
        divisor clamped to elapsed time (same contract as WindowedMeter)."""
        window = self._window_ms if window_ms is None else window_ms
        now = self._sim.now
        effective = min(window, now) if now > 0 else window
        if effective <= 0:
            return 0.0
        return self.total(window) / effective
