"""Raw per-actor statistics collected by the profiling runtime."""

from __future__ import annotations

from typing import Dict, Tuple

from ...cluster import WindowedMeter
from ...sim import Simulator

__all__ = ["ActorStats", "CallKey", "PairKey"]

#: (caller kind, function name) — caller kind is "client" or an actor type.
CallKey = Tuple[str, str]
#: (caller actor id, function name) — per-pair interaction tracking.
PairKey = Tuple[int, str]


class ActorStats:
    """Meters for one actor: CPU, network, and per-call-type messages.

    Call meters are created lazily on first message of each key, so actors
    that never receive a given call type pay nothing for it.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self.cpu = WindowedMeter(sim)
        self.net_in = WindowedMeter(sim)
        self.net_out = WindowedMeter(sim)
        self.call_counts: Dict[CallKey, WindowedMeter] = {}
        self.call_bytes: Dict[CallKey, WindowedMeter] = {}
        self.pair_counts: Dict[PairKey, WindowedMeter] = {}
        self.messages_processed = 0

    def record_message(self, caller_kind: str, caller_id, function: str,
                       size_bytes: float) -> None:
        key: CallKey = (caller_kind, function)
        counts = self.call_counts.get(key)
        if counts is None:
            counts = WindowedMeter(self._sim)
            self.call_counts[key] = counts
            self.call_bytes[key] = WindowedMeter(self._sim)
        counts.add(1.0)
        self.call_bytes[key].add(size_bytes)
        self.messages_processed += 1
        if caller_id is not None:
            pair_key: PairKey = (caller_id, function)
            pair = self.pair_counts.get(pair_key)
            if pair is None:
                pair = WindowedMeter(self._sim)
                self.pair_counts[pair_key] = pair
            pair.add(1.0)
