"""Raw per-actor statistics collected by the profiling runtime."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...cluster import ArrayMeter, WindowedMeter
from ...sim import Simulator
from .ring import RingMeter

__all__ = ["ActorStats", "CallKey", "PairKey"]

#: (caller kind, function name) — caller kind is "client" or an actor type.
CallKey = Tuple[str, str]
#: (caller actor id, function name) — per-pair interaction tracking.
PairKey = Tuple[int, str]


class ActorStats:
    """Meters for one actor: CPU, network, and per-call-type messages.

    Call meters are created lazily on first message of each key, so actors
    that never receive a given call type pay nothing for it.

    ``backend`` selects the meter implementation: ``"ring"`` buffer
    meters (:class:`RingMeter`, O(1) windowed totals — the incremental
    path), ``"windowed"`` (:class:`WindowedMeter`, per-query bucket scan
    — the full-recompute reference path), or ``"array"``
    (:class:`ArrayMeter`, numpy-batched adds).  All three produce
    bit-identical totals; ``use_ring`` is the older boolean spelling and
    is only consulted when ``backend`` is not given.

    ``version`` counts mutations; the profiling runtime compares it
    against the version captured with a cached snapshot to decide whether
    the actor is dirty.
    """

    __slots__ = ("_sim", "_window_ms", "_backend", "cpu", "net_in",
                 "net_out", "call_counts", "call_bytes", "pair_counts",
                 "messages_processed", "version")

    _BACKENDS = ("ring", "windowed", "array")

    def __init__(self, sim: Simulator, window_ms: float = 60_000.0,
                 use_ring: bool = True,
                 backend: Optional[str] = None) -> None:
        if backend is None:
            backend = "ring" if use_ring else "windowed"
        elif backend not in self._BACKENDS:
            raise ValueError(f"unknown meter backend {backend!r}; "
                             f"expected one of {self._BACKENDS}")
        self._sim = sim
        self._window_ms = window_ms
        self._backend = backend
        self.cpu = self._new_meter()
        self.net_in = self._new_meter()
        self.net_out = self._new_meter()
        self.call_counts: Dict[CallKey, object] = {}
        self.call_bytes: Dict[CallKey, object] = {}
        self.pair_counts: Dict[PairKey, object] = {}
        self.messages_processed = 0
        self.version = 0

    def _new_meter(self):
        if self._backend == "ring":
            return RingMeter(self._sim, self._window_ms)
        if self._backend == "array":
            return ArrayMeter(self._sim, self._window_ms)
        return WindowedMeter(self._sim)

    def record_message(self, caller_kind: str, caller_id, function: str,
                       size_bytes: float) -> None:
        self.version += 1
        key: CallKey = (caller_kind, function)
        counts = self.call_counts.get(key)
        if counts is None:
            counts = self._new_meter()
            self.call_counts[key] = counts
            self.call_bytes[key] = self._new_meter()
        counts.add(1.0)
        self.call_bytes[key].add(size_bytes)
        self.messages_processed += 1
        if caller_id is not None:
            pair_key: PairKey = (caller_id, function)
            pair = self.pair_counts.get(pair_key)
            if pair is None:
                pair = self._new_meter()
                self.pair_counts[pair_key] = pair
            pair.add(1.0)

    def add_cpu(self, busy_ms: float) -> None:
        self.version += 1
        self.cpu.add(busy_ms)

    def add_net_in(self, nbytes: float) -> None:
        self.version += 1
        self.net_in.add(nbytes)

    def add_net_out(self, nbytes: float) -> None:
        self.version += 1
        self.net_out.add(nbytes)
