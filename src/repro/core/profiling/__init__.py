"""Elasticity profiling runtime (EPR): actor & server runtime tracking."""

from .collector import ProfilingRuntime
from .latency import LatencyRecorder
from .ring import RingMeter
from .snapshot import ActorSnapshot, ServerSnapshot
from .stats import ActorStats

__all__ = ["ProfilingRuntime", "ActorSnapshot", "ServerSnapshot",
           "ActorStats", "RingMeter", "LatencyRecorder"]
