"""The elasticity profiling runtime (EPR).

Subscribes to the actor runtime's observation hooks and maintains
windowed statistics for every actor: CPU busy time, network bytes, and
per-(caller kind, function) message counts/sizes — everything the EPL's
feature classes [f-ra], [f-rs] and [f-ia] can reference.

Per the paper (§2.2, §5.2), the EPR only *collects*; it never interferes
with application execution.  Its measured cost is a small per-message
bookkeeping charge, modelled here as an optional CPU tax submitted to the
hosting server (``overhead_cpu_ms`` per message).  The Table 3 experiment
compares runs with the EPR attached vs. a vanilla run without it.

Incremental vs. full-recompute profiling
----------------------------------------
With ``incremental=True`` (the default) the EPR maintains ring-buffer
meters with O(1) windowed totals and caches each actor's meter-derived
snapshot payload, reusing it when the actor is provably unchanged:

* **same-instant reuse** — rule evaluation re-snapshots actors many
  times at one virtual timestamp (ref joins, ``colocate_groups``); if no
  meter mutated since the cached payload was computed at the same
  ``sim.now`` on the same server, the numbers are identical by
  construction and are reused;
* **idle reuse across periods** — an actor with zero in-window activity
  and no events since its last snapshot still has zero activity later
  (the window only slides forward), so its all-zero payload stays valid
  at *any* later time.  Cold actors therefore cost O(1) per period, the
  property that keeps decision latency flat as actor counts grow.

Fields that can change without a profiling hook firing (server, pinned,
migrating, state size, property refs, placement time) are read fresh
from the live record on every snapshot, cached or not.  The cached rate
dictionaries are shared between snapshots and must never be mutated;
``call_perc`` is always a fresh dict (it is filled per server group).

With ``incremental=False`` every snapshot recomputes everything from
scan-based :class:`WindowedMeter` buckets — the original implementation,
kept as the reference for A/B equivalence testing.  Both paths produce
bit-identical snapshots and therefore byte-identical decision traces
(enforced by ``tests/profiling/test_incremental_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...actors import ActorRecord, ActorRef, Message, RuntimeHooks
from ...cluster import Server
from ...sim import Simulator
from .snapshot import ActorSnapshot, ServerSnapshot
from .stats import ActorStats

__all__ = ["ProfilingRuntime"]

_MS_PER_MIN = 60_000.0


class _SnapEntry:
    """Cached meter-derived snapshot payload for one actor."""

    __slots__ = ("now", "version", "server_id", "idle", "cpu_perc",
                 "cpu_ms_per_min", "net_bytes_per_min", "net_perc",
                 "call_count_per_min", "call_bytes_per_min",
                 "pair_count_per_min")


class ProfilingRuntime(RuntimeHooks):
    """Collects actor and server runtime information.

    Parameters
    ----------
    window_ms:
        Profiling window; normally set to the elasticity period so rules
        observe exactly one period of history.
    overhead_cpu_ms:
        CPU cost charged to the hosting server per profiled message
        (models the measured sub-percent EPR overhead of Table 3).
    incremental:
        Maintain O(1) ring-buffer meters and reuse snapshot payloads for
        unchanged actors (see module docstring).  ``False`` selects the
        full-recompute reference path.
    meter_backend:
        Explicit meter implementation (``"ring"``, ``"windowed"`` or
        ``"array"`` — the numpy-batched :class:`ArrayMeter`).  ``None``
        (the default) derives the backend from ``incremental``.  All
        backends produce bit-identical totals.
    warm_start:
        Keep the stats of destroyed actors in a bounded cache and, when
        an actor is resurrected, seed its new profile from the pre-crash
        stats instead of starting cold — rules re-converge faster after
        a recovery at the price of briefly trusting stale rates.
    """

    #: Retired-stats retention for ``warm_start`` (FIFO eviction).
    _RETIRED_CAP = 1024

    def __init__(self, sim: Simulator, window_ms: float = 60_000.0,
                 overhead_cpu_ms: float = 0.0,
                 incremental: bool = True,
                 warm_start: bool = False,
                 meter_backend: Optional[str] = None) -> None:
        self.sim = sim
        self.window_ms = window_ms
        self.overhead_cpu_ms = overhead_cpu_ms
        self.incremental = incremental
        self.warm_start = warm_start
        self.meter_backend = meter_backend
        self._stats: Dict[int, ActorStats] = {}
        self._snap_cache: Dict[int, _SnapEntry] = {}
        self._retired: Dict[int, ActorStats] = {}
        self.messages_profiled = 0
        self.snapshot_cache_hits = 0
        self.snapshot_cache_misses = 0
        self.warm_starts = 0

    def _new_stats(self) -> ActorStats:
        return ActorStats(self.sim, window_ms=self.window_ms,
                          use_ring=self.incremental,
                          backend=self.meter_backend)

    # -- RuntimeHooks ---------------------------------------------------------

    def on_actor_created(self, record: ActorRecord) -> None:
        self._stats[record.ref.actor_id] = self._new_stats()

    def on_actor_destroyed(self, record: ActorRecord) -> None:
        stats = self._stats.pop(record.ref.actor_id, None)
        self._snap_cache.pop(record.ref.actor_id, None)
        if self.warm_start and stats is not None:
            self._retired[record.ref.actor_id] = stats
            while len(self._retired) > self._RETIRED_CAP:
                self._retired.pop(next(iter(self._retired)))

    def on_actor_resurrected(self, record: ActorRecord) -> None:
        # By default a resurrected actor restarts from fresh state, so
        # its profile restarts too — pre-crash rates must not drive
        # post-crash rules.  With warm_start (meant to pair with
        # checkpoint restore, where the state actually survives), the
        # pre-crash stats are carried over instead.
        self._snap_cache.pop(record.ref.actor_id, None)
        if self.warm_start:
            stats = self._retired.pop(record.ref.actor_id, None)
            if stats is not None:
                self._stats[record.ref.actor_id] = stats
                self.warm_starts += 1
                return
        self._stats[record.ref.actor_id] = self._new_stats()

    def on_message_delivered(self, record: ActorRecord,
                             message: Message) -> None:
        stats = self._stats.get(record.ref.actor_id)
        if stats is None:  # actor created before profiling attached
            stats = self._new_stats()
            self._stats[record.ref.actor_id] = stats
        stats.record_message(message.caller_kind, message.caller_id,
                             message.function, message.size_bytes)
        self.messages_profiled += 1
        if self.overhead_cpu_ms > 0.0:
            record.server.execute(self.overhead_cpu_ms, owner=self)

    def on_compute(self, record: ActorRecord, busy_ms: float) -> None:
        stats = self._stats.get(record.ref.actor_id)
        if stats is not None:
            stats.add_cpu(busy_ms)

    def on_bytes_sent(self, record: ActorRecord, nbytes: float) -> None:
        stats = self._stats.get(record.ref.actor_id)
        if stats is not None:
            stats.add_net_out(nbytes)

    def on_bytes_received(self, record: ActorRecord, nbytes: float) -> None:
        stats = self._stats.get(record.ref.actor_id)
        if stats is not None:
            stats.add_net_in(nbytes)

    # -- snapshot API (Table 2: getActorsRuntime / getServerRuntime) -----------

    def snapshot_server(self, server: Server,
                        actor_records: List[ActorRecord]) -> ServerSnapshot:
        return ServerSnapshot(
            server=server,
            cpu_perc=server.cpu_percent(self.window_ms),
            mem_perc=server.memory_percent(),
            net_perc=server.net_percent(self.window_ms),
            actor_count=len(actor_records),
            vcpus=server.itype.vcpus,
            instance_type=server.itype.name)

    def snapshot_actors(self,
                        actor_records: List[ActorRecord]) -> List[ActorSnapshot]:
        """Snapshot a group of co-located actors.

        The group must be all actors of one server (the LEM's view) so
        that per-server call percentages are correct.
        """
        snapshots = [self._snapshot_one(record) for record in actor_records]
        self._fill_percentages(snapshots)
        return snapshots

    def _snapshot_one(self, record: ActorRecord) -> ActorSnapshot:
        stats = self._stats.get(record.ref.actor_id)
        if stats is None:
            stats = self._new_stats()
            self._stats[record.ref.actor_id] = stats
        if self.incremental:
            entry = self._snap_cache.get(record.ref.actor_id)
            if (entry is not None and entry.version == stats.version
                    and (entry.idle
                         or (entry.now == self.sim.now
                             and entry.server_id
                             == record.server.server_id))):
                self.snapshot_cache_hits += 1
            else:
                entry = self._compute_entry(record, stats)
                self._snap_cache[record.ref.actor_id] = entry
                self.snapshot_cache_misses += 1
        else:
            entry = self._compute_entry(record, stats)
        server = record.server
        return ActorSnapshot(
            ref=record.ref,
            server=server,
            cpu_perc=entry.cpu_perc,
            cpu_ms_per_min=entry.cpu_ms_per_min,
            mem_mb=record.instance.state_size_mb,
            mem_perc=(100.0 * record.instance.state_size_mb
                      / server.itype.memory_mb),
            net_bytes_per_min=entry.net_bytes_per_min,
            net_perc=entry.net_perc,
            call_count_per_min=entry.call_count_per_min,
            call_bytes_per_min=entry.call_bytes_per_min,
            pair_count_per_min=entry.pair_count_per_min,
            refs=self._extract_refs(record),
            pinned=record.pinned,
            migrating=record.migrating,
            last_placed_at=record.last_placed_at,
            state_size_mb=record.instance.state_size_mb)

    def _compute_entry(self, record: ActorRecord,
                       stats: ActorStats) -> _SnapEntry:
        """Recompute the meter-derived snapshot payload for one actor."""
        server = record.server
        window = self.window_ms

        effective = min(window, max(self.sim.now, 1e-9))
        cpu_busy = stats.cpu.total(window)
        cpu_capacity = effective * server.itype.vcpus
        net_bytes = stats.net_in.total(window) + stats.net_out.total(window)
        net_capacity = effective * server.itype.net_bytes_per_ms()

        # Zero-length window (window_ms=0, or a degenerate effective
        # coverage): every total is zero, so rates are zero — dividing by
        # the zero coverage would raise instead.
        per_min = _MS_PER_MIN / effective if effective > 0.0 else 0.0
        entry = _SnapEntry()
        entry.now = self.sim.now
        entry.version = stats.version
        entry.server_id = server.server_id
        # Clamp like Server.cpu_percent does: bucketed meters include the
        # whole partial bucket at the window edge, so a saturated actor
        # can total slightly more than window * capacity.
        entry.cpu_perc = (min(100.0, 100.0 * cpu_busy / cpu_capacity)
                          if cpu_capacity else 0.0)
        entry.cpu_ms_per_min = cpu_busy * per_min
        entry.net_bytes_per_min = net_bytes * per_min
        entry.net_perc = (min(100.0, 100.0 * net_bytes / net_capacity)
                          if net_capacity else 0.0)
        entry.call_count_per_min = {
            key: meter.total(window) * per_min
            for key, meter in stats.call_counts.items()}
        entry.call_bytes_per_min = {
            key: meter.total(window) * per_min
            for key, meter in stats.call_bytes.items()}
        entry.pair_count_per_min = {
            key: meter.total(window) * per_min
            for key, meter in stats.pair_counts.items()}
        entry.idle = (
            cpu_busy == 0.0 and net_bytes == 0.0
            and not any(entry.call_count_per_min.values())
            and not any(entry.call_bytes_per_min.values())
            and not any(entry.pair_count_per_min.values()))
        return entry

    @staticmethod
    def _extract_refs(record: ActorRecord) -> Dict[str, tuple]:
        """Capture every property of the actor that holds actor refs."""
        refs: Dict[str, tuple] = {}
        instance_vars = getattr(record.instance, "__dict__", {})
        for pname in instance_vars:
            if pname.startswith("_") or pname == "ref":
                continue  # 'ref' is the actor's own injected handle
            held = record.instance.property_refs(pname)
            if held:
                refs[pname] = tuple(held)
        return refs

    @staticmethod
    def _fill_percentages(snapshots: List[ActorSnapshot]) -> None:
        """Compute call percentages within a same-server actor group.

        perc = this actor's count of (caller, function) / total over all
        actors *of the same type on the same server* (paper §3.2 (iii)).
        A group whose total is zero (no calls anywhere in the window)
        yields 0.0 for every member rather than dividing by zero.
        """
        totals: Dict[tuple, float] = {}
        for snap in snapshots:
            for key, rate in snap.call_count_per_min.items():
                group = (snap.type_name, key)
                totals[group] = totals.get(group, 0.0) + rate
        for snap in snapshots:
            for key, rate in snap.call_count_per_min.items():
                group_total = totals.get((snap.type_name, key), 0.0)
                snap.call_perc[key] = (
                    100.0 * rate / group_total if group_total > 0.0 else 0.0)
