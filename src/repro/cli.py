"""Command-line interface.

    python -m repro compile POLICY_FILE --app APP     # compile + lint
    python -m repro compile POLICY_FILE --classes m:C # against own actors
    python -m repro apps                              # list bundled apps
    python -m repro experiment NAME [--quick]         # run one experiment
    python -m repro experiments                       # list experiments
    python -m repro fuzz --seeds 50                   # fuzz campaign
    python -m repro fuzz --replay ARTIFACT.json       # replay a failure
    python -m repro store --seed 7                    # checkpoint store

The ``compile`` command is the "PLASMA compiler" entry point of the
paper's Fig. 2: it parses the elasticity policy, validates it against an
actor program, prints conflict warnings, and emits the elasticity
configuration JSON.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from typing import Callable, Dict, List, Sequence, Tuple

from .bench import format_table
from .core.epl import EplError, compile_source

__all__ = ["main"]


def _app_registry() -> Dict[str, Tuple[str, list]]:
    """Bundled applications: name -> (policy source, actor classes)."""
    from . import apps
    from .apps.btree import InnerNode, LeafNode
    from .apps.cassandra import Replica
    from .apps.estore import Partition
    from .apps.halo import Player, Router, Session
    from .apps.metadata import File, Folder
    from .apps.pagerank import PageRankWorker
    from .apps.piccolo import PiccoloWorker, Table
    from .apps.zexpander import CacheLeaf, IndexNode

    return {
        "metadata": (apps.METADATA_POLICY, [Folder, File]),
        "pagerank": (apps.PAGERANK_POLICY, [PageRankWorker]),
        "estore": (apps.ESTORE_POLICY, [Partition]),
        "media": (apps.MEDIA_POLICY, apps.MEDIA_ACTOR_CLASSES),
        "halo": (apps.HALO_INTERACTION_POLICY, [Router, Session, Player]),
        "btree": (apps.BTREE_POLICY, [InnerNode, LeafNode]),
        "piccolo": (apps.PICCOLO_POLICY, [PiccoloWorker, Table]),
        "zexpander": (apps.ZEXPANDER_POLICY, [IndexNode, CacheLeaf]),
        "cassandra": (apps.CASSANDRA_POLICY, [Replica]),
    }


def _resolve_classes(specs: Sequence[str]) -> list:
    """Resolve ``module:Class[,Class...]`` specs to actor classes."""
    classes = []
    for spec in specs:
        module_name, _, names = spec.partition(":")
        if not names:
            raise SystemExit(
                f"bad --classes spec {spec!r}; expected module:Class,...")
        module = importlib.import_module(module_name)
        for name in names.split(","):
            classes.append(getattr(module, name))
    return classes


# -- commands -----------------------------------------------------------------


def cmd_compile(args: argparse.Namespace) -> int:
    if args.app:
        registry = _app_registry()
        if args.app not in registry:
            raise SystemExit(f"unknown app {args.app!r}; see `apps`")
        default_policy, classes = registry[args.app]
        source = default_policy
        if args.policy:
            with open(args.policy) as handle:
                source = handle.read()
    else:
        if not args.policy or not args.classes:
            raise SystemExit(
                "compile needs either --app APP or POLICY --classes ...")
        with open(args.policy) as handle:
            source = handle.read()
        classes = _resolve_classes(args.classes)

    try:
        compiled = compile_source(source, classes)
    except EplError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"compiled {compiled.rule_count()} rules "
          f"({len(compiled.actor_rules)} LEM-side, "
          f"{len(compiled.resource_rules)} GEM-side)")
    for warning in compiled.warnings:
        print(f"warning: {warning}")
    if args.json:
        print(compiled.to_json())
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    rows = []
    for name, (policy, classes) in sorted(_app_registry().items()):
        compiled = compile_source(policy, classes)
        rows.append([name, compiled.rule_count(),
                     ", ".join(sorted(c.__name__ for c in classes))])
    print(format_table(["app", "rules", "actor types"], rows,
                       title="Bundled PLASMA applications (paper Table 1)"))
    return 0


def _experiment_registry() -> Dict[str, Tuple[str, Callable]]:
    def fig5(quick: bool):
        from .apps.metadata import run_metadata_experiment
        scale = dict(num_clients=8, duration_ms=90_000.0,
                     period_ms=25_000.0) if quick else {}
        rows = []
        for mode in ("res-col-rule", "def-rule", "no-rule"):
            result = run_metadata_experiment(mode, **scale)
            rows.append([mode, result.mean_before_ms,
                         result.mean_after_ms, result.migrations])
        print(format_table(
            ["setup", "before (ms)", "after (ms)", "migrations"], rows,
            title="Fig. 5 — Metadata Server"))

    def fig9(quick: bool):
        from .apps.estore import run_estore_experiment
        scale = dict(num_clients=24, duration_ms=110_000.0,
                     period_ms=25_000.0) if quick else {}
        rows = []
        for mode in ("plasma", "in-app", "none"):
            result = run_estore_experiment(mode, **scale)
            rows.append([mode, result.mean_before_ms,
                         result.mean_after_ms, result.migrations])
        print(format_table(
            ["setup", "before (ms)", "after (ms)", "migrations"], rows,
            title="Fig. 9 — E-Store"))

    def fig11a(quick: bool):
        from .apps.halo import run_halo_interaction_experiment
        scale = dict(num_clients=12, rounds=2, round_ms=30_000.0,
                     period_ms=10_000.0, heartbeat_ms=200.0) \
            if quick else {}
        rows = []
        for mode in ("inter-rule", "def-rule"):
            result = run_halo_interaction_experiment(mode, **scale)
            rows.append([mode, result.mean_latency_ms, result.migrations])
        print(format_table(
            ["rule", "mean latency (ms)", "migrations"], rows,
            title="Fig. 11a — Halo Presence"))

    return {
        "fig5": ("Metadata Server: semantic vs blind rule", fig5),
        "fig9": ("E-Store: PLASMA rules vs in-app elasticity", fig9),
        "fig11a": ("Halo: interaction rule vs frequency colocation",
                   fig11a),
    }


def cmd_experiments(args: argparse.Namespace) -> int:
    rows = [[name, description]
            for name, (description, _run)
            in sorted(_experiment_registry().items())]
    print(format_table(["experiment", "description"], rows,
                       title="Runnable experiments (full set: "
                             "pytest benchmarks/ --benchmark-only)"))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.name not in registry:
        raise SystemExit(f"unknown experiment {args.name!r}; "
                         f"see `experiments`")
    _description, run = registry[args.name]
    run(args.quick)
    return 0


ARTIFACT_FORMAT = "repro-fuzz-artifact/1"


def load_fuzz_scenario(path: str):
    """Load a scenario from a scenario JSON or a failure artifact."""
    from .fuzz import SCENARIO_FORMAT, Scenario
    with open(path) as handle:
        data = json.load(handle)
    if data.get("format") == ARTIFACT_FORMAT:
        return Scenario.from_jsonable(data["scenario"])
    if data.get("format") == SCENARIO_FORMAT:
        return Scenario.from_jsonable(data)
    raise SystemExit(f"{path}: not a fuzz scenario or artifact "
                     f"(format={data.get('format')!r})")


def _write_artifact(out_dir: str, seed: int, scenario, result,
                    shrink_runs: int) -> str:
    import os
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"seed-{seed}.json")
    artifact = {
        "format": ARTIFACT_FORMAT,
        "found_seed": seed,
        "failure": result.summary(),
        "violations": [str(v) for v in result.violations],
        "shrink_runs": shrink_runs,
        "scenario": scenario.to_jsonable(),
    }
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def cmd_fuzz(args: argparse.Namespace) -> int:
    import time
    from .fuzz import (failure_signature, generate_scenario, run_scenario,
                       shrink)

    if args.replay:
        scenario = load_fuzz_scenario(args.replay)
        print(f"replaying {args.replay}: {scenario.describe()}")
        result = run_scenario(scenario, with_trace=args.trace)
        print(result.summary())
        for violation in result.violations:
            print(f"  {violation}")
        if result.error:
            print(result.error)
        for line in result.trace_tail:
            print(f"  trace: {line}")
        return 0 if result.ok else 1

    started = time.monotonic()
    failures = 0
    total_drops = 0
    total_shed = 0
    total_dead_letters = 0
    total_root_failovers = 0
    total_leaf_failovers = 0
    for index in range(args.seeds):
        if args.budget_s and time.monotonic() - started > args.budget_s:
            print(f"budget of {args.budget_s}s exhausted after "
                  f"{index} seed(s)")
            break
        seed = args.seed_start + index
        scenario = generate_scenario(seed, profile=args.profile)
        result = run_scenario(scenario)
        status = result.summary()
        total_drops += result.messages_dropped
        total_shed += result.messages_shed
        total_dead_letters += result.dead_letters
        total_root_failovers += result.root_failovers
        total_leaf_failovers += result.leaf_failovers
        print(f"seed {seed:6d}  {scenario.describe():50s} {status}")
        if result.ok:
            continue
        failures += 1
        shrink_runs = 0
        if not args.no_shrink:
            scenario, result, shrink_runs = shrink(
                scenario, result,
                log=lambda msg: print(f"    {msg}"))
        path = _write_artifact(args.out, seed, scenario, result,
                               shrink_runs)
        print(f"    failure minimized to {path} "
              f"({result.summary()})")
    elapsed = time.monotonic() - started
    overload_note = (f", {total_shed} shed, "
                     f"{total_dead_letters} dead-letter(s)"
                     if total_shed or total_dead_letters else "")
    failover_note = (f", {total_root_failovers} root failover(s), "
                     f"{total_leaf_failovers} leaf failover(s)"
                     if total_root_failovers or total_leaf_failovers
                     else "")
    print(f"{args.seeds} seed(s) in {elapsed:.1f}s: "
          f"{failures} failure(s), "
          f"{total_drops} fabric message(s) dropped"
          f"{overload_note}{failover_note}")
    return 1 if failures else 0


def cmd_store(args: argparse.Namespace) -> int:
    """Run one scenario with durability forced on; dump the store."""
    from dataclasses import replace as dc_replace
    from .fuzz import generate_scenario, run_scenario

    if args.scenario:
        scenario = load_fuzz_scenario(args.scenario)
    else:
        scenario = generate_scenario(args.seed, profile="durability")
    durability = dict(scenario.durability or {})
    durability["enabled"] = True
    durability.setdefault("checkpoint_interval_ms", scenario.period_ms)
    if args.interval_ms is not None:
        durability["checkpoint_interval_ms"] = args.interval_ms
    if args.replication is not None:
        durability["replication_factor"] = args.replication
    scenario = dc_replace(scenario, durability=durability)

    # Keep stdout machine-readable under --json.
    print(f"running {scenario.describe()}",
          file=sys.stderr if args.json else sys.stdout)
    result = run_scenario(scenario)
    if result.error:
        print(result.error)
        return 1
    summary = result.store_summary
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if result.ok else 1
    rows = [[row["actor_id"], row["type"], row["written"], row["kept"],
             row["acked_seq"] if row["acked_seq"] is not None else "-",
             f"{row['size_bytes'] / 1024.0:.1f}",
             ",".join(row["replicas"]) or "-"]
            for row in summary["actors"]]
    print(format_table(
        ["actor", "type", "written", "kept", "acked seq", "size (KiB)",
         "replicas"], rows, title="Checkpoint store"))
    journal = summary["journal"]
    kinds = ", ".join(f"{kind}={count}"
                      for kind, count in journal["kinds"].items())
    print(f"journal: {journal['entries']} entrie(s) "
          f"({journal['trimmed']} trimmed) {kinds}")
    totals = summary["totals"]
    print(f"totals: {totals['checkpoints_written']} written, "
          f"{totals['checkpoints_acked']} acked, "
          f"{totals['checkpoints_lost']} lost, "
          f"{totals['restores']} restore(s) "
          f"({totals['restore_misses']} miss(es)), "
          f"{totals['journal_replays']} journal entrie(s) replayed, "
          f"{totals['bytes_replicated'] / 1048576.0:.2f} MiB replicated")
    for violation in result.violations:
        print(f"  violation: {violation}")
    return 0 if result.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a live app over HTTP until interrupted."""
    import asyncio

    from .live import (FrontDoor, LiveActorSystem, LiveElasticityManager,
                       LiveEmrConfig, build_live_app)

    async def serve() -> int:
        system = LiveActorSystem(mailbox_capacity=args.mailbox_capacity)
        for _ in range(max(1, args.servers)):
            system.add_server()
        app = build_live_app(args.app, system)
        await app.setup()
        front = FrontDoor(app.handle, host=args.host, port=args.port)
        await front.start()
        manager = None
        if not args.no_emr:
            manager = LiveElasticityManager(
                system, policy=app.policy(),
                config=LiveEmrConfig(period_ms=args.period_ms))
            manager.start()
        print(f"serving {args.app} on http://{front.host}:{front.port} "
              f"({args.servers} server(s), "
              f"emr={'off' if args.no_emr else 'on'}) — Ctrl-C to stop")
        try:
            while True:
                await asyncio.sleep(3600)
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            if manager is not None:
                await manager.stop()
            await front.stop()
            await system.shutdown()
        return 0

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:
        return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """In-process live load test; exit nonzero on unbalanced books."""
    from .live.harness import live_loadtest

    result = live_loadtest(
        app_name=args.app, rate_per_s=args.rate, duration_s=args.duration_s,
        servers=args.servers, migrate_at_s=args.migrate_at_s,
        scale_out_at_s=args.scale_out_at_s,
        emr=not args.no_emr, period_ms=args.period_ms,
        mailbox_capacity=args.mailbox_capacity,
        connections=args.connections, flash_crowd=args.flash_crowd,
        seed=args.seed)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
    else:
        requests = result["requests"]
        print(f"{requests['sent']} requests in {requests['duration_s']}s "
              f"({requests['rps']} req/s): {requests['ok']} ok, "
              f"{requests['shed']} shed, {requests['http_errors']} errors, "
              f"{requests['timeouts']} timeouts")
        rows = [[phase,
                 summary["count"],
                 f"{summary['p50']:.2f}" if summary["p50"] is not None else "-",
                 f"{summary['p95']:.2f}" if summary["p95"] is not None else "-",
                 f"{summary['p99']:.2f}" if summary["p99"] is not None else "-"]
                for phase, summary in requests["phases"].items()]
        print(format_table(["phase", "count", "p50 ms", "p95 ms", "p99 ms"],
                           rows, title="Latency by phase"))
        ledger = result["ledger"]
        print(f"ledger: issued={ledger['issued']} "
              f"answered={ledger['answered']} rejected={ledger['rejected']} "
              f"shed={ledger['shed']} failed={ledger['failed']} "
              f"outstanding={ledger['outstanding']} "
              f"balanced={result['ledger_balanced']}")
        for move in result["migrations"]["forced"]:
            print(f"migration: actor {move['actor']} {move['from']} -> "
                  f"{move['to']} moved={move['moved']} "
                  f"wall={move['wall_ms']}ms")
    ok = (result["ledger_balanced"] and result["client_balanced"]
          and result["runtime"]["handler_errors"] == 0
          and result["requests"]["transport_errors"] == 0)
    if not ok:
        print("FAIL: lost or unaccounted requests", file=sys.stderr)
    return 0 if ok else 1


# -- entry point ---------------------------------------------------------------


def main(argv: Sequence[str] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PLASMA reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile and lint an elasticity policy")
    p_compile.add_argument("policy", nargs="?",
                           help="path to an EPL policy file")
    p_compile.add_argument("--app", help="validate against a bundled "
                                         "application's actor program")
    p_compile.add_argument("--classes", nargs="*",
                           help="actor classes as module:Class,Class")
    p_compile.add_argument("--json", action="store_true",
                           help="print the elasticity configuration JSON")
    p_compile.set_defaults(func=cmd_compile)

    p_apps = sub.add_parser("apps", help="list bundled applications")
    p_apps.set_defaults(func=cmd_apps)

    p_experiments = sub.add_parser("experiments",
                                   help="list runnable experiments")
    p_experiments.set_defaults(func=cmd_experiments)

    p_experiment = sub.add_parser("experiment",
                                  help="run one experiment")
    p_experiment.add_argument("name")
    p_experiment.add_argument("--quick", action="store_true",
                              help="scaled-down parameters")
    p_experiment.set_defaults(func=cmd_experiment)

    p_fuzz = sub.add_parser(
        "fuzz", help="fuzz the elasticity stack under the invariant "
                     "checker")
    p_fuzz.add_argument("--seeds", type=int, default=20,
                        help="number of fresh seeds to run (default 20)")
    p_fuzz.add_argument("--seed-start", type=int, default=0,
                        help="first seed of the campaign (default 0)")
    p_fuzz.add_argument("--budget-s", type=float, default=0.0,
                        help="wall-clock budget; stop starting new "
                             "seeds after this many seconds")
    p_fuzz.add_argument("--out", default="fuzz-artifacts",
                        help="directory for shrunk failure artifacts")
    p_fuzz.add_argument("--profile",
                        choices=("default", "partition", "durability",
                                 "overload", "scale", "scale-chaos"),
                        default="default",
                        help="generator emphasis: 'partition' injects a "
                             "network partition into every scenario; "
                             "'durability' enables checkpointing and "
                             "crashes a server mid-run; 'overload' "
                             "enables bounded mailboxes/brownout and "
                             "injects a load storm; 'scale' runs the "
                             "hierarchical control plane over a sharded "
                             "directory with a randomized group "
                             "topology; 'scale-chaos' adds root/leaf "
                             "kills, server crashes, and partitions on "
                             "top of the scale topology")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="write failures unshrunk")
    p_fuzz.add_argument("--replay", metavar="FILE",
                        help="replay one scenario or artifact JSON "
                             "instead of fuzzing")
    p_fuzz.add_argument("--trace", action="store_true",
                        help="with --replay: attach the tracer and "
                             "print the trace tail on failure")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_store = sub.add_parser(
        "store", help="run one scenario with durable state forced on "
                      "and inspect the checkpoint store")
    p_store.add_argument("--seed", type=int, default=0,
                         help="generate the scenario from this seed "
                              "(durability profile; default 0)")
    p_store.add_argument("--scenario", metavar="FILE",
                         help="run a scenario or artifact JSON instead "
                              "of a generated seed")
    p_store.add_argument("--interval-ms", type=float, default=None,
                         help="override the checkpoint interval")
    p_store.add_argument("--replication", type=int, default=None,
                         help="override the replication factor")
    p_store.add_argument("--json", action="store_true",
                         help="print the raw store summary as JSON")
    p_store.set_defaults(func=cmd_store)

    p_serve = sub.add_parser(
        "serve", help="serve a live app (asyncio backend) over HTTP")
    p_serve.add_argument("--app", default="chatroom",
                         choices=("chatroom", "metadata"))
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--servers", type=int, default=2,
                         help="logical placement servers (default 2)")
    p_serve.add_argument("--period-ms", type=float, default=250.0,
                         help="live EMR control period (default 250)")
    p_serve.add_argument("--mailbox-capacity", type=int, default=None,
                         help="bounded mailboxes: shed client sends "
                              "beyond this depth")
    p_serve.add_argument("--no-emr", action="store_true",
                         help="serve without elasticity management")
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadtest", help="boot a live app in-process and load it "
                         "(open loop), reporting phase latencies and "
                         "the request disposition ledger")
    p_load.add_argument("--app", default="chatroom",
                        choices=("chatroom", "metadata"))
    p_load.add_argument("--rate", type=float, default=2000.0,
                        help="open-loop arrival rate, req/s (default 2000)")
    p_load.add_argument("--duration-s", type=float, default=4.0)
    p_load.add_argument("--servers", type=int, default=2)
    p_load.add_argument("--migrate-at-s", type=float, default=None,
                        help="force-migrate the hot actor at this offset")
    p_load.add_argument("--scale-out-at-s", type=float, default=None,
                        help="add a server and move an actor onto it "
                             "at this offset")
    p_load.add_argument("--period-ms", type=float, default=250.0)
    p_load.add_argument("--mailbox-capacity", type=int, default=None)
    p_load.add_argument("--connections", type=int, default=32)
    p_load.add_argument("--flash-crowd", action="store_true",
                        help="add a mid-run flash-crowd burst")
    p_load.add_argument("--seed", type=int, default=42)
    p_load.add_argument("--no-emr", action="store_true")
    p_load.add_argument("--json", action="store_true")
    p_load.set_defaults(func=cmd_loadtest)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
