"""Pluggable runtime backends: one control surface, two clocks.

PLASMA's EMR is *decoupled* from the actor runtime (paper §2): LEMs and
GEMs consume profiling snapshots and drive a narrow migrate/pin/place
API — nothing in the elasticity layer should care whether messages move
through a discrete-event simulator or a real asyncio event loop.  This
module pins that contract down as :class:`RuntimeBackend`:

* **clock** — ``now`` in milliseconds (virtual or wall), plus
  ``schedule``/``spawn`` so periodic control loops can be expressed
  against either timebase;
* **control surface** — ``migrate_actor`` / ``pin`` / ``create_actor`` /
  ``resurrect_actor``, the only mutating verbs the EMR is allowed;
* **observation surface** — ``actors_on`` / ``mailbox_depth`` /
  ``server_of`` / ``servers`` plus hook (profiling subscriber)
  registration, the only reads the EMR is allowed.

:class:`SimBackend` adapts the deterministic simulator-backed
:class:`~repro.actors.system.ActorSystem`; every method is a pure
delegation, so running the EMR through the backend is bit-identical to
calling the system directly (guarded by
``tests/profiling/test_backend_equivalence.py``).  The wall-clock
counterpart lives in :mod:`repro.live` (:class:`repro.live.LiveBackend`).

Module-level imports here are deliberately limited to the standard
library: ``actors.system`` imports this module, so pulling any repro
package in at import time would cycle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["RuntimeBackend", "SimBackend"]


class RuntimeBackend(ABC):
    """The surface an elasticity runtime needs from an actor runtime.

    Time is always *milliseconds as float* — virtual for the simulator,
    monotonic-wall-clock for the live runtime — so meters, windows, and
    policy periods carry over unchanged between backends.

    Methods whose completion is inherently asynchronous
    (:meth:`migrate_actor`) return a backend-native completion handle: a
    :class:`~repro.sim.Signal` under the simulator, an
    :class:`asyncio.Task` under the live runtime, or ``None`` when the
    request was refused outright.  Callers that only fire-and-continue
    (the LEM's ``_execute``) can ignore it on either backend.
    """

    #: Short identifier (``"sim"`` / ``"live"``) used in logs and docs.
    name: str = "abstract"

    #: True when ``now`` advances with wall time even if nobody is
    #: pumping an event loop; False for virtual (simulated) time.
    wall_clock: bool = False

    # -- clock ---------------------------------------------------------

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in milliseconds since the runtime epoch."""

    @abstractmethod
    def schedule(self, delay_ms: float, callback: Callable[..., Any],
                 *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay_ms`` milliseconds."""

    @abstractmethod
    def spawn(self, proc: Any, name: Optional[str] = None) -> Any:
        """Launch a background control-loop process.

        ``proc`` is backend-native: a generator of waitables under the
        simulator, a coroutine under asyncio.
        """

    # -- control surface (the migrate/pin/place API) -------------------

    @abstractmethod
    def create_actor(self, cls: type, *args: Any, **kwargs: Any) -> Any:
        """Place a new actor; returns its ``ActorRef``."""

    @abstractmethod
    def migrate_actor(self, ref: Any, target: Any,
                      force: bool = False) -> Any:
        """Start a two-phase live migration of ``ref`` to ``target``.

        Returns a completion handle, or ``None``/``False`` when refused
        (pinned without force, already migrating, target down, ...).
        """

    @abstractmethod
    def pin(self, ref: Any, pinned: bool = True) -> None:
        """Mark ``ref`` immovable (``pin`` EPL behavior)."""

    @abstractmethod
    def resurrect_actor(self, tombstone: Any,
                        server: Optional[Any] = None) -> Any:
        """Re-create a crashed actor from its directory tombstone."""

    # -- observation surface -------------------------------------------

    @abstractmethod
    def actors_on(self, server: Any) -> List[Any]:
        """Directory records of actors currently placed on ``server``."""

    @abstractmethod
    def mailbox_depth(self, actor_id: int) -> int:
        """Queued (undelivered) messages for one actor."""

    @abstractmethod
    def server_of(self, ref: Any) -> Any:
        """Current placement of ``ref``."""

    @abstractmethod
    def servers(self) -> Sequence[Any]:
        """All known servers, running or not."""

    # -- profiling subscribers -----------------------------------------

    @abstractmethod
    def add_hooks(self, hooks: Any) -> None:
        """Subscribe a :class:`~repro.actors.hooks.RuntimeHooks`."""

    @abstractmethod
    def remove_hooks(self, hooks: Any) -> None:
        """Unsubscribe a previously added hooks object."""


class SimBackend(RuntimeBackend):
    """Adapter exposing the simulator-backed ``ActorSystem``.

    Every method is a one-hop delegation to the exact call the EMR made
    before the backend indirection existed; no reordering, no extra
    simulator events, no added randomness.  The golden-trace equivalence
    guard pins this down by comparing full result fingerprints against a
    bypassing shim.
    """

    name = "sim"
    wall_clock = False

    def __init__(self, system: Any) -> None:
        self.system = system

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.system.sim.now

    def schedule(self, delay_ms: float, callback: Callable[..., Any],
                 *args: Any) -> None:
        self.system.sim.schedule(delay_ms, callback, *args)

    def spawn(self, proc: Any, name: Optional[str] = None) -> Any:
        # Local import: sim is cheap to import but keeping the module
        # header stdlib-only avoids any chance of an import cycle.
        from .sim import spawn as sim_spawn
        return sim_spawn(self.system.sim, proc, name=name)

    # -- control surface -----------------------------------------------

    def create_actor(self, cls: type, *args: Any, **kwargs: Any) -> Any:
        return self.system.create_actor(cls, *args, **kwargs)

    def migrate_actor(self, ref: Any, target: Any,
                      force: bool = False) -> Any:
        return self.system.migrate_actor(ref, target, force=force)

    def pin(self, ref: Any, pinned: bool = True) -> None:
        self.system.pin(ref, pinned)

    def resurrect_actor(self, tombstone: Any,
                        server: Optional[Any] = None) -> Any:
        return self.system.resurrect_actor(tombstone, server)

    # -- observation surface -------------------------------------------

    def actors_on(self, server: Any) -> List[Any]:
        return self.system.actors_on(server)

    def mailbox_depth(self, actor_id: int) -> int:
        return self.system.mailbox_depth(actor_id)

    def server_of(self, ref: Any) -> Any:
        return self.system.server_of(ref)

    def servers(self) -> Sequence[Any]:
        return self.system.provisioner.servers

    # -- profiling subscribers -----------------------------------------

    def add_hooks(self, hooks: Any) -> None:
        self.system.add_hooks(hooks)

    def remove_hooks(self, hooks: Any) -> None:
        self.system.remove_hooks(hooks)
