"""Configuration for the overload-protection layer.

Everything here is opt-in: an :class:`OverloadConfig` only takes effect
when attached to :class:`~repro.core.emr.EmrConfig` (or installed on an
``ActorSystem`` directly in tests), and every knob's default keeps the
data plane semantics identical to an unprotected run except for the
mailbox bound itself.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OverloadConfig", "MAILBOX_POLICIES"]

#: Admission policies for a full mailbox.
#:
#: - ``block``: the message is not dropped; delivery retries after
#:   ``block_retry_ms`` (models NIC-level credit-based backpressure —
#:   the sender's traffic occupies the wire until the receiver drains).
#: - ``shed``: deterministic drop-newest.  Client calls receive a
#:   retriable :class:`~repro.actors.Overloaded` NACK; actor-to-actor
#:   messages resolve to ``None`` like calls on a destroyed actor.
#: - ``deadline``: like ``shed``, but additionally drops any client
#:   message whose deadline already expired on arrival, even when the
#:   mailbox has room (the client has given up; the work is waste).
MAILBOX_POLICIES = ("block", "shed", "deadline")


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for bounded mailboxes, admission control, and brownout.

    ``mailbox_capacity == 0`` leaves mailboxes unbounded (admission
    control and brownout can still be active on their own).
    """

    #: Per-actor mailbox bound; 0 = unbounded.
    mailbox_capacity: int = 64
    #: What to do when a mailbox is full (see :data:`MAILBOX_POLICIES`).
    policy: str = "shed"
    #: Backpressure retry interval for the ``block`` policy.
    block_retry_ms: float = 0.5
    #: Reject new client requests when the target's mailbox already
    #: holds this many messages; 0 disables the queue-depth check.
    admission_queue_depth: int = 0
    #: Reject new client requests when the hosting server's windowed
    #: CPU utilisation is at or above this percentage; 0 disables.
    admission_cpu_perc: float = 0.0
    #: Trailing window for the admission CPU check.
    admission_cpu_window_ms: float = 1_000.0
    #: Enable the control-plane brownout state machine.
    brownout_enabled: bool = True
    #: Enter brownout after ``brownout_enter_rounds`` consecutive LEM
    #: rounds at or above this CPU percentage.
    brownout_enter_cpu_perc: float = 90.0
    #: Leave brownout after ``brownout_exit_rounds`` consecutive LEM
    #: rounds at or below this CPU percentage (hysteresis: must be
    #: strictly below the enter watermark).
    brownout_exit_cpu_perc: float = 60.0
    brownout_enter_rounds: int = 2
    brownout_exit_rounds: int = 2
    #: While browned out the LEM reports every ``brownout_stretch``
    #: periods instead of every period, and the failure detector grants
    #: the server the same factor of extra grace before suspecting it.
    brownout_stretch: int = 2
    #: While browned out, REPORTs carry only the top-k actors by CPU
    #: share instead of the full actor set.
    brownout_top_k: int = 8
    #: GEMs planning for a browned-out server that missed the current
    #: round may substitute its last-known-good snapshot if it is at
    #: most this stale.
    stale_snapshot_ms: float = 30_000.0

    def __post_init__(self) -> None:
        if self.policy not in MAILBOX_POLICIES:
            raise ValueError(f"unknown mailbox policy {self.policy!r}; "
                             f"expected one of {MAILBOX_POLICIES}")
        if self.mailbox_capacity < 0:
            raise ValueError("mailbox_capacity must be >= 0")
        if self.block_retry_ms <= 0:
            raise ValueError("block_retry_ms must be positive")
        if self.admission_queue_depth < 0:
            raise ValueError("admission_queue_depth must be >= 0")
        if not 0.0 <= self.admission_cpu_perc <= 100.0:
            raise ValueError("admission_cpu_perc must be in [0, 100]")
        if self.admission_cpu_window_ms <= 0:
            raise ValueError("admission_cpu_window_ms must be positive")
        if not 0.0 <= self.brownout_enter_cpu_perc <= 100.0:
            raise ValueError("brownout_enter_cpu_perc must be in [0, 100]")
        if not 0.0 <= self.brownout_exit_cpu_perc <= 100.0:
            raise ValueError("brownout_exit_cpu_perc must be in [0, 100]")
        if self.brownout_exit_cpu_perc >= self.brownout_enter_cpu_perc:
            raise ValueError("brownout_exit_cpu_perc must be below "
                             "brownout_enter_cpu_perc (hysteresis)")
        if self.brownout_enter_rounds < 1:
            raise ValueError("brownout_enter_rounds must be >= 1")
        if self.brownout_exit_rounds < 1:
            raise ValueError("brownout_exit_rounds must be >= 1")
        if self.brownout_stretch < 1:
            raise ValueError("brownout_stretch must be >= 1")
        if self.brownout_top_k < 1:
            raise ValueError("brownout_top_k must be >= 1")
        if self.stale_snapshot_ms <= 0:
            raise ValueError("stale_snapshot_ms must be positive")
