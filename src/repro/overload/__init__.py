"""Overload protection: bounded mailboxes, admission control, brownout.

The fault-tolerance stack (chaos, partitions, durability) handles
servers that *die*; this package handles servers that are merely
*drowning*.  The data plane bounds per-actor mailboxes and sheds or
backpressures excess load with full accounting, and the control plane
degrades gracefully — browned-out LEMs report less, less often, and the
failure detector knows the difference between slow and dead.

See ``docs/fault-model.md`` ("Overload & brownout") for the design.
"""

from .config import MAILBOX_POLICIES, OverloadConfig
from .manager import DISPOSITIONS, OverloadManager

__all__ = ["OverloadConfig", "OverloadManager", "MAILBOX_POLICIES",
           "DISPOSITIONS"]
