"""Runtime state for the overload-protection layer.

An :class:`OverloadManager` is the single object both planes share:

- the **data plane** (``ActorSystem._deliver`` and friends) consults it
  for mailbox bounds / admission decisions and reports every client
  message's terminal disposition to it, and
- the **control plane** (LEM rounds, the GEM failure detector) drives
  its per-server brownout state machine through :meth:`note_lem_round`.

The disposition ledger is what makes load shedding *accountable*: every
client message is issued exactly once and must reach exactly one
terminal state (:data:`DISPOSITIONS`).  The invariant checker audits the
ledger — see ``admission-conservation`` in ``repro.check``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .config import OverloadConfig

__all__ = ["OverloadManager", "DISPOSITIONS"]

#: Terminal states a client message can reach, exactly one each:
#:
#: - ``consumed``: popped from a mailbox and handled by the actor.
#: - ``shed``: dropped by the mailbox bound (``shed``/``deadline``
#:   policies); the client got an ``Overloaded`` NACK.
#: - ``rejected``: refused by server admission control before it ever
#:   queued; the client got an ``Overloaded`` NACK.
#: - ``deadline``: arrived after the client's deadline had already
#:   expired (``deadline`` policy) and was dropped as waste.
#: - ``fabric-lost``: dropped in flight by a network fault.
#: - ``no-target``: the target actor did not exist at send time.
#: - ``dead-target``: the target was destroyed (or its mailbox cleared
#:   by `destroy_actor`) while the message was queued.
#: - ``crashed``: lost when the hosting server crashed with the message
#:   still queued or in flight.
DISPOSITIONS = ("consumed", "shed", "rejected", "deadline",
                "fabric-lost", "no-target", "dead-target", "crashed")


class _BrownoutState:
    """Hysteresis counters for one server."""

    __slots__ = ("active", "above_rounds", "below_rounds", "entered_at")

    def __init__(self) -> None:
        self.active = False
        self.above_rounds = 0
        self.below_rounds = 0
        self.entered_at: Optional[float] = None


class OverloadManager:
    """Shared overload state: disposition ledger + brownout machine.

    ``emit`` is an optional event sink with the elasticity manager's
    ``emit(kind, **fields)`` signature; brownout transitions and
    drowning announcements go through it so traces and the checker see
    them.
    """

    def __init__(self, system: Any, config: OverloadConfig,
                 emit: Optional[Callable[..., None]] = None) -> None:
        self.system = system
        self.config = config
        self.emit = emit
        # -- disposition ledger ----------------------------------------
        self.issued = 0
        self.counts: Dict[str, int] = {d: 0 for d in DISPOSITIONS}
        self._disposition: Dict[int, str] = {}
        self._outstanding: Set[int] = set()
        #: (message_id, first disposition, second disposition) triples —
        #: any entry is an accounting bug the checker turns into an
        #: ``admission-conservation`` violation.
        self.double_dispositions: List[Tuple[int, str, str]] = []
        # -- shedding / backpressure telemetry -------------------------
        self.shed_by_server: Dict[str, int] = {}
        self.shed_by_actor: Dict[int, int] = {}
        self.backpressure_waits = 0
        self.peak_mailbox_depth = 0
        # -- brownout --------------------------------------------------
        self._brownout: Dict[str, _BrownoutState] = {}
        self._drowning_announced: Set[str] = set()

    # -- disposition ledger --------------------------------------------

    def note_issued(self, message: Any) -> None:
        """Record a client message entering the system."""
        self.issued += 1
        self._outstanding.add(message.message_id)

    def _terminal(self, message: Any, kind: str) -> None:
        mid = message.message_id
        if mid not in self._outstanding and mid not in self._disposition:
            # Not a tracked client message (issued before attach, or an
            # actor-to-actor message) — nothing to account.
            return
        previous = self._disposition.get(mid)
        if previous is not None:
            self.double_dispositions.append((mid, previous, kind))
            return
        self._disposition[mid] = kind
        self._outstanding.discard(mid)
        self.counts[kind] += 1

    def note_consumed(self, message: Any) -> None:
        self._terminal(message, "consumed")

    def note_shed(self, message: Any, server_name: str,
                  actor_id: int, reason: str = "shed") -> None:
        """Record a mailbox drop.  Counts *all* sheds per actor/server;
        the disposition ledger only tracks client messages."""
        self.shed_by_server[server_name] = (
            self.shed_by_server.get(server_name, 0) + 1)
        self.shed_by_actor[actor_id] = (
            self.shed_by_actor.get(actor_id, 0) + 1)
        if message.is_client_call():
            self._terminal(message, reason)

    def note_rejected(self, message: Any) -> None:
        self._terminal(message, "rejected")

    def note_fabric_lost(self, message: Any) -> None:
        self._terminal(message, "fabric-lost")

    def note_no_target(self, message: Any) -> None:
        self._terminal(message, "no-target")

    def note_dead_target(self, message: Any) -> None:
        self._terminal(message, "dead-target")

    def note_crashed(self, message: Any) -> None:
        self._terminal(message, "crashed")

    def note_backpressure(self, message: Any) -> None:
        self.backpressure_waits += 1

    def note_mailbox_depth(self, depth: int) -> None:
        if depth > self.peak_mailbox_depth:
            self.peak_mailbox_depth = depth

    @property
    def outstanding_count(self) -> int:
        """Client messages issued but not yet at a terminal state
        (queued in some mailbox or in flight)."""
        return len(self._outstanding)

    def conservation_balance(self) -> Dict[str, int]:
        """The admission-conservation equation, as data.

        ``issued == sum(terminal counts) + outstanding`` must hold at
        every instant; the checker asserts it.
        """
        balance = dict(self.counts)
        balance["issued"] = self.issued
        balance["outstanding"] = self.outstanding_count
        return balance

    def total_shed(self) -> int:
        return sum(self.shed_by_server.values())

    # -- brownout state machine ----------------------------------------

    def _state(self, server_name: str) -> _BrownoutState:
        state = self._brownout.get(server_name)
        if state is None:
            state = self._brownout[server_name] = _BrownoutState()
        return state

    def note_lem_round(self, server: Any, cpu_perc: float,
                       now: float) -> bool:
        """Feed one LEM-round CPU sample into the hysteresis machine.

        Returns whether the server is browned out *after* this sample —
        the LEM uses the answer to decide whether to truncate the
        REPORT it is about to ship and stretch its next period.
        """
        config = self.config
        if not config.brownout_enabled:
            return False
        state = self._state(server.name)
        if not state.active:
            if cpu_perc >= config.brownout_enter_cpu_perc:
                state.above_rounds += 1
                if state.above_rounds >= config.brownout_enter_rounds:
                    state.active = True
                    state.entered_at = now
                    state.below_rounds = 0
                    if self.emit is not None:
                        self.emit("brownout-entered", server=server.name,
                                  cpu_perc=cpu_perc)
            else:
                state.above_rounds = 0
        else:
            if cpu_perc <= config.brownout_exit_cpu_perc:
                state.below_rounds += 1
                if state.below_rounds >= config.brownout_exit_rounds:
                    state.active = False
                    state.above_rounds = 0
                    state.entered_at = None
                    self._drowning_announced.discard(server.name)
                    if self.emit is not None:
                        self.emit("brownout-exited", server=server.name,
                                  cpu_perc=cpu_perc)
            else:
                state.below_rounds = 0
        return state.active

    def is_browned_out(self, server_name: str) -> bool:
        state = self._brownout.get(server_name)
        return state is not None and state.active

    def browned_out_servers(self) -> List[str]:
        return sorted(name for name, state in self._brownout.items()
                      if state.active)

    def note_drowning(self, server_name: str) -> bool:
        """Mark the drowning announcement for a server; returns True the
        first time per brownout episode so the detector emits once."""
        if server_name in self._drowning_announced:
            return False
        self._drowning_announced.add(server_name)
        return True

    def note_report_received(self, server_name: str) -> None:
        """A REPORT arrived — the server is slow, not silent."""
        self._drowning_announced.discard(server_name)

    def note_server_crashed(self, server_name: str) -> None:
        """Forget brownout state for a server that actually died."""
        self._brownout.pop(server_name, None)
        self._drowning_announced.discard(server_name)
