"""Asyncio actor runtime: real mailboxes, wall-clock time, live migration.

This is the live counterpart of :class:`repro.actors.ActorSystem`.  It
reuses the *entire* data model of the sim runtime — :class:`ActorRef`,
:class:`ActorRecord`, :class:`Directory`, :class:`Message`, and the
:class:`RuntimeHooks` profiling feed — but replaces simulated delivery
with per-actor :class:`asyncio.Queue` mailboxes drained by one
cooperative dispatch task per actor (classic actor semantics: one
message at a time, no locks).

Live migration is the same two-phase protocol as the simulator,
expressed in asyncio:

1. **prepare** — flag the record ``migrating`` and close a *gate*: the
   dispatch task finishes the in-flight handler and then parks before
   touching the next message.  New sends keep queueing; nothing is lost.
2. **transfer** — sleep proportionally to the actor's ``state_size_mb``
   (``transfer_ms_per_mb``), modelling state copy time on the wall
   clock.
3. **commit** — in one synchronous (and therefore, on an event loop,
   atomic) block: re-bind the mailbox to a fresh queue (draining any
   messages queued during the transfer, order preserved), move the
   memory ledger, flip the directory record, and open the gate.

The ``LiveActor`` base subclasses the sim ``Actor`` so one class
hierarchy serves both runtimes: ``describe_actor_class`` (EPL schema
extraction), ``property_refs`` (``in ref(...)`` conditions), and
``snapshot_state`` all work unchanged; only the handler-side primitives
(``compute``/``call``/``sleep``) become coroutines.
"""

from __future__ import annotations

import asyncio
import inspect
import itertools
from time import perf_counter
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Type

from ..actors.actor import Actor
from ..actors.directory import ActorRecord, Directory
from ..actors.hooks import RuntimeHooks
from ..actors.message import (CLIENT_KIND, DEFAULT_REPLY_BYTES, Message,
                              Overloaded)
from ..actors.refs import ActorRef
from ..runtime import RuntimeBackend
from .clock import LiveClock
from .servers import LiveServer

__all__ = ["LiveActor", "LiveActorSystem", "LiveBackend", "ActorGone"]

_STOP = object()
_REBIND = object()


class ActorGone(LookupError):
    """The target actor does not exist (never created, or destroyed)."""


class LiveActor(Actor):
    """Base class for actors hosted by :class:`LiveActorSystem`.

    Handlers are regular methods or coroutines.  The primitives return
    awaitables instead of sim waitables; ``tell`` stays synchronous
    (fire-and-forget enqueues immediately).
    """

    async def compute(self, cpu_ms: float) -> None:  # type: ignore[override]
        """Model ``cpu_ms`` of service time: charged to the hosting
        server's meter and to this actor's CPU profile, then slept on
        the wall clock."""
        await self._system._actor_compute(self, cpu_ms)

    async def call(self, ref: ActorRef, function: str,  # type: ignore[override]
                   *args: Any, size_bytes: Optional[float] = None) -> Any:
        return await self._system._actor_call(
            self, ref, function, args,
            size_bytes if size_bytes is not None else self.message_bytes)

    def tell(self, ref: ActorRef, function: str, *args: Any,
             size_bytes: Optional[float] = None) -> None:
        self._system._actor_tell(
            self, ref, function, args,
            size_bytes if size_bytes is not None else self.message_bytes)

    async def sleep(self, delay_ms: float) -> None:  # type: ignore[override]
        await asyncio.sleep(delay_ms / 1000.0)


class LiveActorSystem:
    """Hosts actors on logical servers sharing one asyncio event loop.

    Construct (and use) inside a running event loop: mailbox dispatch
    runs as one task per actor.
    """

    def __init__(self, clock: Optional[LiveClock] = None,
                 default_instance_type: str = "m5.large",
                 mailbox_capacity: Optional[int] = None,
                 transfer_ms_per_mb: float = 5.0) -> None:
        self.clock = clock or LiveClock()
        self.directory = Directory()
        self.servers: List[LiveServer] = []
        self.hooks: List[RuntimeHooks] = []
        self.default_instance_type = default_instance_type
        #: Bounded-mailbox overload protection: client sends beyond this
        #: depth are shed with a retriable ``Overloaded`` NACK (``None``
        #: disables).  Actor-to-actor sends are never shed, matching the
        #: sim runtime's disposition rules.
        self.mailbox_capacity = mailbox_capacity
        #: Wall-clock cost of the migration transfer phase per MB of
        #: actor state.
        self.transfer_ms_per_mb = transfer_ms_per_mb

        self._actor_ids = itertools.count(1)
        self._server_ids = itertools.count(1)
        self._mailboxes: Dict[int, asyncio.Queue] = {}
        self._tasks: Dict[int, asyncio.Task] = {}
        self._gates: Dict[int, asyncio.Event] = {}
        self._busy: Dict[int, bool] = {}
        self._idle_events: Dict[int, asyncio.Event] = {}

        self.messages_delivered = 0
        self.messages_shed = 0
        self.handler_errors = 0
        self.migrations_completed = 0
        self.migrations_refused = 0

        self.backend = LiveBackend(self)

    # -- hooks ---------------------------------------------------------

    def add_hooks(self, hooks: RuntimeHooks) -> None:
        self.hooks.append(hooks)

    def remove_hooks(self, hooks: RuntimeHooks) -> None:
        self.hooks.remove(hooks)

    # -- servers -------------------------------------------------------

    def add_server(self, instance_type: Optional[str] = None,
                   name: Optional[str] = None) -> LiveServer:
        server = LiveServer.of_type(
            self.clock, instance_type or self.default_instance_type,
            next(self._server_ids), name=name)
        self.servers.append(server)
        return server

    def running_servers(self) -> List[LiveServer]:
        return [s for s in self.servers if s.running]

    # -- actor lifecycle -----------------------------------------------

    def create_actor(self, cls: Type[LiveActor], *args: Any,
                     server: Optional[LiveServer] = None,
                     **kwargs: Any) -> ActorRef:
        """Place and start a new actor; returns its ref.

        Placement: the explicit ``server`` wins; otherwise the running
        server currently hosting the fewest actors (ties broken by
        server id, so placement is reproducible for a fixed call
        order).
        """
        if server is None:
            candidates = self.running_servers()
            if not candidates:
                raise RuntimeError("no running servers to place on")
            server = min(candidates,
                         key=lambda s: (len(self.directory.on_server(s)),
                                        s.server_id))
        elif not server.running:
            raise RuntimeError(f"server {server.name} is not running")

        instance = cls(*args, **kwargs)
        actor_id = next(self._actor_ids)
        ref = ActorRef(actor_id=actor_id, type_name=cls.__name__)
        instance.actor_id = actor_id
        instance.ref = ref
        instance._system = self
        record = ActorRecord(
            instance=instance, ref=ref, server=server,
            created_at=self.clock.now, last_placed_at=self.clock.now,
            spawn_args=args, spawn_kwargs=dict(kwargs))
        self.directory.register(record)
        server.allocate_memory(instance.state_size_mb)

        self._mailboxes[actor_id] = asyncio.Queue()
        self._busy[actor_id] = False
        self._tasks[actor_id] = asyncio.get_running_loop().create_task(
            self._dispatch(record), name=f"live-actor-{actor_id}")
        for hooks in self.hooks:
            hooks.on_actor_created(record)
        instance.on_start()
        return ref

    def destroy_actor(self, ref: ActorRef) -> None:
        record = self.directory.try_lookup(ref.actor_id)
        if record is None:
            return
        aid = ref.actor_id
        self.directory.unregister(aid)
        record.server.free_memory(record.instance.state_size_mb)
        mailbox = self._mailboxes.pop(aid, None)
        if mailbox is not None:
            mailbox.put_nowait((_STOP, None))
            self._drain_dead(mailbox)
        self._gates.pop(aid, None)
        self._busy.pop(aid, None)
        self._idle_events.pop(aid, None)
        for hooks in self.hooks:
            hooks.on_actor_destroyed(record)

    @staticmethod
    def _drain_dead(mailbox: asyncio.Queue) -> None:
        """Fail every message still queued behind a _STOP."""
        backlog = []
        while not mailbox.empty():
            backlog.append(mailbox.get_nowait())
        for item in backlog:
            message, reply = item
            if message is _STOP or message is _REBIND:
                mailbox.put_nowait(item)
                continue
            if reply is not None and not reply.done():
                reply.set_exception(ActorGone(
                    f"actor #{message.target_id} destroyed"))

    def actor_instance(self, ref: ActorRef) -> Actor:
        return self.directory.lookup(ref.actor_id).instance

    # -- sending -------------------------------------------------------

    def client_call(self, ref: ActorRef, function: str, *args: Any,
                    size_bytes: float = 512.0) -> "asyncio.Future[Any]":
        """External request: returns a future resolved with the reply.

        Overload shedding resolves the future with an
        :class:`Overloaded` value (not an exception) — same retriable
        NACK contract as the sim runtime.  A missing target fails the
        future with :class:`ActorGone`.
        """
        message = Message(
            target_id=ref.actor_id, function=function, args=args,
            caller_kind=CLIENT_KIND, caller_id=None,
            size_bytes=size_bytes, reply=None,
            reply_bytes=DEFAULT_REPLY_BYTES, sent_at=self.clock.now)
        return self._send(message, want_reply=True, src_record=None)

    async def _actor_call(self, actor: Actor, ref: ActorRef, function: str,
                          args: tuple, size_bytes: float) -> Any:
        src_record = self.directory.try_lookup(actor.actor_id)
        message = Message(
            target_id=ref.actor_id, function=function, args=args,
            caller_kind=actor.type_name, caller_id=actor.actor_id,
            size_bytes=size_bytes, reply=None, sent_at=self.clock.now)
        return await self._send(message, want_reply=True,
                                src_record=src_record)

    def _actor_tell(self, actor: Actor, ref: ActorRef, function: str,
                    args: tuple, size_bytes: float) -> None:
        src_record = self.directory.try_lookup(actor.actor_id)
        message = Message(
            target_id=ref.actor_id, function=function, args=args,
            caller_kind=actor.type_name, caller_id=actor.actor_id,
            size_bytes=size_bytes, reply=None, sent_at=self.clock.now)
        self._send(message, want_reply=False, src_record=src_record)

    def _send(self, message: Message, want_reply: bool,
              src_record: Optional[ActorRecord],
              ) -> Optional["asyncio.Future[Any]"]:
        loop = asyncio.get_running_loop()
        reply: Optional[asyncio.Future] = (loop.create_future()
                                           if want_reply else None)
        record = self.directory.try_lookup(message.target_id)
        if record is None:
            if reply is not None:
                reply.set_exception(ActorGone(
                    f"no actor #{message.target_id}"))
            return reply
        mailbox = self._mailboxes[message.target_id]
        if (self.mailbox_capacity is not None
                and message.caller_kind == CLIENT_KIND
                and mailbox.qsize() >= self.mailbox_capacity):
            self.messages_shed += 1
            for hooks in self.hooks:
                hooks.on_message_shed(record, message, "shed")
            if reply is not None:
                reply.set_result(Overloaded("shed"))
            return reply

        # Network accounting: bytes cross a "link" only between distinct
        # logical servers (or from an external client).
        if src_record is None or src_record.server is not record.server:
            if src_record is not None:
                src_record.server.note_net(message.size_bytes)
                for hooks in self.hooks:
                    hooks.on_bytes_sent(src_record, message.size_bytes)
            record.server.note_net(message.size_bytes)
            for hooks in self.hooks:
                hooks.on_bytes_received(record, message.size_bytes)

        self.messages_delivered += 1
        for hooks in self.hooks:
            hooks.on_message_delivered(record, message)
        mailbox.put_nowait((message, reply))
        return reply

    # -- dispatch ------------------------------------------------------

    async def _dispatch(self, record: ActorRecord) -> None:
        aid = record.ref.actor_id
        while True:
            mailbox = self._mailboxes.get(aid)
            if mailbox is None:
                return
            message, reply = await mailbox.get()
            if message is _STOP:
                return
            if message is _REBIND:
                # Migration re-bound the mailbox while we were blocked on
                # the stale queue; loop to pick up the fresh one.
                continue
            gate = self._gates.get(aid)
            if gate is not None:
                await gate.wait()
            self._busy[aid] = True
            try:
                await self._invoke(record, message, reply)
            finally:
                self._busy[aid] = False
                idle = self._idle_events.pop(aid, None)
                if idle is not None:
                    idle.set()

    async def _invoke(self, record: ActorRecord, message: Message,
                      reply: Optional["asyncio.Future[Any]"]) -> None:
        try:
            handler = getattr(record.instance, message.function)
            result = handler(*message.args)
            if inspect.isawaitable(result):
                result = await result
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.handler_errors += 1
            if reply is not None and not reply.done():
                reply.set_exception(exc)
            return
        if reply is not None and not reply.done():
            reply.set_result(result)

    async def _actor_compute(self, actor: Actor, cpu_ms: float) -> None:
        if cpu_ms < 0:
            raise ValueError(f"negative compute: {cpu_ms!r}")
        record = self.directory.try_lookup(actor.actor_id)
        if record is not None:
            record.server.note_busy(cpu_ms)
            for hooks in self.hooks:
                hooks.on_compute(record, cpu_ms)
        if cpu_ms > 0.0:
            await asyncio.sleep(cpu_ms / 1000.0)

    # -- migration -----------------------------------------------------

    async def migrate_actor(self, ref: ActorRef, target: LiveServer,
                            force: bool = False) -> bool:
        """Two-phase live migration; returns True when committed.

        Refusals (unknown actor, already migrating, pinned without
        ``force``, target not running, no-op move) return False without
        touching the actor.
        """
        record = self.directory.try_lookup(ref.actor_id)
        if (record is None or record.migrating
                or (record.pinned and not force)
                or not target.running or record.server is target):
            self.migrations_refused += 1
            return False
        aid = ref.actor_id
        record.migrating = True
        gate = asyncio.Event()  # closed until commit
        self._gates[aid] = gate
        source = record.server
        started = perf_counter()
        try:
            # PREPARE: wait out the in-flight handler (new messages keep
            # queueing behind the closed gate).
            while self._busy.get(aid):
                idle = self._idle_events.get(aid)
                if idle is None:
                    idle = asyncio.Event()
                    self._idle_events[aid] = idle
                await idle.wait()
            if self.directory.try_lookup(aid) is not record:
                return False  # destroyed while we waited
            # TRANSFER: state copy, charged on the wall clock.
            transfer_ms = (record.instance.state_size_mb
                           * self.transfer_ms_per_mb)
            if transfer_ms > 0.0:
                await asyncio.sleep(transfer_ms / 1000.0)
            if self.directory.try_lookup(aid) is not record:
                return False
            if not target.running:
                return False  # target died mid-transfer: abort, stay put
            # COMMIT: no awaits below — atomic on the event loop.
            old = self._mailboxes[aid]
            fresh: asyncio.Queue = asyncio.Queue()
            while not old.empty():
                fresh.put_nowait(old.get_nowait())
            self._mailboxes[aid] = fresh
            old.put_nowait((_REBIND, None))
            source.free_memory(record.instance.state_size_mb)
            target.allocate_memory(record.instance.state_size_mb)
            record.server = target
            record.last_placed_at = self.clock.now
            record.migrations += 1
            self.migrations_completed += 1
            record.instance.on_migrated(source, target)
            for hooks in self.hooks:
                hooks.on_actor_migrated(record, source, target)
            return True
        finally:
            record.migrating = False
            self._gates.pop(aid, None)
            gate.set()
            self.last_migration_wall_ms = (perf_counter() - started) * 1e3

    #: Wall-clock duration of the most recent migration attempt.
    last_migration_wall_ms: float = 0.0

    def pin(self, ref: ActorRef, pinned: bool = True) -> None:
        self.directory.lookup(ref.actor_id).pinned = pinned

    # -- queries -------------------------------------------------------

    def server_of(self, ref: ActorRef) -> LiveServer:
        return self.directory.lookup(ref.actor_id).server

    def mailbox_depth(self, actor_id: int) -> int:
        mailbox = self._mailboxes.get(actor_id)
        return 0 if mailbox is None else mailbox.qsize()

    def actors_on(self, server: LiveServer) -> List[ActorRecord]:
        return self.directory.on_server(server)

    async def quiesce(self, timeout_s: float = 5.0) -> bool:
        """Wait until every mailbox is empty and no handler is running."""
        deadline = perf_counter() + timeout_s
        while perf_counter() < deadline:
            if (all(q.empty() for q in self._mailboxes.values())
                    and not any(self._busy.values())):
                return True
            await asyncio.sleep(0.005)
        return False

    async def shutdown(self) -> None:
        """Stop every dispatch task (queued messages are abandoned)."""
        tasks = list(self._tasks.values())
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()
        for mailbox in self._mailboxes.values():
            self._drain_dead(mailbox)
        for server in self.servers:
            server.shutdown()


class LiveBackend(RuntimeBackend):
    """The :class:`RuntimeBackend` face of :class:`LiveActorSystem`."""

    name = "live"
    wall_clock = True

    def __init__(self, system: LiveActorSystem) -> None:
        self.system = system

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.system.clock.now

    def schedule(self, delay_ms: float, callback: Callable[..., Any],
                 *args: Any) -> None:
        asyncio.get_running_loop().call_later(
            delay_ms / 1000.0, callback, *args)

    def spawn(self, proc: Awaitable[Any],
              name: Optional[str] = None) -> "asyncio.Task[Any]":
        return asyncio.get_running_loop().create_task(proc, name=name)

    # -- control surface -----------------------------------------------

    def create_actor(self, cls: type, *args: Any, **kwargs: Any) -> ActorRef:
        return self.system.create_actor(cls, *args, **kwargs)

    def migrate_actor(self, ref: ActorRef, target: LiveServer,
                      force: bool = False) -> "asyncio.Task[bool]":
        return asyncio.get_running_loop().create_task(
            self.system.migrate_actor(ref, target, force=force),
            name=f"live-migrate-{ref.actor_id}")

    def pin(self, ref: ActorRef, pinned: bool = True) -> None:
        self.system.pin(ref, pinned)

    def resurrect_actor(self, tombstone: ActorRecord,
                        server: Optional[LiveServer] = None) -> None:
        raise NotImplementedError(
            "live backend has no crash/resurrect surface yet; "
            "see docs/live-runtime.md")

    # -- observation surface -------------------------------------------

    def actors_on(self, server: LiveServer) -> List[ActorRecord]:
        return self.system.actors_on(server)

    def mailbox_depth(self, actor_id: int) -> int:
        return self.system.mailbox_depth(actor_id)

    def server_of(self, ref: ActorRef) -> LiveServer:
        return self.system.server_of(ref)

    def servers(self) -> Sequence[LiveServer]:
        return list(self.system.servers)

    # -- profiling subscribers -----------------------------------------

    def add_hooks(self, hooks: RuntimeHooks) -> None:
        self.system.add_hooks(hooks)

    def remove_hooks(self, hooks: RuntimeHooks) -> None:
        self.system.remove_hooks(hooks)
