"""One-call live load test: boot app + front door + EMR, hammer, report.

Used by ``repro.cli loadtest`` (and the ``live-smoke`` CI job) and by
``benchmarks/test_live_latency.py`` so the two measure exactly the same
thing.  The run is phase-split around a *forced* migration: requests
scheduled before it report as ``1-before``, requests scheduled within
``during_s`` of it as ``2-during``, the rest as ``3-after`` — giving
p50/p95/p99 columns that show what a live migration costs the tail.

Everything runs in one process and one event loop (servers here are
placement domains, not machines), which is precisely what makes the
disposition ledger checkable: the front door accounts every request it
accepted, the load generator accounts every request it sent, and the
two books must balance to zero lost/unaccounted requests.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Optional

from .apps import build_live_app
from .emr import LiveElasticityManager, LiveEmrConfig
from .frontdoor import FrontDoor
from .loadgen import LoadGenerator, flash_crowd_arrivals, poisson_arrivals
from .system import LiveActorSystem

__all__ = ["run_live_loadtest", "live_loadtest"]


def _request_factory(app_name: str, app, rng_hot: float = 0.5):
    """Skewed request mix: half the traffic hits entity 0 (the hot one),
    the rest spreads uniformly — gives the EMR a real imbalance."""
    if app_name == "chatroom":
        count = len(app.rooms)

        def build(index: int, rng: random.Random):
            room = 0 if rng.random() < rng_hot else rng.randrange(count)
            if index % 50 == 49:  # occasional read in the mix
                return "GET", f"/chat/{room}/stats", b""
            return "POST", f"/chat/{room}/post", b'{"msg": "hi"}'
        return build

    count = len(app.folders)

    def build(index: int, rng: random.Random):
        folder = 0 if rng.random() < rng_hot else rng.randrange(count)
        if index % 50 == 49:
            return "GET", f"/meta/{folder}/stats", b""
        return "POST", f"/meta/{folder}/open", b""
    return build


async def run_live_loadtest(app_name: str = "chatroom",
                            rate_per_s: float = 2_000.0,
                            duration_s: float = 4.0,
                            servers: int = 2,
                            migrate_at_s: Optional[float] = None,
                            scale_out_at_s: Optional[float] = None,
                            during_s: float = 1.0,
                            emr: bool = True,
                            period_ms: float = 250.0,
                            mailbox_capacity: Optional[int] = None,
                            connections: int = 32,
                            flash_crowd: bool = False,
                            timeout_s: float = 30.0,
                            seed: int = 42,
                            app_kwargs: Optional[Dict[str, Any]] = None,
                            ) -> Dict[str, Any]:
    """Boot a live app behind the front door, load it, return the books.

    ``migrate_at_s`` forces a migration of the hot entity's actor to the
    least-loaded other server at that offset; ``scale_out_at_s`` adds a
    server and force-migrates the second entity onto it.  Both are
    *forced* (they bypass the EMR) so the phase split is deterministic
    even with the EMR disabled.
    """
    system = LiveActorSystem(mailbox_capacity=mailbox_capacity)
    for _ in range(max(1, servers)):
        system.add_server()
    app = build_live_app(app_name, system, **(app_kwargs or {}))
    await app.setup()

    front = FrontDoor(app.handle)
    await front.start()

    manager = None
    if emr:
        manager = LiveElasticityManager(
            system, policy=app.policy(),
            config=LiveEmrConfig(period_ms=period_ms))
        manager.start()

    rng = random.Random(seed)
    arrivals = poisson_arrivals(rate_per_s, duration_s, rng)
    if flash_crowd:
        arrivals += flash_crowd_arrivals(
            int(rate_per_s * 0.5), duration_s * 0.5, 0.25, rng)
        arrivals.sort()

    def phase_of(at_s: float) -> str:
        if migrate_at_s is None:
            return "all"
        if at_s < migrate_at_s:
            return "1-before"
        if at_s < migrate_at_s + during_s:
            return "2-during"
        return "3-after"

    migrations: Dict[str, Any] = {"forced": []}

    async def force_migration(at_s: float, entity_index: int) -> None:
        await asyncio.sleep(at_s)
        refs = app.rooms if app_name == "chatroom" else app.folders
        ref = refs[entity_index % len(refs)]
        source = system.server_of(ref)
        others = [s for s in system.running_servers() if s is not source]
        if not others:
            others = [system.add_server()]
        target = min(others, key=lambda s: (len(system.actors_on(s)),
                                            s.server_id))
        started = system.clock.now
        moved = await system.migrate_actor(ref, target, force=True)
        migrations["forced"].append({
            "entity": entity_index, "actor": ref.actor_id,
            "from": source.name, "to": target.name, "moved": moved,
            "at_ms": started,
            "wall_ms": round(system.last_migration_wall_ms, 3)})

    async def force_scale_out(at_s: float) -> None:
        await asyncio.sleep(at_s)
        server = system.add_server()
        migrations["scale_out"] = {"server": server.name,
                                   "at_ms": system.clock.now}
        await force_migration(0.0, 1)

    side_tasks = []
    if migrate_at_s is not None:
        side_tasks.append(asyncio.ensure_future(
            force_migration(migrate_at_s, 0)))
    if scale_out_at_s is not None:
        side_tasks.append(asyncio.ensure_future(
            force_scale_out(scale_out_at_s)))

    generator = LoadGenerator(
        front.host, front.port, arrivals,
        _request_factory(app_name, app),
        phase_of=phase_of, connections=connections,
        timeout_s=timeout_s, seed=seed + 1)
    report = await generator.run()

    if side_tasks:
        await asyncio.gather(*side_tasks)
    if manager is not None:
        await manager.stop()
    await system.quiesce(timeout_s=5.0)
    await front.stop()
    await system.shutdown()

    result: Dict[str, Any] = {
        "app": app_name,
        "requests": report.as_dict(),
        "ledger": front.ledger.as_dict(),
        "ledger_balanced": front.ledger.balanced(),
        "client_balanced": report.balanced(),
        "server_latency": front.recorder.summary(),
        "migrations": migrations,
        "runtime": {
            "messages_delivered": system.messages_delivered,
            "messages_shed": system.messages_shed,
            "handler_errors": system.handler_errors,
            "migrations_completed": system.migrations_completed,
            "migrations_refused": system.migrations_refused,
            "servers": [
                {"name": s.name, "running": s.running,
                 "actors": len(system.actors_on(s)),
                 "cpu_perc": round(s.cpu_percent(2_000.0), 2),
                 "mem_mb": round(s.memory_used_mb, 2)}
                for s in system.servers],
        },
    }
    if manager is not None:
        result["emr"] = {
            "rounds_run": manager.rounds_run,
            "migrations_started": manager.migrations_started,
            "lower_cpu": manager.lower_cpu,
            "upper_cpu": manager.upper_cpu,
            "events": [{"at_ms": round(e.at_ms, 1), "kind": e.kind,
                        **e.detail} for e in manager.events],
        }
    return result


def live_loadtest(**kwargs: Any) -> Dict[str, Any]:
    """Synchronous wrapper: ``asyncio.run`` the loadtest."""
    return asyncio.run(run_live_loadtest(**kwargs))
