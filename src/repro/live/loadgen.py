"""Open-loop HTTP load generation with phase-split tail latencies.

Arrival schedules are precomputed from a seeded RNG (Poisson process or
the flash-crowd burst reused from :mod:`repro.workload.schedules`), then
replayed against the wall clock: a pacer launches each request at its
scheduled instant *regardless of how previous requests are doing* —
open-loop, so a slow server cannot throttle its own measured load.

Latency is measured **from the scheduled arrival time**, not from when
the request actually got a connection — the standard defence against
coordinated omission: queueing delay caused by the system under test
counts against the system under test.

Each sample lands in a per-phase :class:`LatencyRecorder`, where the
phase is computed from the scheduled arrival (e.g. before / during /
after a forced migration), so one run yields comparable p50/p95/p99
columns across phases.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.profiling.latency import LatencyRecorder
from ..workload.schedules import flash_crowd_schedule

__all__ = ["poisson_arrivals", "flash_crowd_arrivals", "LoadReport",
           "LoadGenerator"]

#: Builds the i-th request: ``(index, rng) -> (method, path, body)``.
RequestFactory = Callable[[int, random.Random], Tuple[str, str, bytes]]


def poisson_arrivals(rate_per_s: float, duration_s: float,
                     rng: random.Random) -> List[float]:
    """Arrival offsets (seconds) of a Poisson process over a window."""
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= duration_s:
            return arrivals
        arrivals.append(t)


def flash_crowd_arrivals(num_requests: int, at_s: float, spread_s: float,
                         rng: random.Random) -> List[float]:
    """A burst of arrivals (seconds), via the workload helper."""
    return [t / 1000.0 for t in flash_crowd_schedule(
        num_requests, at_s * 1000.0, spread_s * 1000.0, rng)]


@dataclass
class LoadReport:
    """What an open-loop run produced."""

    sent: int = 0
    ok: int = 0
    http_errors: int = 0
    shed: int = 0
    transport_errors: int = 0
    timeouts: int = 0
    duration_s: float = 0.0
    by_phase: Dict[str, LatencyRecorder] = field(default_factory=dict)
    status_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return (self.ok + self.http_errors + self.shed
                + self.transport_errors + self.timeouts)

    def balanced(self) -> bool:
        """Every sent request reached exactly one client-side outcome."""
        return self.sent == self.completed

    @property
    def rps(self) -> float:
        return self.sent / self.duration_s if self.duration_s > 0 else 0.0

    def phase_summary(self) -> Dict[str, Dict[str, Any]]:
        return {phase: recorder.summary()
                for phase, recorder in sorted(self.by_phase.items())}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sent": self.sent, "ok": self.ok,
            "http_errors": self.http_errors, "shed": self.shed,
            "transport_errors": self.transport_errors,
            "timeouts": self.timeouts, "completed": self.completed,
            "balanced": self.balanced(),
            "duration_s": round(self.duration_s, 3),
            "rps": round(self.rps, 1),
            "status_counts": {str(k): v
                              for k, v in sorted(self.status_counts.items())},
            "phases": self.phase_summary(),
        }


class _Connection:
    """One keep-alive client connection."""

    __slots__ = ("reader", "writer")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    async def request(self, host: str, method: str, path: str,
                      body: bytes) -> int:
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n")
        self.writer.write(head.encode("ascii") + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed connection")
        parts = status_line.split(None, 2)
        status = int(parts[1])
        length = 0
        while True:
            line = await self.reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value)
        if length:
            await self.reader.readexactly(length)
        return status

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


class LoadGenerator:
    """Replay a precomputed arrival schedule against a front door."""

    def __init__(self, host: str, port: int, arrivals: Sequence[float],
                 request_factory: RequestFactory,
                 phase_of: Optional[Callable[[float], str]] = None,
                 connections: int = 32, timeout_s: float = 15.0,
                 seed: int = 1) -> None:
        self.host = host
        self.port = port
        self.arrivals = sorted(arrivals)
        self.request_factory = request_factory
        self.phase_of = phase_of or (lambda at_s: "all")
        self.max_connections = connections
        self.timeout_s = timeout_s
        self.rng = random.Random(seed)
        self._pool: "asyncio.Queue[_Connection]" = asyncio.Queue()
        self._opened = 0
        self._all_connections: List[_Connection] = []

    async def _acquire(self) -> _Connection:
        if self._pool.empty() and self._opened < self.max_connections:
            self._opened += 1
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port)
            except BaseException:
                self._opened -= 1  # free the slot we reserved
                raise
            conn = _Connection(reader, writer)
            self._all_connections.append(conn)
            return conn
        return await self._pool.get()

    async def _reopen(self) -> _Connection:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        conn = _Connection(reader, writer)
        self._all_connections.append(conn)
        return conn

    async def run(self) -> LoadReport:
        report = LoadReport()
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        tasks: List[asyncio.Task] = []

        async def one(index: int, at_s: float) -> None:
            method, path, body = self.request_factory(index, self.rng)
            phase = self.phase_of(at_s)
            recorder = report.by_phase.setdefault(
                phase, LatencyRecorder(capacity=65536))
            try:
                status = await asyncio.wait_for(
                    self._one_request(method, path, body),
                    timeout=self.timeout_s)
            except asyncio.TimeoutError:
                report.timeouts += 1
                return
            except (OSError, EOFError):
                report.transport_errors += 1
                return
            # Latency from *scheduled* arrival: includes connection-pool
            # wait and server queueing (no coordinated omission).
            recorder.record((loop.time() - (t0 + at_s)) * 1000.0)
            report.status_counts[status] = (
                report.status_counts.get(status, 0) + 1)
            if status == 503:
                report.shed += 1
            elif status >= 400:
                report.http_errors += 1
            else:
                report.ok += 1

        for index, at_s in enumerate(self.arrivals):
            delay = (t0 + at_s) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            report.sent += 1
            tasks.append(loop.create_task(one(index, at_s)))

        if tasks:
            await asyncio.gather(*tasks)
        report.duration_s = loop.time() - t0
        for conn in self._all_connections:
            conn.close()
        return report

    async def _one_request(self, method: str, path: str,
                           body: bytes) -> int:
        conn = await self._acquire()
        try:
            try:
                status = await conn.request(self.host, method, path, body)
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.IncompleteReadError):
                # Stale keep-alive connection: retry once on a fresh one.
                conn.close()
                conn = await self._reopen()
                status = await conn.request(self.host, method, path, body)
        except BaseException:
            # Timeout-cancel or hard failure: this connection's stream
            # state is unknown, so drop it and free its pool slot.
            conn.close()
            self._opened -= 1
            raise
        self._pool.put_nowait(conn)
        return status
