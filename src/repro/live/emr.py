"""Live elasticity manager: the EMR control loop on a wall clock.

This is deliberately a *small* EMR — one periodic asyncio task playing
the roles of LEM and GEM for a single-process fleet — but it is built
from the same parts as the simulated control plane:

* the **profiling runtime** is literally
  :class:`repro.core.profiling.ProfilingRuntime` (the EPR), subscribed
  through ``system.backend.add_hooks`` and fed by the live runtime's
  hook calls, with the numpy ``ArrayMeter`` backend when available;
* **policies** are compiled EPL (:func:`repro.core.compile_source`):
  ``pin`` actor rules are evaluated with the shared snapshot-based
  :func:`~repro.core.emr.evaluate.evaluate_rule`, and ``balance``
  resource rules supply the (lower, upper) CPU bounds through the
  shared :func:`~repro.core.emr.evaluate.extract_bounds`;
* **actuation** goes exclusively through the
  :class:`~repro.runtime.RuntimeBackend` surface (``actors_on``,
  ``mailbox_depth``, ``pin``, ``migrate_actor``), so this manager never
  reaches into live-runtime internals.

Balancing is the paper's greedy shape: when some server exceeds the
upper bound while another sits below the lower bound, move the hottest
movable actor from the hottest server to the coldest; when *every*
server is hot, scale out by adding a server first.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.emr.evaluate import EvaluationScope, evaluate_rule, extract_bounds
from ..core.epl.ast import Balance, Pin
from ..core.epl.compiler import CompiledPolicy
from ..core.profiling import ProfilingRuntime
from .system import LiveActorSystem

try:  # numpy-batched meters when available; bucketed fallback otherwise
    import numpy  # noqa: F401
    _DEFAULT_METER = "array"
except Exception:  # pragma: no cover - numpy is in the image
    _DEFAULT_METER = None

__all__ = ["LiveEmrConfig", "LiveElasticityManager"]


@dataclass
class LiveEmrConfig:
    """Knobs for the live control loop (all times wall-clock ms)."""

    period_ms: float = 250.0
    window_ms: float = 2_000.0
    #: Fallback CPU bounds when the policy has no balance rule.
    lower_cpu_perc: float = 30.0
    upper_cpu_perc: float = 75.0
    #: An actor placed more recently than this is not moved again.
    stability_window_ms: float = 1_000.0
    #: Scale out (add a server) when every running server is hot.
    scale_out: bool = True
    max_servers: int = 8
    meter_backend: Optional[str] = _DEFAULT_METER


@dataclass
class LiveEmrEvent:
    """One control decision, for observability and tests."""

    at_ms: float
    kind: str  # "migrate" | "scale-out" | "pin"
    detail: Dict[str, Any] = field(default_factory=dict)


class LiveElasticityManager:
    """Periodic elasticity control for a :class:`LiveActorSystem`."""

    def __init__(self, system: LiveActorSystem,
                 policy: Optional[CompiledPolicy] = None,
                 config: Optional[LiveEmrConfig] = None) -> None:
        self.system = system
        self.backend = system.backend
        self.policy = policy
        self.config = config or LiveEmrConfig()
        self.profiler = ProfilingRuntime(
            system.clock, window_ms=self.config.window_ms,
            incremental=True, meter_backend=self.config.meter_backend)
        self.running = False
        self.rounds_run = 0
        self.migrations_started = 0
        self.events: List[LiveEmrEvent] = []
        self._task: Optional[asyncio.Task] = None
        self._migration_tasks: List[asyncio.Task] = []

        lower = self.config.lower_cpu_perc
        upper = self.config.upper_cpu_perc
        self._balance_types: Optional[frozenset] = None
        if policy is not None:
            for rule in policy.resource_rules:
                for behavior in rule.behaviors:
                    if isinstance(behavior, Balance):
                        lower, upper = extract_bounds(
                            rule, behavior.resource,
                            default_lower=lower, default_upper=upper)
                        self._balance_types = frozenset(behavior.actor_types)
        self.lower_cpu = lower
        self.upper_cpu = upper

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.backend.add_hooks(self.profiler)
        self._task = self.backend.spawn(self._run(), name="live-emr")

    async def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for task in self._migration_tasks:
            if not task.done():
                await task
        if self.profiler in self.system.hooks:
            self.backend.remove_hooks(self.profiler)

    async def _run(self) -> None:
        while self.running:
            await asyncio.sleep(self.config.period_ms / 1000.0)
            try:
                self.run_round()
            except Exception:  # control loop must not die silently
                self.running = False
                raise

    # -- one control round ---------------------------------------------

    def run_round(self) -> None:
        """Snapshot the fleet, apply pin rules, then balance."""
        self.rounds_run += 1
        now = self.backend.now
        fleet = []
        all_actor_snaps = []
        for server in self.system.running_servers():
            records = self.backend.actors_on(server)
            actor_snaps = self.profiler.snapshot_actors(records)
            server_snap = self.profiler.snapshot_server(server, records)
            server_snap.mailbox_backlog = sum(
                self.backend.mailbox_depth(record.ref.actor_id)
                for record in records)
            fleet.append((server, server_snap, actor_snaps))
            all_actor_snaps.extend(actor_snaps)

        self._apply_pin_rules(fleet)
        self._balance(fleet, now)

    def _apply_pin_rules(self, fleet) -> None:
        if self.policy is None:
            return
        resolver = self._resolve_ref(fleet)
        for _server, server_snap, actor_snaps in fleet:
            scope = EvaluationScope(servers=[server_snap],
                                    actors=actor_snaps,
                                    resolve_ref=resolver)
            for rule in self.policy.actor_rules:
                pins = [b for b in rule.behaviors if isinstance(b, Pin)]
                if not pins:
                    continue
                for match in evaluate_rule(rule, scope):
                    for behavior in pins:
                        snap = match.bindings.get(behavior.target.var)
                        if snap is None or snap.pinned:
                            continue
                        self.backend.pin(snap.ref, True)
                        snap.pinned = True
                        self.events.append(LiveEmrEvent(
                            self.backend.now, "pin",
                            {"actor": snap.actor_id}))

    @staticmethod
    def _resolve_ref(fleet):
        by_id = {}
        for _server, _server_snap, actor_snaps in fleet:
            for snap in actor_snaps:
                by_id[snap.actor_id] = snap

        def resolve(ref):
            return by_id.get(ref.actor_id)
        return resolve

    def _balance(self, fleet, now: float) -> None:
        if len(fleet) == 0:
            return
        fleet = sorted(fleet, key=lambda item: item[1].cpu_perc)
        coldest_server, coldest_snap, _ = fleet[0]
        hottest_server, hottest_snap, hottest_actors = fleet[-1]
        if hottest_snap.cpu_perc <= self.upper_cpu:
            return

        if coldest_snap.cpu_perc >= self.lower_cpu:
            # Nobody has headroom: scale out, then move onto the new
            # server next round (its meters need a beat of uptime).
            if (self.config.scale_out
                    and len(self.system.servers) < self.config.max_servers):
                server = self.system.add_server()
                self.events.append(LiveEmrEvent(
                    now, "scale-out", {"server": server.name}))
            return

        candidates = [
            snap for snap in hottest_actors
            if not snap.pinned and not snap.migrating
            and now - snap.last_placed_at >= self.config.stability_window_ms
            and (self._balance_types is None
                 or snap.type_name in self._balance_types)]
        if not candidates:
            return
        mover = max(candidates, key=lambda snap: snap.cpu_perc)
        task = self.backend.migrate_actor(mover.ref, coldest_server)
        self._migration_tasks.append(task)
        self.migrations_started += 1
        self.events.append(LiveEmrEvent(
            now, "migrate",
            {"actor": mover.actor_id, "src": hottest_server.name,
             "dst": coldest_server.name, "cpu_perc": mover.cpu_perc}))
