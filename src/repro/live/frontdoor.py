"""HTTP/1.1 front door for live apps — stdlib asyncio only.

A deliberately minimal server: request line + headers + Content-Length
body, keep-alive by default, JSON responses.  Two pieces of accounting
wrap every request:

* a :class:`~repro.core.profiling.LatencyRecorder` samples wall-clock
  service latency (accept-to-flush, measured with ``perf_counter``);
* a :class:`RequestLedger` gives every request exactly one terminal
  disposition — the same conservation discipline as
  ``repro.overload``'s message ledger, lifted to the request level, so
  a load test can assert *zero lost or unaccounted requests*.

Dispositions map to status codes:

================  ======  =======================================
disposition       status  meaning
================  ======  =======================================
``answered``      2xx     the app handled it
``rejected``      404     no such route/entity (``KeyError``)
``shed``          503     overload NACK (:class:`Overloaded`)
``failed``        500     handler raised
``bad_request``   400     unparseable HTTP
================  ======  =======================================
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from ..actors.message import Overloaded
from ..core.profiling.latency import LatencyRecorder
from .system import ActorGone

__all__ = ["RequestLedger", "FrontDoor"]

#: An app's request handler: ``(method, path, body) -> (status, payload)``.
Router = Callable[[str, str, bytes], Awaitable[Tuple[int, Dict[str, Any]]]]

_REASONS = {
    "answered": 200,
    "rejected": 404,
    "shed": 503,
    "failed": 500,
    "bad_request": 400,
}


class RequestLedger:
    """Every request gets exactly one terminal disposition."""

    __slots__ = ("issued", "answered", "rejected", "shed", "failed",
                 "bad_request")

    def __init__(self) -> None:
        self.issued = 0
        self.answered = 0
        self.rejected = 0
        self.shed = 0
        self.failed = 0
        self.bad_request = 0

    def terminal_total(self) -> int:
        return (self.answered + self.rejected + self.shed + self.failed
                + self.bad_request)

    @property
    def outstanding(self) -> int:
        """Requests issued but not yet disposed (in flight)."""
        return self.issued - self.terminal_total()

    def balanced(self) -> bool:
        """True when nothing is in flight and nothing went unaccounted."""
        return self.outstanding == 0

    def as_dict(self) -> Dict[str, int]:
        return {"issued": self.issued, "answered": self.answered,
                "rejected": self.rejected, "shed": self.shed,
                "failed": self.failed, "bad_request": self.bad_request,
                "outstanding": self.outstanding}


class FrontDoor:
    """Serve one live app's router over HTTP."""

    def __init__(self, router: Router, host: str = "127.0.0.1",
                 port: int = 0,
                 recorder: Optional[LatencyRecorder] = None,
                 ledger: Optional[RequestLedger] = None) -> None:
        self.router = router
        self.host = host
        self.port = port
        self.recorder = recorder or LatencyRecorder(capacity=32768)
        self.ledger = ledger or RequestLedger()
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "FrontDoor":
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port)
        # Port 0 means "pick one"; expose what the OS chose.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # -- connection handling -------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break  # clean EOF between requests
                method, path, headers, body, parse_ok = request
                started = perf_counter()
                self.ledger.issued += 1
                status, payload, disposition = await self._dispatch(
                    method, path, body, parse_ok)
                keep_alive = (parse_ok and headers.get(
                    "connection", "keep-alive").lower() != "close")
                await self._write_response(writer, status, payload,
                                           keep_alive)
                self.recorder.record((perf_counter() - started) * 1000.0)
                setattr(self.ledger, disposition,
                        getattr(self.ledger, disposition) + 1)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass  # client went away between requests; nothing issued
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, method: str, path: str, body: bytes,
                        parse_ok: bool) -> Tuple[int, Dict, str]:
        if not parse_ok:
            return 400, {"error": "bad request"}, "bad_request"
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}, "answered"
        if method == "GET" and path == "/stats":
            return 200, {"ledger": self.ledger.as_dict(),
                         "latency": self.recorder.summary()}, "answered"
        try:
            status, payload = await self.router(method, path, body)
        except (KeyError, ActorGone) as exc:
            return 404, {"error": str(exc)}, "rejected"
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, "failed"
        if isinstance(payload, Overloaded) or (
                isinstance(payload, dict)
                and any(isinstance(v, Overloaded) for v in payload.values())):
            return 503, {"error": "overloaded", "retriable": True}, "shed"
        return status, payload, "answered"

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse one request; None on clean EOF; parse_ok=False on junk."""
        try:
            line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split(None, 2)
        except ValueError:
            return "GET", "/", {}, b"", False
        headers: Dict[str, str] = {}
        while True:
            header_line = await reader.readline()
            if not header_line or header_line in (b"\r\n", b"\n"):
                break
            name, _sep, value = header_line.decode(
                "latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length:
            try:
                body = await reader.readexactly(int(length))
            except (ValueError, asyncio.IncompleteReadError):
                return method, path, headers, b"", False
        return method, path.split("?", 1)[0], headers, body, True

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              payload: Any, keep_alive: bool) -> None:
        if not isinstance(payload, (dict, list)):
            payload = {"result": repr(payload)}
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        writer.write(head.encode("ascii") + body)
        await writer.drain()
