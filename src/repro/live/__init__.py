"""Wall-clock runtime: the second backend behind ``RuntimeBackend``.

Everything in this package runs on a real asyncio event loop against a
monotonic millisecond clock — same directory, same profiling runtime,
same EPL policies as the simulator, different physics.  See
``docs/live-runtime.md`` for the contract and what is (not)
deterministic here.
"""

from .apps import (CHATROOM_LIVE_POLICY, METADATA_LIVE_POLICY, LiveChatApp,
                   LiveChatRoom, LiveChatUser, LiveFile, LiveFolder,
                   LiveMetadataApp, build_live_app)
from .clock import LiveClock
from .emr import LiveElasticityManager, LiveEmrConfig
from .frontdoor import FrontDoor, RequestLedger
from .harness import live_loadtest, run_live_loadtest
from .loadgen import (LoadGenerator, LoadReport, flash_crowd_arrivals,
                      poisson_arrivals)
from .servers import LiveServer
from .system import LiveActor, LiveActorSystem, LiveBackend

__all__ = [
    "LiveClock", "LiveServer", "LiveActor", "LiveActorSystem",
    "LiveBackend", "LiveElasticityManager", "LiveEmrConfig",
    "FrontDoor", "RequestLedger",
    "LoadGenerator", "LoadReport", "poisson_arrivals",
    "flash_crowd_arrivals", "run_live_loadtest", "live_loadtest",
    "LiveChatApp", "LiveChatRoom", "LiveChatUser",
    "LiveMetadataApp", "LiveFolder", "LiveFile", "build_live_app",
    "CHATROOM_LIVE_POLICY", "METADATA_LIVE_POLICY",
]
