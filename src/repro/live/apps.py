"""Live applications: the chatroom and metadata-server apps as services.

Same actor programs as :mod:`repro.apps`, re-expressed on
:class:`LiveActor` so they run on the asyncio runtime, plus a tiny HTTP
route table each so the front door can expose them.  The EPL policies
compile against these classes through the unchanged
``describe_actor_class`` schema extraction — one more point where the
sim and live worlds share a contract.

Service times are declared through ``compute(cpu_ms)`` (charge-based,
like the sim): a chat post costs a base fee plus a per-member fan-out
fee, which is what makes a crowded room *hot* in the profiler and gives
the live EMR something real to balance.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..core import compile_source
from ..core.epl.compiler import CompiledPolicy
from .system import LiveActor, LiveActorSystem

__all__ = ["LiveChatRoom", "LiveChatUser", "LiveChatApp",
           "LiveFolder", "LiveFile", "LiveMetadataApp",
           "CHATROOM_LIVE_POLICY", "METADATA_LIVE_POLICY",
           "build_live_app"]

#: Balance hot rooms across servers on CPU pressure.
CHATROOM_LIVE_POLICY = """
server.cpu.perc > 75 or server.cpu.perc < 30 => balance({LiveChatRoom}, cpu);
"""

#: Balance hot folders; files follow implicitly through fan-out cost.
METADATA_LIVE_POLICY = """
server.cpu.perc > 75 or server.cpu.perc < 30 => balance({LiveFolder}, cpu);
"""

POST_BASE_CPU_MS = 0.05
POST_PER_MEMBER_CPU_MS = 0.02
JOIN_CPU_MS = 0.05
FILE_READ_CPU_MS = 0.10
FOLDER_OPEN_CPU_MS = 0.05


# ---------------------------------------------------------------------------
# chatroom
# ---------------------------------------------------------------------------

class LiveChatRoom(LiveActor):
    """A room fans every post out to its members."""

    members: tuple
    state_size_mb = 4.0

    def __init__(self) -> None:
        self.members: Tuple = ()
        self.posts = 0

    async def join(self, user_ref) -> int:
        await self.compute(JOIN_CPU_MS)
        if user_ref not in self.members:
            self.members = self.members + (user_ref,)
        return len(self.members)

    async def post(self, sender_id: int, size_bytes: float = 512.0) -> Dict:
        self.posts += 1
        await self.compute(
            POST_BASE_CPU_MS + POST_PER_MEMBER_CPU_MS * len(self.members))
        for member in self.members:
            self.tell(member, "receive", sender_id, size_bytes=size_bytes)
        return {"delivered": len(self.members)}

    def stats(self) -> Dict:
        return {"members": len(self.members), "posts": self.posts}


class LiveChatUser(LiveActor):
    """Receives fan-out; counts what it saw."""

    state_size_mb = 0.5

    def __init__(self) -> None:
        self.received = 0

    def receive(self, sender_id: int) -> None:
        self.received += 1


class LiveChatApp:
    """Chatroom service + HTTP routes.

    Routes:

    - ``POST /chat/<room>/post``  — body ignored; fans out to members
    - ``GET  /chat/<room>/stats`` — room stats
    - ``GET  /rooms``             — room index with placements
    """

    name = "chatroom"

    def __init__(self, system: LiveActorSystem, rooms: int = 8,
                 users_per_room: int = 8, seed: int = 7) -> None:
        self.system = system
        self.num_rooms = rooms
        self.users_per_room = users_per_room
        self.rng = random.Random(seed)
        self.rooms: List = []
        self.users: List = []

    @staticmethod
    def policy() -> CompiledPolicy:
        return compile_source(CHATROOM_LIVE_POLICY,
                              [LiveChatRoom, LiveChatUser])

    async def setup(self) -> None:
        for _ in range(self.num_rooms):
            self.rooms.append(self.system.create_actor(LiveChatRoom))
        for room in self.rooms:
            for _ in range(self.users_per_room):
                user = self.system.create_actor(LiveChatUser)
                self.users.append(user)
                await self.system.client_call(room, "join", user)

    def _room(self, token: str):
        try:
            index = int(token)
        except ValueError:
            raise KeyError(f"bad room id {token!r}")
        if not 0 <= index < len(self.rooms):
            raise KeyError(f"no room {index}")
        return self.rooms[index]

    async def handle(self, method: str, path: str,
                     body: bytes) -> Tuple[int, Dict[str, Any]]:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["rooms"]:
            return 200, {"rooms": [
                {"room": i, "actor": ref.actor_id,
                 "server": self.system.server_of(ref).name}
                for i, ref in enumerate(self.rooms)]}
        if len(parts) == 3 and parts[0] == "chat":
            room = self._room(parts[1])
            if method == "POST" and parts[2] == "post":
                sender = self.rng.randrange(10**6)
                result = await self.system.client_call(
                    room, "post", sender, size_bytes=float(len(body) or 512))
                return 200, result
            if method == "GET" and parts[2] == "stats":
                result = await self.system.client_call(room, "stats")
                return 200, result
        raise KeyError(f"{method} {path}")


# ---------------------------------------------------------------------------
# metadata server
# ---------------------------------------------------------------------------

class LiveFile(LiveActor):
    """One file's metadata."""

    state_size_mb = 0.5

    def __init__(self, size_kb: int = 4) -> None:
        self.size_kb = size_kb
        self.reads = 0

    async def read(self) -> Dict:
        self.reads += 1
        await self.compute(FILE_READ_CPU_MS)
        return {"size_kb": self.size_kb}


class LiveFolder(LiveActor):
    """Opening a folder reads every file in it (paper §3.3 shape)."""

    files: tuple
    state_size_mb = 2.0

    def __init__(self) -> None:
        self.files: Tuple = ()
        self.opens = 0

    def add_file(self, file_ref) -> int:
        self.files = self.files + (file_ref,)
        return len(self.files)

    async def open(self) -> Dict:
        self.opens += 1
        await self.compute(FOLDER_OPEN_CPU_MS)
        listings = []
        for file_ref in self.files:
            listings.append(await self.call(file_ref, "read"))
        return {"files": len(self.files), "listings": listings}

    def stats(self) -> Dict:
        return {"files": len(self.files), "opens": self.opens}


class LiveMetadataApp:
    """Metadata service + HTTP routes.

    Routes:

    - ``POST /meta/<folder>/open`` — open folder (reads all its files)
    - ``GET  /meta/<folder>/stats``
    - ``GET  /folders``
    """

    name = "metadata"

    def __init__(self, system: LiveActorSystem, folders: int = 8,
                 files_per_folder: int = 4, seed: int = 11) -> None:
        self.system = system
        self.num_folders = folders
        self.files_per_folder = files_per_folder
        self.rng = random.Random(seed)
        self.folders: List = []

    @staticmethod
    def policy() -> CompiledPolicy:
        return compile_source(METADATA_LIVE_POLICY, [LiveFolder, LiveFile])

    async def setup(self) -> None:
        for _ in range(self.num_folders):
            folder = self.system.create_actor(LiveFolder)
            self.folders.append(folder)
            server = self.system.server_of(folder)
            for _ in range(self.files_per_folder):
                file_ref = self.system.create_actor(
                    LiveFile, self.rng.choice((1, 4, 16)), server=server)
                await self.system.client_call(folder, "add_file", file_ref)

    def _folder(self, token: str):
        try:
            index = int(token)
        except ValueError:
            raise KeyError(f"bad folder id {token!r}")
        if not 0 <= index < len(self.folders):
            raise KeyError(f"no folder {index}")
        return self.folders[index]

    async def handle(self, method: str, path: str,
                     body: bytes) -> Tuple[int, Dict[str, Any]]:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["folders"]:
            return 200, {"folders": [
                {"folder": i, "actor": ref.actor_id,
                 "server": self.system.server_of(ref).name}
                for i, ref in enumerate(self.folders)]}
        if len(parts) == 3 and parts[0] == "meta":
            folder = self._folder(parts[1])
            if method == "POST" and parts[2] == "open":
                result = await self.system.client_call(folder, "open")
                # Trim listings: the HTTP reply should stay small.
                return 200, {"files": result["files"]}
            if method == "GET" and parts[2] == "stats":
                return 200, await self.system.client_call(folder, "stats")
        raise KeyError(f"{method} {path}")


APPS = {"chatroom": LiveChatApp, "metadata": LiveMetadataApp}


def build_live_app(name: str, system: LiveActorSystem, **kwargs):
    """Instantiate a live app by CLI name (``chatroom``/``metadata``)."""
    try:
        cls = APPS[name]
    except KeyError:
        raise ValueError(
            f"unknown live app {name!r}; expected one of {sorted(APPS)}")
    return cls(system, **kwargs)
