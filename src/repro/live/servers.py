"""Logical servers for the live runtime.

A :class:`LiveServer` is a placement domain, not an OS process: actors
"on" it share one asyncio event loop with every other server, but the
directory, the profiler, and the EMR treat it exactly like a simulated
:class:`~repro.cluster.Server` — it has an instance type, windowed CPU
and NIC meters, and a memory ledger, and it answers the same
``cpu_percent`` / ``memory_percent`` / ``net_percent`` questions.

CPU accounting is *charge-based*, mirroring the simulator: handlers
declare their cost through ``LiveActor.compute(cpu_ms)`` and those
charges land on the hosting server's meter.  Wall-clock interpreter
overhead is deliberately not attributed (see docs/live-runtime.md).
"""

from __future__ import annotations

from typing import Optional

from ..cluster.instances import INSTANCE_TYPES, InstanceType
from ..cluster.metrics import WindowedMeter
from .clock import LiveClock

__all__ = ["LiveServer"]


class LiveServer:
    """One placement domain in a live actor system."""

    def __init__(self, clock: LiveClock, itype: InstanceType,
                 server_id: int, name: Optional[str] = None) -> None:
        self.clock = clock
        self.itype = itype
        self.server_id = server_id
        self.name = name or f"live-{itype.name}-{server_id}"
        self.running = True
        self.started_at = clock.now
        self.memory_used_mb = 0.0
        self.cpu_meter = WindowedMeter(clock)
        self.net_meter = WindowedMeter(clock)

    @classmethod
    def of_type(cls, clock: LiveClock, type_name: str, server_id: int,
                name: Optional[str] = None) -> "LiveServer":
        return cls(clock, INSTANCE_TYPES[type_name], server_id, name=name)

    # -- metering ------------------------------------------------------

    def note_busy(self, busy_ms: float) -> None:
        """Charge ``busy_ms`` of CPU demand to this server's meter."""
        if busy_ms > 0.0:
            self.cpu_meter.add(busy_ms)

    def note_net(self, nbytes: float) -> None:
        if nbytes > 0.0:
            self.net_meter.add(nbytes)

    def execute(self, demand_ms: float, owner: object = None) -> None:
        """Meter-only counterpart of ``Server.execute``.

        The profiling runtime calls this to charge its own overhead;
        live handlers run on the event loop, so there is no run queue to
        join — the demand is just accounted.
        """
        self.note_busy(demand_ms)

    # -- memory --------------------------------------------------------

    def allocate_memory(self, mb: float) -> None:
        if mb < 0:
            raise ValueError(f"negative memory allocation: {mb!r}")
        self.memory_used_mb += mb

    def free_memory(self, mb: float) -> None:
        self.memory_used_mb = max(0.0, self.memory_used_mb - mb)

    # -- utilization percentages (simulated-Server-compatible) ---------

    def _effective_window(self, window_ms: float) -> float:
        uptime = self.clock.now - self.started_at
        if uptime <= 0:
            return 0.0
        return min(window_ms, uptime)

    def cpu_percent(self, window_ms: float) -> float:
        effective = self._effective_window(window_ms)
        if effective <= 0:
            return 0.0
        capacity = effective * self.itype.vcpus
        return min(100.0, 100.0 * self.cpu_meter.total(window_ms) / capacity)

    def memory_percent(self, window_ms: float = 0.0) -> float:
        return 100.0 * self.memory_used_mb / self.itype.memory_mb

    def net_percent(self, window_ms: float) -> float:
        effective = self._effective_window(window_ms)
        if effective <= 0:
            return 0.0
        capacity = effective * self.itype.net_bytes_per_ms()
        return min(100.0, 100.0 * self.net_meter.total(window_ms) / capacity)

    # -- lifecycle -----------------------------------------------------

    def shutdown(self) -> None:
        self.running = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LiveServer {self.name} running={self.running}>"
