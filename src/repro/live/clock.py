"""Monotonic wall clock with the simulator's ``now`` shape.

Every meter and profiler in the repo reads time as ``clock.now`` in
float milliseconds (that is the *only* thing ``WindowedMeter``,
``ArrayMeter``, and ``ProfilingRuntime`` need from the "simulator" they
are handed).  :class:`LiveClock` satisfies that protocol with
``time.monotonic()`` re-based to 0 at construction, so the entire
profiling stack runs unmodified against wall time.
"""

from __future__ import annotations

import time

__all__ = ["LiveClock"]


class LiveClock:
    """Milliseconds of wall time since this clock was created."""

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LiveClock(now={self.now:.1f}ms)"
