"""Piccolo-style partitioned-table computation (paper Table 1).

Piccolo programs are kernels running over distributed in-memory
key-value *tables*.  Workers repeatedly read from / accumulate into the
table partition assigned to them, so a worker should live next to its
table partition and worker CPU load should stay balanced (Table 1):

    server.cpu.perc > 80 or server.cpu.perc < 60 =>
        balance({PiccoloWorker}, cpu);
    Table(t) in ref(PiccoloWorker(w).table) => colocate(w, t);
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..actors import Actor, ActorRef, Client
from ..bench import TestBed
from ..sim import spawn

__all__ = ["PiccoloWorker", "Table", "PICCOLO_POLICY", "PiccoloJob",
           "build_piccolo", "run_piccolo_rounds"]

PICCOLO_POLICY = """
server.cpu.perc > 80 or server.cpu.perc < 60 =>
    balance({PiccoloWorker}, cpu);

Table(t) in ref(PiccoloWorker(w).table) => colocate(w, t);
"""

KERNEL_CPU_MS_PER_KEY = 0.05
TABLE_GET_CPU_MS = 0.02


class Table(Actor):
    """One partition of a distributed in-memory table."""

    state_size_mb = 16.0

    def __init__(self, partition_id: int, keys: int) -> None:
        self.partition_id = partition_id
        self.store: Dict[int, float] = {k: 0.0 for k in range(keys)}

    def get_block(self, start: int, count: int):
        yield self.compute(TABLE_GET_CPU_MS * count)
        return {k: self.store.get(k, 0.0)
                for k in range(start, start + count)}

    def accumulate(self, updates: Dict[int, float]):
        yield self.compute(TABLE_GET_CPU_MS * len(updates))
        for key, delta in updates.items():
            self.store[key] = self.store.get(key, 0.0) + delta
        return len(updates)


class PiccoloWorker(Actor):
    """Runs the kernel over its key range, reading/writing its table."""

    table: object
    state_size_mb = 2.0

    def __init__(self, worker_id: int, table: ActorRef,
                 keys_per_round: int,
                 work_scale: float = 1.0) -> None:
        self.worker_id = worker_id
        self.table = table
        self.keys_per_round = keys_per_round
        self.work_scale = work_scale
        self.rounds_done = 0

    def run_round(self, round_index: int):
        """One kernel round: fetch a block, compute, push updates."""
        block = yield self.call(self.table, "get_block", 0,
                                self.keys_per_round,
                                size_bytes=16.0 * self.keys_per_round)
        yield self.compute(KERNEL_CPU_MS_PER_KEY * self.keys_per_round
                           * self.work_scale)
        updates = {key: value + 1.0 for key, value in block.items()}
        yield self.call(self.table, "accumulate", updates,
                        size_bytes=16.0 * len(updates))
        self.rounds_done += 1
        return self.rounds_done


@dataclass
class PiccoloJob:
    bed: TestBed
    workers: List[ActorRef]
    tables: List[ActorRef]


def build_piccolo(bed: TestBed, num_workers: int = 8,
                  keys_per_partition: int = 256,
                  work_scales: Optional[List[float]] = None) -> PiccoloJob:
    """One worker per table partition; tables round-robin across servers,
    workers deliberately placed *away* from their tables so the colocate
    rule has work to do.  ``work_scales`` skews per-worker CPU cost."""
    tables = [
        bed.system.create_actor(
            Table, i, keys_per_partition,
            server=bed.servers[i % len(bed.servers)])
        for i in range(num_workers)]
    workers = []
    for i in range(num_workers):
        scale = work_scales[i] if work_scales else 1.0
        server = bed.servers[(i + 1) % len(bed.servers)]
        workers.append(bed.system.create_actor(
            PiccoloWorker, i, tables[i], keys_per_partition, scale,
            server=server))
    return PiccoloJob(bed=bed, workers=workers, tables=tables)


def run_piccolo_rounds(job: PiccoloJob, rounds: int) -> List[float]:
    """Drive synchronized kernel rounds; returns per-round times."""
    client = Client(job.bed.system, name="piccolo-driver")
    times: List[float] = []
    finished = []

    def driver():
        for round_index in range(rounds):
            started = job.bed.sim.now
            signals = [client.call(worker, "run_round", round_index)
                       for worker in job.workers]
            for signal in signals:
                yield signal
            times.append(job.bed.sim.now - started)
        finished.append(True)

    spawn(job.bed.sim, driver(), name="piccolo-driver")
    while not finished:
        if job.bed.sim.peek() is None:
            raise RuntimeError("piccolo driver stalled")
        job.bed.sim.run(until=job.bed.sim.now + 10_000.0)
    return times
