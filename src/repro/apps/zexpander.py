"""zExpander-style two-zone key-value cache (paper Table 1).

zExpander splits a KV cache into a small fast zone for hot keys and a
large compact zone for the long tail.  We model the fast zone as a
front IndexNode actor and the compact zone as CacheLeaf actors holding
compressed blocks.  Leaves are memory-heavy and benefit from spare
servers (Table 1: "put leaf nodes on idle servers"):

    server.mem.perc > 70 => reserve(CacheLeaf(l), mem);
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..actors import Actor, ActorRef
from ..bench import TestBed

__all__ = ["IndexNode", "CacheLeaf", "ZEXPANDER_POLICY", "ZExpanderCache",
           "build_zexpander"]

ZEXPANDER_POLICY = """
server.mem.perc > 70 => reserve(CacheLeaf(l), mem);
"""

INDEX_CPU_MS = 0.05
LEAF_CPU_MS = 0.3       # decompression on the compact zone


class CacheLeaf(Actor):
    """Compact-zone block: compressed cold entries, memory heavy."""

    state_size_mb = 256.0

    def __init__(self, leaf_id: int) -> None:
        self.leaf_id = leaf_id
        self.store: Dict[int, bytes] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: int):
        yield self.compute(LEAF_CPU_MS)
        value = self.store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: int, value):
        yield self.compute(LEAF_CPU_MS)
        self.store[key] = value
        return True


class IndexNode(Actor):
    """Fast zone: hot entries inline, cold keys routed to leaves."""

    leaves: list
    state_size_mb = 32.0

    def __init__(self, hot_capacity: int = 1024) -> None:
        self.leaves: List[ActorRef] = []
        self.hot: Dict[int, bytes] = {}
        self.hot_capacity = hot_capacity
        self.hot_hits = 0
        self.cold_reads = 0

    def _leaf_for(self, key: int) -> ActorRef:
        return self.leaves[key % len(self.leaves)]

    def get(self, key: int):
        yield self.compute(INDEX_CPU_MS)
        if key in self.hot:
            self.hot_hits += 1
            return self.hot[key]
        if not self.leaves:
            return None
        self.cold_reads += 1
        value = yield self.call(self._leaf_for(key), "get", key)
        return value

    def put(self, key: int, value, hot: bool = False):
        yield self.compute(INDEX_CPU_MS)
        if hot and len(self.hot) < self.hot_capacity:
            self.hot[key] = value
            return True
        if not self.leaves:
            self.hot[key] = value
            return True
        result = yield self.call(self._leaf_for(key), "put", key, value)
        return result


@dataclass
class ZExpanderCache:
    bed: TestBed
    index: ActorRef
    leaves: List[ActorRef]


def build_zexpander(bed: TestBed, num_leaves: int = 4) -> ZExpanderCache:
    """Index on the first server; leaves initially beside it (the state
    the reserve rule exists to fix)."""
    index = bed.system.create_actor(IndexNode, server=bed.servers[0])
    leaves = [bed.system.create_actor(CacheLeaf, i, server=bed.servers[0])
              for i in range(num_leaves)]
    bed.system.actor_instance(index).leaves.extend(leaves)
    return ZExpanderCache(bed=bed, index=index, leaves=leaves)
