"""Cassandra-style replicated table (paper Table 1).

Each table shard has a replication group of Replica actors.  For fault
isolation (and read throughput) replicas of the same shard must live on
*different* servers — Table 1's single rule, expressed through each
replica's reference to its peers:

    Replica(r2) in ref(Replica(r1).peers) => separate(r1, r2);
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..actors import Actor, ActorRef
from ..bench import TestBed

__all__ = ["Replica", "CASSANDRA_POLICY", "ReplicatedTable",
           "build_cassandra", "replica_spread"]

CASSANDRA_POLICY = """
Replica(r2) in ref(Replica(r1).peers) => separate(r1, r2);
"""

READ_CPU_MS = 0.2
WRITE_CPU_MS = 0.4


class Replica(Actor):
    """One replica of a table shard."""

    peers: list
    state_size_mb = 64.0

    def __init__(self, shard_id: int, replica_index: int) -> None:
        self.shard_id = shard_id
        self.replica_index = replica_index
        self.peers: List[ActorRef] = []
        self.store: Dict[int, object] = {}

    def read(self, key: int):
        yield self.compute(READ_CPU_MS)
        return self.store.get(key)

    def write(self, key: int, value):
        """Coordinator-style write: apply locally, then replicate to
        peers (fire-and-forget, eventual consistency)."""
        yield self.compute(WRITE_CPU_MS)
        self.store[key] = value
        for peer in self.peers:
            self.tell(peer, "apply_replicated", key, value)
        return True

    def apply_replicated(self, key: int, value):
        yield self.compute(WRITE_CPU_MS / 2)
        self.store[key] = value
        return True


@dataclass
class ReplicatedTable:
    bed: TestBed
    shards: List[List[ActorRef]]   # shards[i] = replica group

    def all_replicas(self) -> List[ActorRef]:
        return [ref for group in self.shards for ref in group]


def build_cassandra(bed: TestBed, num_shards: int = 4,
                    replication_factor: int = 3,
                    all_on_first: bool = True) -> ReplicatedTable:
    """Create shards with their replica groups.

    ``all_on_first`` starts every replica on server 0 — the worst-case
    layout the separate rule must untangle.
    """
    shards: List[List[ActorRef]] = []
    for shard in range(num_shards):
        group = []
        for index in range(replication_factor):
            server = bed.servers[0] if all_on_first else \
                bed.servers[(shard + index) % len(bed.servers)]
            group.append(bed.system.create_actor(
                Replica, shard, index, server=server))
        for ref in group:
            instance = bed.system.actor_instance(ref)
            instance.peers = [p for p in group
                              if p.actor_id != ref.actor_id]
        shards.append(group)
    return ReplicatedTable(bed=bed, shards=shards)


def replica_spread(table: ReplicatedTable) -> Dict[int, int]:
    """Distinct servers per shard's replica group (the quantity the
    separate rule maximizes; replication_factor means fully spread)."""
    spread = {}
    for shard_index, group in enumerate(table.shards):
        servers = {table.bed.system.server_of(ref).server_id
                   for ref in group}
        spread[shard_index] = len(servers)
    return spread
