"""E-Store: elastic partitioning for a distributed OLTP DBMS
(paper §3.3, §5.5, Fig. 9).

Root-level key partitions are actors; each root holds references to its
child partitions (range-partitioned descendants).  A read hits the root
(index lookup CPU) and then one random child (tuple fetch CPU), so a
root and its children must stay together or every transaction pays
remote hops.

PLASMA expresses E-Store's in-app elasticity as three rules:

    server.cpu.perc > 80 and
    client.call(Partition(p1).read).perc > 30 => reserve(p1, cpu);

    Partition(p2) in ref(Partition(p1).children) => colocate(p1, p2);

    server.cpu.perc < 50 => balance({Partition}, cpu);
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..actors import Actor, ActorRef, Client
from ..bench import TestBed, build_cluster, latency_curve
from ..core import ElasticityManager, EmrConfig, compile_source
from ..sim import Timeout, spawn
from ..workload import WeightedChoice, cascade_split

__all__ = ["Partition", "ESTORE_POLICY", "EStoreSetup", "build_estore",
           "run_estore_experiment", "EStoreResult"]

ESTORE_POLICY = """
server.cpu.perc > 80 and
client.call(Partition(p1).read).perc > 30 => reserve(p1, cpu);

Partition(p2) in ref(Partition(p1).children) => colocate(p1, p2);

server.cpu.perc < 50 => balance({Partition}, cpu);
"""

ROOT_CPU_MS = 0.25    # index lookup at the root partition
CHILD_CPU_MS = 0.55   # tuple fetch at the child partition


class Partition(Actor):
    """A key-range partition; roots hold refs to child partitions."""

    children: list
    state_size_mb = 2.0

    def __init__(self, level: int = 0) -> None:
        self.level = level
        self.children: List[ActorRef] = []
        self.reads = 0

    def read(self, key: int):
        """Root entry point: index lookup, then one child tuple fetch."""
        yield self.compute(ROOT_CPU_MS)
        self.reads += 1
        if not self.children:
            return {"key": key}
        child = self.children[key % len(self.children)]
        row = yield self.call(child, "fetch", key)
        return row

    def fetch(self, key: int):
        """Child partition: the actual tuple access."""
        yield self.compute(CHILD_CPU_MS)
        self.reads += 1
        return {"key": key, "value": key * 31}


@dataclass
class EStoreSetup:
    bed: TestBed
    roots: List[ActorRef]
    children: List[List[ActorRef]]
    picker: WeightedChoice


def build_estore(bed: TestBed, num_roots: int = 40,
                 children_per_root: int = 4,
                 skew_fraction: float = 0.35,
                 num_home_servers: Optional[int] = None) -> EStoreSetup:
    """Deploy roots round-robin with their children co-located (the
    initial range-partitioned layout), plus the cascade access skew.

    ``num_home_servers`` limits deployment to the first N servers so any
    extra standby instance starts empty, as in the paper's setup.
    """
    homes = bed.servers[:num_home_servers] if num_home_servers \
        else bed.servers
    roots: List[ActorRef] = []
    children: List[List[ActorRef]] = []
    for index in range(num_roots):
        server = homes[index % len(homes)]
        root = bed.system.create_actor(Partition, 0, server=server)
        kids = [bed.system.create_actor(Partition, 1, server=server)
                for _ in range(children_per_root)]
        instance = bed.system.actor_instance(root)
        instance.children.extend(kids)
        roots.append(root)
        children.append(kids)
    weights = cascade_split(num_roots, skew_fraction)
    picker = WeightedChoice(roots, weights,
                            bed.streams.stream("estore-root-pick"))
    return EStoreSetup(bed=bed, roots=roots, children=children,
                       picker=picker)


@dataclass
class EStoreResult:
    setup_name: str
    mean_before_ms: float
    mean_after_ms: float
    curve: List[Tuple[float, float]]
    migrations: int


def run_estore_experiment(mode: str = "plasma",
                          num_clients: int = 48,
                          duration_ms: float = 230_000.0,
                          period_ms: float = 40_000.0,
                          think_ms: float = 10.0,
                          seed: int = 13) -> EStoreResult:
    """Run one Fig. 9 configuration.

    ``mode``: ``plasma`` (the EPL rules), ``in-app`` (E-Store's own
    top-k% controller, :class:`repro.baselines.EStoreInApp`), or
    ``none``.  Elastic setups get one extra server, as in the paper.
    """
    if mode not in ("plasma", "in-app", "none"):
        raise ValueError(f"unknown mode {mode!r}")
    extra = 0 if mode == "none" else 1
    bed = build_cluster(4 + extra, instance_type="m1.small", seed=seed)
    setup = build_estore(bed, num_home_servers=4)

    manager = None
    if mode == "plasma":
        policy = compile_source(ESTORE_POLICY, [Partition])
        manager = ElasticityManager(
            bed.system, policy,
            EmrConfig(period_ms=period_ms, gem_wait_ms=1_000.0))
        manager.start()
    elif mode == "in-app":
        from ..baselines import EStoreInApp
        manager = EStoreInApp(bed.system, setup.roots, period_ms=period_ms)
        manager.start()

    clients = [Client(bed.system, name=f"c{i}") for i in range(num_clients)]
    rng = bed.streams.stream("estore-key-pick")

    def client_loop(client: Client):
        while bed.sim.now < duration_ms:
            root = setup.picker.pick()
            yield from client.timed_call(root, "read", rng.randrange(10_000))
            yield Timeout(bed.sim, think_ms)

    for client in clients:
        spawn(bed.sim, client_loop(client))
    bed.run(until_ms=duration_ms)

    migrations = manager.migrations_total() if manager else 0
    if manager is not None:
        manager.stop()
    curve = latency_curve(clients, bucket_ms=5_000.0)
    before = [lat for t, lat in curve if t < period_ms]
    after = [lat for t, lat in curve if t >= period_ms + 20_000.0]
    return EStoreResult(
        setup_name=mode,
        mean_before_ms=sum(before) / len(before) if before else 0.0,
        mean_after_ms=sum(after) / len(after) if after else 0.0,
        curve=curve, migrations=migrations)
