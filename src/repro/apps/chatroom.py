"""Online chat room microbenchmark (paper §5.2, Table 3).

Users — one actor each — exchange messages inside a room on a single
server.  The experiment measures the EPR's profiling overhead: the same
run with and without profiling attached, reported as normalized execution
time (e.g. 1.007 = 7‰ overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..actors import Actor, ActorRef, Client
from ..bench import build_cluster
from ..core.profiling import ProfilingRuntime
from ..sim import Timeout, spawn

__all__ = ["ChatRoom", "ChatUser", "ChatroomResult", "run_chatroom"]


class ChatRoom(Actor):
    """Fan-out hub: posting a message delivers it to every other member."""

    members: list

    def __init__(self) -> None:
        self.members: List[ActorRef] = []
        self.posts = 0

    def join(self, user: ActorRef):
        self.members.append(user)
        yield self.compute(0.05)
        return len(self.members)

    def post(self, sender_id: int, size: int):
        # Parsing/validation cost scales mildly with the payload.
        yield self.compute(0.2 + size / 4096.0)
        self.posts += 1
        for member in self.members:
            if member.actor_id != sender_id:
                self.tell(member, "receive", size,
                          size_bytes=float(size))
        return True


class ChatUser(Actor):
    """One chat participant."""

    room: object

    def __init__(self, room: ActorRef) -> None:
        self.room = room
        self.received = 0

    def receive(self, size: int):
        yield self.compute(0.05)
        self.received += 1
        return True


@dataclass
class ChatroomResult:
    """Outcome of one chat room run."""

    users: int
    instance_type: str
    profiled: bool
    messages_sent: int
    mean_latency_ms: float
    elapsed_ms: float


def run_chatroom(users: int, instance_type: str = "m1.small",
                 profiled: bool = False,
                 duration_ms: float = 60_000.0,
                 think_ms: float = 20.0,
                 message_bytes: int = 512,
                 profiling_overhead_cpu_ms: float = 0.0005,
                 seed: int = 7) -> ChatroomResult:
    """Run the chat room and report mean message latency.

    ``profiled`` attaches a :class:`ProfilingRuntime` with a per-message
    CPU charge; the vanilla run omits it, exactly the Table 3 comparison.
    """
    bed = build_cluster(1, instance_type=instance_type, seed=seed)
    server = bed.servers[0]
    if profiled:
        profiler = ProfilingRuntime(
            bed.sim, window_ms=duration_ms,
            overhead_cpu_ms=profiling_overhead_cpu_ms)
        bed.system.add_hooks(profiler)

    room = bed.system.create_actor(ChatRoom, server=server)
    user_refs = [
        bed.system.create_actor(ChatUser, room, server=server)
        for _ in range(users)]
    clients = [Client(bed.system, name=f"user{i}") for i in range(users)]

    def chat(client: Client, user_ref: ActorRef, index: int):
        yield client.call(room, "join", user_ref)
        while bed.sim.now < duration_ms:
            yield from client.timed_call(
                room, "post", user_ref.actor_id, message_bytes)
            yield Timeout(bed.sim, think_ms)

    for index, (client, user_ref) in enumerate(zip(clients, user_refs)):
        spawn(bed.sim, chat(client, user_ref, index))

    bed.run(until_ms=duration_ms + 1_000.0)

    latencies = [lat for client in clients
                 for _t, lat in client.latencies.samples]
    sent = sum(client.completed for client in clients)
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    return ChatroomResult(
        users=users, instance_type=instance_type, profiled=profiled,
        messages_sent=sent, mean_latency_ms=mean_latency,
        elapsed_ms=bed.sim.now)
