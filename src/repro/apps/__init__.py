"""The ten PLASMA applications of the paper's Table 1.

Each module defines the actor classes, the EPL elasticity policy from
the paper, a deployment builder, and (for the evaluated applications) an
experiment runner reproducing the corresponding figure.
"""

from .btree import BPlusTree, BTREE_POLICY, InnerNode, LeafNode, build_btree
from .cassandra import (CASSANDRA_POLICY, Replica, ReplicatedTable,
                        build_cassandra, replica_spread)
from .chatroom import ChatRoom, ChatUser, ChatroomResult, run_chatroom
from .estore import (ESTORE_POLICY, EStoreResult, EStoreSetup, Partition,
                     build_estore, run_estore_experiment)
from .halo import (HALO_INTERACTION_POLICY, HALO_RESOURCE_POLICY,
                   HaloDeployment, HaloGemResult, HaloResult, Player,
                   Router, Session, build_halo, run_halo_gem_experiment,
                   run_halo_interaction_experiment)
from .media import (MEDIA_ACTOR_CLASSES, MEDIA_POLICY, FrontEnd,
                    MediaResult, MediaService, MovieInfo, MovieReview,
                    ReviewChecker, ReviewEditor, UserInfo, UserReview,
                    VideoStream, build_media_service, run_media_experiment)
from .metadata import (METADATA_POLICY, File, Folder, MetadataResult,
                       MetadataSetup, build_metadata_server,
                       run_metadata_experiment)
from .pagerank import (PAGERANK_POLICY, IterationStats, PageRankDeployment,
                       PageRankWorker, build_pagerank, collect_ranks,
                       run_iterations)
from .piccolo import (PICCOLO_POLICY, PiccoloJob, PiccoloWorker, Table,
                      build_piccolo, run_piccolo_rounds)
from .zexpander import (ZEXPANDER_POLICY, CacheLeaf, IndexNode,
                        ZExpanderCache, build_zexpander)

__all__ = [
    "BPlusTree", "BTREE_POLICY", "InnerNode", "LeafNode", "build_btree",
    "CASSANDRA_POLICY", "Replica", "ReplicatedTable", "build_cassandra",
    "replica_spread",
    "ChatRoom", "ChatUser", "ChatroomResult", "run_chatroom",
    "ESTORE_POLICY", "EStoreResult", "EStoreSetup", "Partition",
    "build_estore", "run_estore_experiment",
    "HALO_INTERACTION_POLICY", "HALO_RESOURCE_POLICY", "HaloDeployment",
    "HaloGemResult", "HaloResult", "Player", "Router", "Session",
    "build_halo", "run_halo_gem_experiment",
    "run_halo_interaction_experiment",
    "MEDIA_ACTOR_CLASSES", "MEDIA_POLICY", "FrontEnd", "MediaResult",
    "MediaService", "MovieInfo", "MovieReview", "ReviewChecker",
    "ReviewEditor", "UserInfo", "UserReview", "VideoStream",
    "build_media_service", "run_media_experiment",
    "METADATA_POLICY", "File", "Folder", "MetadataResult", "MetadataSetup",
    "build_metadata_server", "run_metadata_experiment",
    "PAGERANK_POLICY", "IterationStats", "PageRankDeployment",
    "PageRankWorker", "build_pagerank", "collect_ranks", "run_iterations",
    "PICCOLO_POLICY", "PiccoloJob", "PiccoloWorker", "Table",
    "build_piccolo", "run_piccolo_rounds",
    "ZEXPANDER_POLICY", "CacheLeaf", "IndexNode", "ZExpanderCache",
    "build_zexpander",
]
