"""Halo 4 Presence Service (paper §3.3, §5.7, Fig. 11).

Game consoles send heartbeats to a randomly chosen Router actor, which
forwards them to the Session actor managing the player's game session,
which finally notifies the corresponding Player actor.  Sessions only
ever message their own players, so co-locating players with their
session eliminates the session→player remote hop:

    Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);

Fig. 11a/b compare this *interaction* rule against the semantics-free
frequency-colocation default rule.  Fig. 11c exercises the *resource*
rule variant (CPU-heavy routers balanced across a 64-server fleet) under
1, 2 and 4 GEMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..actors import Actor, ActorRef, Client
from ..bench import TestBed, build_cluster, latency_curve
from ..core import ElasticityManager, EmrConfig, compile_source
from ..sim import Timeout, spawn
from ..workload import round_join_schedule

__all__ = ["Router", "Session", "Player", "HALO_INTERACTION_POLICY",
           "HALO_RESOURCE_POLICY", "HaloDeployment", "build_halo",
           "run_halo_interaction_experiment", "run_halo_gem_experiment",
           "HaloResult", "HaloGemResult"]

HALO_INTERACTION_POLICY = """
Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);
"""

HALO_RESOURCE_POLICY = """
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Router}, cpu);
"""

SESSION_CPU_MS = 0.2
PLAYER_CPU_MS = 0.1


class Router(Actor):
    """Decrypts (optionally) and forwards heartbeats to sessions."""

    def __init__(self, decrypt_cpu_ms: float = 0.0) -> None:
        self.decrypt_cpu_ms = decrypt_cpu_ms
        self.routed = 0

    def route(self, session: ActorRef, player: ActorRef):
        if self.decrypt_cpu_ms > 0:
            yield self.compute(self.decrypt_cpu_ms)
        self.routed += 1
        ack = yield self.call(session, "forward", player)
        return ack


class Session(Actor):
    """Manages one game session; messages only its own players."""

    players: list

    def __init__(self) -> None:
        self.players: List[ActorRef] = []
        self.heartbeats = 0

    def add_player(self, player: ActorRef):
        self.players.append(player)
        return len(self.players)

    def remove_player(self, player: ActorRef):
        self.players = [p for p in self.players
                        if p.actor_id != player.actor_id]
        return len(self.players)

    def forward(self, player: ActorRef):
        yield self.compute(SESSION_CPU_MS)
        self.heartbeats += 1
        alive = yield self.call(player, "beat")
        return alive


class Player(Actor):
    """Per-console liveness record."""

    def __init__(self) -> None:
        self.beats = 0

    def beat(self):
        yield self.compute(PLAYER_CPU_MS)
        self.beats += 1
        return True


@dataclass
class HaloDeployment:
    bed: TestBed
    routers: List[ActorRef]
    sessions: List[ActorRef]


def build_halo(bed: TestBed, num_routers: int = 8, num_sessions: int = 8,
               router_cpu_ms: float = 0.0,
               routers_on_first: Optional[int] = None) -> HaloDeployment:
    """Deploy routers and sessions.

    Default layout (Fig. 11a): one router + one session per server.
    ``routers_on_first`` spreads the routers over only the first N
    servers (Fig. 11c's 32 routers on 8 of 64 servers).
    """
    routers: List[ActorRef] = []
    sessions: List[ActorRef] = []
    for index in range(num_sessions):
        server = bed.servers[index % len(bed.servers)]
        sessions.append(bed.system.create_actor(Session, server=server))
    router_homes = (bed.servers[:routers_on_first]
                    if routers_on_first else bed.servers)
    for index in range(num_routers):
        server = router_homes[index % len(router_homes)]
        routers.append(bed.system.create_actor(
            Router, router_cpu_ms, server=server))
    return HaloDeployment(bed=bed, routers=routers, sessions=sessions)


@dataclass
class HaloResult:
    """Fig. 11a/b outcome."""

    mode: str
    curve: List[Tuple[float, float]]
    per_client: Dict[str, List[Tuple[float, float]]]
    migrations: int
    mean_latency_ms: float


def run_halo_interaction_experiment(mode: str = "inter-rule",
                                    num_clients: int = 32,
                                    rounds: int = 4,
                                    round_ms: float = 180_000.0,
                                    period_ms: float = 70_000.0,
                                    heartbeat_ms: float = 300.0,
                                    seed: int = 31) -> HaloResult:
    """Fig. 11a/b: clients join in rounds; heartbeats flow via routers.

    ``mode``: ``inter-rule`` (PLASMA's colocate-by-reference rule, with
    rule-aware placement of new Player actors next to their session) or
    ``def-rule`` (random placement + frequency colocation).
    """
    if mode not in ("inter-rule", "def-rule"):
        raise ValueError(f"unknown mode {mode!r}")
    bed = build_cluster(8, instance_type="m1.small", seed=seed)
    deployment = build_halo(bed, num_routers=8, num_sessions=8)

    if mode == "inter-rule":
        policy = compile_source(HALO_INTERACTION_POLICY,
                                [Router, Session, Player])
        manager = ElasticityManager(bed.system, policy, EmrConfig(
            period_ms=period_ms, gem_wait_ms=1_000.0))
        manager.start()
    else:
        from ..baselines import DefaultRuleManager
        manager = DefaultRuleManager(
            bed.system, period_ms=period_ms, migrate_hot=False,
            colocate_frequent=True)
        manager.start()

    joins = round_join_schedule(num_clients, rounds, round_ms,
                                bed.streams.stream("halo-joins"))
    clients = [Client(bed.system, name=f"c{i}")
               for i in range(num_clients)]
    session_rng = bed.streams.stream("halo-session-pick")
    router_rng = bed.streams.stream("halo-router-pick")
    duration_ms = rounds * round_ms + 120_000.0

    def console(index: int, join_ms: float):
        yield Timeout(bed.sim, join_ms)
        session = deployment.sessions[
            session_rng.randrange(len(deployment.sessions))]
        player = bed.system.create_actor(Player, related=session)
        instance = bed.system.actor_instance(session)
        instance.players.append(player)
        client = clients[index]
        while bed.sim.now < duration_ms:
            router = deployment.routers[
                router_rng.randrange(len(deployment.routers))]
            yield from client.timed_call(router, "route", session, player)
            yield Timeout(bed.sim, heartbeat_ms)

    for index, join_ms in enumerate(joins):
        spawn(bed.sim, console(index, join_ms))
    bed.run(until_ms=duration_ms)
    migrations = manager.migrations_total()
    manager.stop()

    curve = latency_curve(clients, bucket_ms=10_000.0)
    per_client = {client.name: client.latency_samples()
                  for client in clients}
    latencies = [lat for _t, lat in curve]
    return HaloResult(
        mode=mode, curve=curve, per_client=per_client,
        migrations=migrations,
        mean_latency_ms=sum(latencies) / len(latencies)
        if latencies else 0.0)


@dataclass
class HaloGemResult:
    """Fig. 11c outcome for one GEM count."""

    gem_count: int
    curve: List[Tuple[float, float]]
    migrations: int
    settle_latency_ms: float


def run_halo_gem_experiment(gem_count: int = 1,
                            num_servers: int = 64,
                            num_sessions: int = 64,
                            num_routers: int = 32,
                            num_clients: int = 128,
                            period_ms: float = 80_000.0,
                            router_cpu_ms: float = 1.2,
                            heartbeat_ms: float = 150.0,
                            duration_ms: float = 800_000.0,
                            routers_on_first: int = 8,
                            seed: int = 37) -> HaloGemResult:
    """Fig. 11c: CPU-heavy routers crowded on 8 of 64 servers; the
    resource rule spreads them.  Vary the number of GEMs."""
    bed = build_cluster(num_servers, instance_type="m1.small", seed=seed)
    deployment = build_halo(bed, num_routers=num_routers,
                            num_sessions=num_sessions,
                            router_cpu_ms=router_cpu_ms,
                            routers_on_first=routers_on_first)
    policy = compile_source(HALO_RESOURCE_POLICY,
                            [Router, Session, Player])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=period_ms, gem_wait_ms=2_000.0, gem_count=gem_count))
    manager.start()

    clients = [Client(bed.system, name=f"c{i}")
               for i in range(num_clients)]
    session_rng = bed.streams.stream("halo-session-pick")
    router_rng = bed.streams.stream("halo-router-pick")
    join_rng = bed.streams.stream("halo-gem-joins")
    join_spread_ms = min(240_000.0, duration_ms * 0.2)

    def console(index: int):
        yield Timeout(bed.sim, join_rng.random() * join_spread_ms)
        session = deployment.sessions[
            session_rng.randrange(len(deployment.sessions))]
        player = bed.system.create_actor(Player, related=session)
        bed.system.actor_instance(session).players.append(player)
        client = clients[index]
        while bed.sim.now < duration_ms:
            router = deployment.routers[
                router_rng.randrange(len(deployment.routers))]
            yield from client.timed_call(router, "route", session, player)
            yield Timeout(bed.sim, heartbeat_ms)

    for index in range(num_clients):
        spawn(bed.sim, console(index))
    bed.run(until_ms=duration_ms)
    migrations = manager.migrations_total()
    manager.stop()

    curve = latency_curve(clients, bucket_ms=20_000.0)
    tail = [lat for t, lat in curve if t >= duration_ms * 0.7]
    return HaloGemResult(
        gem_count=gem_count, curve=curve, migrations=migrations,
        settle_latency_ms=sum(tail) / len(tail) if tail else 0.0)
