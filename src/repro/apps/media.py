"""Media Service microservice application (paper §3.3, §5.6, Fig. 10).

Eight interdependent actor types serve two request flows:

- **watch**: client → FrontEnd → MovieInfo (catalog lookup) →
  VideoStream (CPU-heavy, latency-sensitive) → UserInfo (the stream
  keeps updating the user's watching history);
- **review**: client → FrontEnd → ReviewEditor → UserReview (the editor
  updates the user's review) + ReviewChecker (CPU-heavy validation) +
  MovieReview (memory-heavy per-genre review store).

UserInfo and UserReview actors serve one client each; every other type
serves two clients (actors are created on demand as clients join).
Clients join and leave in normal-distributed waves; PLASMA's six rules
(paper §3.3) plus fleet scale-out/in track the wave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..actors import Actor, ActorRef, Client
from ..bench import TestBed, build_cluster, latency_curve
from ..cluster import GaugeSeries
from ..core import ElasticityManager, EmrConfig, compile_source
from ..sim import Timeout, spawn
from ..workload import normal_wave_schedule

__all__ = ["FrontEnd", "VideoStream", "UserInfo", "MovieInfo",
           "ReviewEditor", "UserReview", "ReviewChecker", "MovieReview",
           "MEDIA_POLICY", "MEDIA_ACTOR_CLASSES", "MediaService",
           "build_media_service", "run_media_experiment", "MediaResult"]

MEDIA_POLICY = """
server.net.perc > 80 or server.net.perc < 60 =>
    balance({FrontEnd}, net);

server.cpu.perc > 50 => reserve(VideoStream(v), cpu);

VideoStream(v).call(UserInfo(u).track).count > 0 =>
    pin(v); colocate(v, u);

ReviewEditor(r).call(UserReview(u).update).count > 0 =>
    pin(r); colocate(r, u);

true => pin(MovieReview(m));

server.cpu.perc > 90 or server.cpu.perc < 70 =>
    balance({ReviewChecker}, cpu);
"""

STREAM_CPU_MS = 6.0
CHECK_CPU_MS = 5.0
EDIT_CPU_MS = 0.3
FRONTEND_CPU_MS = 0.15
WATCH_RESPONSE_BYTES = 48_000.0   # the FrontEnd relays a media chunk


class FrontEnd(Actor):
    """Service entry point; network-intensive relay."""

    state_size_mb = 1.0

    def __init__(self, catalog: ActorRef) -> None:
        self.catalog = catalog
        self.requests = 0

    def watch(self, stream: ActorRef, user: ActorRef, movie_id: int):
        yield self.compute(FRONTEND_CPU_MS)
        self.requests += 1
        info = yield self.call(self.catalog, "lookup", movie_id)
        chunk = yield self.call(stream, "stream", user, movie_id,
                                size_bytes=1024.0)
        return {"info": info, "chunk": chunk}

    def review(self, editor: ActorRef, user_review: ActorRef,
               movie_id: int, text_len: int):
        yield self.compute(FRONTEND_CPU_MS)
        self.requests += 1
        result = yield self.call(editor, "edit", user_review, movie_id,
                                 text_len)
        return result


class MovieInfo(Actor):
    """Catalog metadata."""

    def lookup(self, movie_id: int):
        yield self.compute(0.1)
        return {"movie": movie_id, "title": f"movie-{movie_id}"}


class VideoStream(Actor):
    """Streams movie chunks; CPU-intensive and latency-sensitive."""

    state_size_mb = 4.0

    def __init__(self) -> None:
        self.chunks_streamed = 0

    def stream(self, user: ActorRef, movie_id: int):
        yield self.compute(STREAM_CPU_MS)
        self.chunks_streamed += 1
        self.tell(user, "track", movie_id, size_bytes=128.0)
        return WATCH_RESPONSE_BYTES  # the FrontEnd relays this chunk


class UserInfo(Actor):
    """Per-user profile and watching history."""

    def __init__(self) -> None:
        self.history: List[int] = []

    def track(self, movie_id: int):
        yield self.compute(0.05)
        self.history.append(movie_id)
        return len(self.history)


class ReviewEditor(Actor):
    """Handles review read/write requests for two users."""

    def __init__(self, checker: ActorRef, store: ActorRef) -> None:
        self.checker = checker
        self.store = store
        self.edits = 0

    def edit(self, user_review: ActorRef, movie_id: int, text_len: int):
        yield self.compute(EDIT_CPU_MS)
        self.edits += 1
        yield self.call(user_review, "update", movie_id, text_len)
        verdict = yield self.call(self.checker, "check", text_len)
        if verdict:
            self.tell(self.store, "publish", movie_id, text_len,
                      size_bytes=float(text_len))
        return verdict


class UserReview(Actor):
    """Per-user review history."""

    def __init__(self) -> None:
        self.reviews: List[Tuple[int, int]] = []

    def update(self, movie_id: int, text_len: int):
        yield self.compute(0.05)
        self.reviews.append((movie_id, text_len))
        return len(self.reviews)


class ReviewChecker(Actor):
    """CPU-intensive review moderation."""

    def __init__(self) -> None:
        self.checked = 0

    def check(self, text_len: int):
        yield self.compute(CHECK_CPU_MS)
        self.checked += 1
        return True


class MovieReview(Actor):
    """Per-genre review store: large, memory-intensive, never migrated."""

    state_size_mb = 512.0

    def __init__(self, genre: int = 0) -> None:
        self.genre = genre
        self.published = 0

    def publish(self, movie_id: int, text_len: int):
        yield self.compute(0.05)
        self.published += 1
        return self.published


MEDIA_ACTOR_CLASSES = [FrontEnd, MovieInfo, VideoStream, UserInfo,
                       ReviewEditor, UserReview, ReviewChecker, MovieReview]


@dataclass
class _ClientActors:
    frontend: ActorRef
    stream: ActorRef
    user_info: ActorRef
    editor: ActorRef
    user_review: ActorRef


class MediaService:
    """Deployment manager: creates actors on demand as clients join.

    Shared actors (FrontEnd, VideoStream, ReviewEditor, ReviewChecker)
    serve two clients each; UserInfo/UserReview are per client.
    """

    def __init__(self, bed: TestBed, num_genres: int = 8) -> None:
        self.bed = bed
        self.catalog = bed.system.create_actor(MovieInfo)
        self.genres = [bed.system.create_actor(MovieReview, g)
                       for g in range(num_genres)]
        self._assignments: Dict[int, _ClientActors] = {}
        self._shared_pool: Optional[Tuple[ActorRef, ActorRef, ActorRef]] = None
        self._joined = 0

    def client_joined(self, client_index: int) -> _ClientActors:
        """Allocate (or share) the actor set for a joining client."""
        system = self.bed.system
        if self._shared_pool is None:
            checker = system.create_actor(ReviewChecker)
            frontend = system.create_actor(FrontEnd, self.catalog)
            stream = system.create_actor(VideoStream)
            editor = system.create_actor(
                ReviewEditor, checker,
                self.genres[client_index % len(self.genres)])
            self._shared_pool = (frontend, stream, editor)
        else:
            frontend, stream, editor = self._shared_pool
            self._shared_pool = None
        user_info = system.create_actor(UserInfo, related=stream)
        user_review = system.create_actor(UserReview, related=editor)
        actors = _ClientActors(frontend=frontend, stream=stream,
                               user_info=user_info, editor=editor,
                               user_review=user_review)
        self._assignments[client_index] = actors
        self._joined += 1
        return actors

    def client_left(self, client_index: int) -> None:
        actors = self._assignments.pop(client_index, None)
        if actors is None:
            return
        system = self.bed.system
        system.destroy_actor(actors.user_info)
        system.destroy_actor(actors.user_review)
        # Shared actors are destroyed when their last client leaves.
        still_used = {a.frontend.actor_id
                      for a in self._assignments.values()}
        if actors.frontend.actor_id not in still_used:
            system.destroy_actor(actors.frontend)
            system.destroy_actor(actors.stream)
            system.destroy_actor(actors.editor)
        if self._shared_pool and \
                self._shared_pool[0].actor_id == actors.frontend.actor_id:
            self._shared_pool = None

    def active_clients(self) -> int:
        return len(self._assignments)


def build_media_service(bed: TestBed) -> MediaService:
    """Stand up the Media Service's static actors on ``bed``."""
    return MediaService(bed)


@dataclass
class MediaResult:
    """Fig. 10 outcome for one elasticity period."""

    period_ms: float
    latency_curve: List[Tuple[float, float]]
    server_curve: List[Tuple[float, float]]
    client_curve: List[Tuple[float, float]]
    peak_servers: int
    final_servers: int
    mean_latency_ms: float
    migrations: int


def run_media_experiment(period_ms: float = 60_000.0,
                         num_clients: int = 128,
                         initial_servers: int = 4,
                         max_servers: int = 65,
                         join_mean_ms: float = 120_000.0,
                         leave_mean_ms: float = 1_140_000.0,
                         sigma_ms: float = 90_000.0,
                         duration_ms: float = 1_440_000.0,
                         think_ms: float = 400.0,
                         seed: int = 21,
                         elastic: bool = True) -> MediaResult:
    """Run the Fig. 10 wave experiment for one elasticity period.

    Clients join around ``join_mean_ms`` and leave around
    ``leave_mean_ms`` (defaults: the paper's 2 min / 19 min waves over a
    24-minute run).  The fleet starts at 4 m1.small and may grow to 65.
    """
    bed = build_cluster(initial_servers, instance_type="m1.small",
                        seed=seed, boot_delay_ms=25_000.0,
                        max_servers=max_servers)
    service = build_media_service(bed)

    manager = None
    if elastic:
        policy = compile_source(MEDIA_POLICY, MEDIA_ACTOR_CLASSES)
        manager = ElasticityManager(bed.system, policy, EmrConfig(
            period_ms=period_ms, gem_wait_ms=2_000.0,
            allow_scale_out=True, allow_scale_in=True,
            min_servers=initial_servers,
            max_scale_out_per_period=8,
            scale_instance_type="m1.small"))
        manager.start()

    schedule = normal_wave_schedule(
        num_clients, join_mean_ms, sigma_ms, leave_mean_ms, sigma_ms,
        bed.streams.stream("media-schedule"))
    clients = [Client(bed.system, name=f"c{i}")
               for i in range(num_clients)]
    rng = bed.streams.stream("media-requests")
    client_count = GaugeSeries("clients")
    server_count = GaugeSeries("servers")

    def client_life(index: int, join_ms: float, leave_ms: float):
        yield Timeout(bed.sim, join_ms)
        actors = service.client_joined(index)
        client = clients[index]
        while bed.sim.now < min(leave_ms, duration_ms):
            if rng.random() < 0.5:
                yield from client.timed_call(
                    actors.frontend, "watch", actors.stream,
                    actors.user_info, rng.randrange(500))
            else:
                yield from client.timed_call(
                    actors.frontend, "review", actors.editor,
                    actors.user_review, rng.randrange(500),
                    200 + rng.randrange(800))
            yield Timeout(bed.sim, think_ms)
        service.client_left(index)

    for index, (join_ms, leave_ms) in enumerate(schedule):
        spawn(bed.sim, client_life(index, join_ms, leave_ms))

    def monitor():
        while bed.sim.now < duration_ms:
            yield Timeout(bed.sim, 10_000.0)
            client_count.record(bed.sim.now, service.active_clients())
            server_count.record(bed.sim.now,
                                bed.provisioner.fleet_size())

    spawn(bed.sim, monitor())
    bed.run(until_ms=duration_ms)
    migrations = manager.migrations_total() if manager else 0
    if manager is not None:
        manager.stop()

    curve = latency_curve(clients, bucket_ms=20_000.0)
    latencies = [lat for _t, lat in curve]
    return MediaResult(
        period_ms=period_ms,
        latency_curve=curve,
        server_curve=list(server_count.samples),
        client_curve=list(client_count.samples),
        peak_servers=int(max(v for _t, v in server_count.samples))
        if len(server_count) else initial_servers,
        final_servers=bed.provisioner.fleet_size(),
        mean_latency_ms=sum(latencies) / len(latencies)
        if latencies else 0.0,
        migrations=migrations)
