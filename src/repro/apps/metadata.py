"""Metadata Server application (paper §3.3, §5.3, Fig. 5).

Folders and files are actors; opening a folder also reads the files in
it, which is exactly why migrating a hot folder *without* its files
(the def-rule baseline) buys nothing — every folder access turns into
remote file reads.  PLASMA's rule reserves the hot folder a server with
idle CPU *and* colocates its files:

    server.cpu.perc > 80 and
    client.call(Folder(fo).open).perc > 40 and
    File(fi) in ref(fo.files) =>
        reserve(fo, cpu); colocate(fo, fi);
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..actors import Actor, ActorRef, Client
from ..bench import TestBed, build_cluster, latency_curve
from ..core import ElasticityManager, EmrConfig, compile_source
from ..sim import Timeout, spawn
from ..workload import WeightedChoice, hot_one_split

__all__ = ["Folder", "File", "METADATA_POLICY", "MetadataSetup",
           "build_metadata_server", "run_metadata_experiment",
           "MetadataResult"]

METADATA_POLICY = """
server.cpu.perc > 80 and
client.call(Folder(fo).open).perc > 40 and
File(fi) in ref(fo.files) =>
    reserve(fo, cpu); colocate(fo, fi);
"""

#: CPU cost of the folder-side metadata lookup per open (ms of demand).
#: Deliberately small relative to the file read: "accessing a folder
#: implies accessing the files contained in it", so migrating the folder
#: alone (the def-rule baseline) sheds little CPU while adding remote
#: hops — the Fig. 5 effect.
FOLDER_CPU_MS = 0.3
#: CPU cost of reading one file's metadata (ms of demand).
FILE_CPU_MS = 1.2


class File(Actor):
    """A file's metadata."""

    state_size_mb = 0.5

    def __init__(self) -> None:
        self.reads = 0

    def read(self):
        yield self.compute(FILE_CPU_MS)
        self.reads += 1
        return {"size": 4096}


class Folder(Actor):
    """A folder holding file actors; opening touches one file."""

    files: list
    state_size_mb = 0.5

    def __init__(self) -> None:
        self.files: List[ActorRef] = []
        self.opens = 0

    def add_file(self, file_ref: ActorRef):
        self.files.append(file_ref)
        return len(self.files)

    def open(self, file_index: int):
        yield self.compute(FOLDER_CPU_MS)
        self.opens += 1
        if not self.files:
            return None
        target = self.files[file_index % len(self.files)]
        meta = yield self.call(target, "read")
        return meta


@dataclass
class MetadataSetup:
    """A deployed metadata server."""

    bed: TestBed
    folders: List[ActorRef]
    files: List[List[ActorRef]]
    picker: WeightedChoice


def build_metadata_server(bed: TestBed, num_folders: int = 4,
                          files_per_folder: int = 8,
                          hot_share: float = 0.5) -> MetadataSetup:
    """Create folders/files on the first server, with one hot folder."""
    server = bed.servers[0]
    folders = [bed.system.create_actor(Folder, server=server)
               for _ in range(num_folders)]
    files: List[List[ActorRef]] = []
    for folder in folders:
        folder_files = [bed.system.create_actor(File, server=server)
                        for _ in range(files_per_folder)]
        instance = bed.system.actor_instance(folder)
        for file_ref in folder_files:
            instance.files.append(file_ref)
        files.append(folder_files)
    weights = hot_one_split(num_folders, hot_share)
    picker = WeightedChoice(folders, weights,
                            bed.streams.stream("metadata-folder-pick"))
    return MetadataSetup(bed=bed, folders=folders, files=files,
                         picker=picker)


@dataclass
class MetadataResult:
    """Fig. 5 outcome for one setup."""

    setup_name: str
    mean_before_ms: float
    mean_after_ms: float
    curve: List[Tuple[float, float]] = field(default_factory=list)
    migrations: int = 0


def run_metadata_experiment(mode: str = "res-col-rule",
                            num_clients: int = 16,
                            duration_ms: float = 220_000.0,
                            period_ms: float = 80_000.0,
                            think_ms: float = 10.0,
                            seed: int = 11) -> MetadataResult:
    """Run one Fig. 5 setup.

    ``mode``: ``res-col-rule`` (the PLASMA rule), ``def-rule`` (migrate
    the hottest actor to an idle server, files stay), or ``no-rule``.
    The elasticity setups get one extra (initially idle) server, as in
    the paper.
    """
    if mode not in ("res-col-rule", "def-rule", "no-rule"):
        raise ValueError(f"unknown mode {mode!r}")
    extra = 0 if mode == "no-rule" else 1
    bed = build_cluster(1 + extra, instance_type="m1.small", seed=seed)
    setup = build_metadata_server(bed)

    manager: Optional[ElasticityManager] = None
    migrations = 0
    if mode == "res-col-rule":
        policy = compile_source(METADATA_POLICY, [Folder, File])
        manager = ElasticityManager(
            bed.system, policy,
            EmrConfig(period_ms=period_ms, gem_wait_ms=500.0))
        manager.start()
    elif mode == "def-rule":
        from ..baselines import DefaultRuleManager
        manager = DefaultRuleManager(bed.system, period_ms=period_ms)
        manager.start()

    clients = [Client(bed.system, name=f"c{i}") for i in range(num_clients)]
    rng = bed.streams.stream("metadata-file-pick")

    def client_loop(client: Client):
        while bed.sim.now < duration_ms:
            folder = setup.picker.pick()
            index = rng.randrange(8)
            yield from client.timed_call(folder, "open", index)
            yield Timeout(bed.sim, think_ms)

    for client in clients:
        spawn(bed.sim, client_loop(client))

    bed.run(until_ms=duration_ms)
    if manager is not None:
        migrations = (manager.migrations_total()
                      if hasattr(manager, "migrations_total")
                      else getattr(manager, "migrations", 0))
        manager.stop()

    curve = latency_curve(clients, bucket_ms=5_000.0)
    switch = period_ms + 15_000.0  # after the first elasticity round fired
    before = [lat for t, lat in curve if t < period_ms]
    after = [lat for t, lat in curve if t >= switch]
    mean_before = sum(before) / len(before) if before else 0.0
    mean_after = sum(after) / len(after) if after else 0.0
    return MetadataResult(setup_name=mode, mean_before_ms=mean_before,
                          mean_after_ms=mean_after, curve=curve,
                          migrations=migrations)
