"""Distributed B+ tree of actors (paper Table 1).

Inner nodes and leaf nodes are actors.  Lookups descend from the root
through inner nodes to a leaf.  Elasticity rules (Table 1): co-locate
parent and child *inner* nodes (descents stay on-server until the last
hop) and keep leaf nodes spread out on separate servers (they hold the
bulk of the data and the scan bandwidth).

    InnerNode(c) in ref(InnerNode(p).children) => colocate(p, c);
    LeafNode(l1) in ref(InnerNode(p).leaves) => separate(l1, p);
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..actors import Actor, ActorRef
from ..bench import TestBed

__all__ = ["InnerNode", "LeafNode", "BTREE_POLICY", "BPlusTree",
           "build_btree"]

BTREE_POLICY = """
InnerNode(c) in ref(InnerNode(p).children) => colocate(p, c);

LeafNode(l1) in ref(InnerNode(p).leaves) => separate(l1, p);
"""

INNER_CPU_MS = 0.1
LEAF_CPU_MS = 0.4


class InnerNode(Actor):
    """Routing node: keys partition the key space over children."""

    children: list
    leaves: list
    state_size_mb = 0.5

    def __init__(self, keys: List[int], child_refs: List[ActorRef],
                 children_are_leaves: bool) -> None:
        self.keys = list(keys)
        self.children = [] if children_are_leaves else list(child_refs)
        self.leaves = list(child_refs) if children_are_leaves else []
        self._routes = list(child_refs)
        self.children_are_leaves = children_are_leaves
        self.lookups = 0

    def _route(self, key: int) -> ActorRef:
        index = bisect.bisect_right(self.keys, key)
        return self._routes[min(index, len(self._routes) - 1)]

    def get(self, key: int):
        yield self.compute(INNER_CPU_MS)
        self.lookups += 1
        target = self._route(key)
        value = yield self.call(target, "get", key)
        return value

    def put(self, key: int, value):
        yield self.compute(INNER_CPU_MS)
        self.lookups += 1
        target = self._route(key)
        result = yield self.call(target, "put", key, value)
        return result


class LeafNode(Actor):
    """Data-bearing leaf: sorted key/value pairs."""

    state_size_mb = 8.0

    def __init__(self) -> None:
        self.data = {}

    def get(self, key: int):
        yield self.compute(LEAF_CPU_MS)
        return self.data.get(key)

    def put(self, key: int, value):
        yield self.compute(LEAF_CPU_MS)
        self.data[key] = value
        return True

    def scan(self, low: int, high: int):
        yield self.compute(LEAF_CPU_MS * 4)
        return {k: v for k, v in self.data.items() if low <= k <= high}


@dataclass
class BPlusTree:
    """A built tree: root ref plus per-level node lists."""

    bed: TestBed
    root: ActorRef
    inner_levels: List[List[ActorRef]]
    leaves: List[ActorRef]
    key_space: int

    def get(self, client, key: int):
        """Generator: look up ``key`` from an external client."""
        return client.timed_call(self.root, "get", key)

    def put(self, client, key: int, value):
        return client.timed_call(self.root, "put", key, value)


def build_btree(bed: TestBed, fanout: int = 4, leaf_count: int = 16,
                key_space: int = 100_000) -> BPlusTree:
    """Build a B+ tree bottom-up: leaves, then inner levels up to a root.

    Leaves are spread round-robin; inner nodes start wherever the
    (possibly rule-aware) placement puts them.
    """
    if fanout < 2:
        raise ValueError("fanout must be at least 2")
    system = bed.system
    leaves = [system.create_actor(LeafNode,
                                  server=bed.servers[i % len(bed.servers)])
              for i in range(leaf_count)]
    # Key ranges: leaf i owns [i*stride, (i+1)*stride).
    stride = key_space // leaf_count

    level_refs: List[ActorRef] = list(leaves)
    level_is_leaves = True
    boundaries = [stride * (i + 1) for i in range(leaf_count - 1)]
    inner_levels: List[List[ActorRef]] = []
    while len(level_refs) > 1:
        next_refs: List[ActorRef] = []
        next_boundaries: List[int] = []
        for start in range(0, len(level_refs), fanout):
            group = level_refs[start:start + fanout]
            group_keys = boundaries[start:start + len(group) - 1]
            node = system.create_actor(
                InnerNode, group_keys, group, level_is_leaves)
            next_refs.append(node)
            end_index = start + len(group) - 1
            if end_index < len(boundaries):
                next_boundaries.append(boundaries[end_index])
        inner_levels.append(next_refs)
        level_refs = next_refs
        boundaries = next_boundaries
        level_is_leaves = False
    return BPlusTree(bed=bed, root=level_refs[0],
                     inner_levels=inner_levels, leaves=leaves,
                     key_space=key_space)
