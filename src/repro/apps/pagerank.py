"""Distributed actor-based PageRank (paper §2.1, §5.4, Figs. 6–8).

One Worker actor per graph partition.  Iterations are bulk-synchronous:
every worker computes contributions for its nodes (CPU cost proportional
to nodes + edges), exchanges boundary contributions with peer workers
(network cost proportional to cut edges), then applies the update.  The
driver synchronizes the phases, so — as in the paper — "the overall
execution speed is limited by the slowest worker".

The elasticity rule is the paper's:

    server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);

METIS-balanced partitions have near-equal node counts but unequal
*compute* cost on power-law graphs, so CPU usage diverges across servers
and PLASMA's balance rule relocates workers until every server sits in
the 60–80% band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..actors import Actor, ActorRef, Client
from ..bench import TestBed
from ..graphs import Graph, PartitionResult, partition_graph
from ..sim import Timeout, spawn

__all__ = ["PageRankWorker", "PAGERANK_POLICY", "PageRankDeployment",
           "build_pagerank", "run_iterations", "IterationStats",
           "DEFAULT_DAMPING"]

PAGERANK_POLICY = """
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({PageRankWorker}, cpu);
"""

DEFAULT_DAMPING = 0.85
#: CPU demand per graph unit (node or edge) per iteration, in ms.
DEFAULT_ALPHA_MS = 0.8
#: Grace period after the exchange phase for in-flight deliveries.
EXCHANGE_GRACE_MS = 20.0
#: Compute is submitted in chunks (the per-vertex loop yields), letting
#: the server's cores interleave workers instead of head-of-line blocking
#: behind one long job.
COMPUTE_CHUNK_MS = 50.0


class PageRankWorker(Actor):
    """Owns one partition: its nodes, their out-edges, and their ranks."""

    state_size_mb = 40.0  # ~1.2 GB / 32 partitions, as in the paper

    def __init__(self, part_id: int, nodes: Sequence[int],
                 out_edges: Dict[int, Sequence[int]],
                 assignment: Sequence[int], total_nodes: int,
                 alpha_ms: float = DEFAULT_ALPHA_MS,
                 compute_scale: float = 1.0) -> None:
        self.part_id = part_id
        self.nodes = list(nodes)
        self.out_edges = {node: list(targets)
                          for node, targets in out_edges.items()}
        self.assignment = assignment      # node -> partition (shared, read-only)
        self.total_nodes = total_nodes
        self.alpha_ms = alpha_ms
        self.compute_scale = compute_scale
        self.rank: Dict[int, float] = {
            node: 1.0 / total_nodes for node in self.nodes}
        self.peers: Dict[int, ActorRef] = {}
        self._outbox: Dict[int, Dict[int, float]] = {}
        self._local_contrib: Dict[int, float] = {}
        self._inbox: List[Dict[int, float]] = []
        self.iterations_done = 0

    # -- setup ---------------------------------------------------------------

    def set_peers(self, peers: Dict[int, ActorRef]):
        self.peers = dict(peers)
        return True

    def graph_units(self) -> int:
        return len(self.nodes) + sum(len(t) for t in self.out_edges.values())

    def load_data(self):
        """Initial data loading (the busy early redistributions of
        Fig. 7b): cost proportional to partition size."""
        yield self.compute(0.2 * self.graph_units() * self.compute_scale)
        return self.part_id

    # -- BSP phases -------------------------------------------------------------

    def compute_contribs(self, damping: float):
        """Phase 1: per-node contributions, bucketed by target partition.

        Returns this partition's dangling mass (rank of nodes without
        out-edges), which the driver aggregates globally.
        """
        remaining = self.alpha_ms * self.graph_units() * self.compute_scale
        while remaining > 0:
            chunk = min(remaining, COMPUTE_CHUNK_MS)
            yield self.compute(chunk)
            remaining -= chunk
        self._outbox = {}
        self._local_contrib = {}
        dangling = 0.0
        for node in self.nodes:
            targets = self.out_edges.get(node, ())
            if not targets:
                dangling += self.rank[node]
                continue
            share = self.rank[node] / len(targets)
            for target in targets:
                part = self.assignment[target]
                if part == self.part_id:
                    self._local_contrib[target] = (
                        self._local_contrib.get(target, 0.0) + share)
                else:
                    bucket = self._outbox.setdefault(part, {})
                    bucket[target] = bucket.get(target, 0.0) + share
        return dangling

    def send_updates(self):
        """Phase 2: ship boundary contributions to peer workers."""
        for part, contribs in self._outbox.items():
            peer = self.peers.get(part)
            if peer is None:
                continue
            self.tell(peer, "deliver", contribs,
                      size_bytes=16.0 * max(1, len(contribs)))
        return len(self._outbox)

    def deliver(self, contribs: Dict[int, float]):
        self._inbox.append(contribs)
        return True

    def apply_update(self, damping: float, dangling_total: float):
        """Phase 3: fold local + remote contributions into new ranks;
        returns the L1 delta over this partition."""
        yield self.compute(0.05 * len(self.nodes) * self.compute_scale)
        incoming: Dict[int, float] = dict(self._local_contrib)
        for contribs in self._inbox:
            for node, share in contribs.items():
                incoming[node] = incoming.get(node, 0.0) + share
        self._inbox = []
        base = ((1.0 - damping) / self.total_nodes
                + damping * dangling_total / self.total_nodes)
        delta = 0.0
        new_rank = {}
        for node in self.nodes:
            value = base + damping * incoming.get(node, 0.0)
            delta += abs(value - self.rank[node])
            new_rank[node] = value
        self.rank = new_rank
        self.iterations_done += 1
        return delta

    def get_ranks(self):
        return dict(self.rank)

    # -- Mizan-style vertex migration support ------------------------------------

    def emigrate_nodes(self, count: int):
        """Give up the ``count`` most expensive nodes (node + its edges),
        returning their data for another worker to adopt."""
        yield self.compute(0.02 * max(1, count))
        victims = sorted(self.nodes,
                         key=lambda n: -len(self.out_edges.get(n, ())))
        victims = victims[:count]
        payload = {}
        for node in victims:
            payload[node] = (self.rank.pop(node),
                             self.out_edges.pop(node, []))
            self.nodes.remove(node)
        return payload

    def immigrate_nodes(self, payload: Dict[int, Tuple[float, List[int]]],
                        new_assignment_part: int):
        yield self.compute(0.02 * max(1, len(payload)))
        for node, (rank, edges) in payload.items():
            self.nodes.append(node)
            self.rank[node] = rank
            self.out_edges[node] = edges
            self.assignment[node] = new_assignment_part
        return len(payload)


@dataclass
class PageRankDeployment:
    """A deployed PageRank cluster."""

    bed: TestBed
    graph: Graph
    partition: PartitionResult
    workers: List[ActorRef]
    assignment: List[int]
    damping: float = DEFAULT_DAMPING


@dataclass
class IterationStats:
    """Per-iteration outcome of a run."""

    times_ms: List[float] = field(default_factory=list)
    deltas: List[float] = field(default_factory=list)

    def total_time_ms(self) -> float:
        return sum(self.times_ms)

    def converged_iteration(self, tolerance: float) -> Optional[int]:
        for index, delta in enumerate(self.deltas):
            if delta < tolerance:
                return index + 1
        return None


def build_pagerank(bed: TestBed, graph: Graph, num_partitions: int,
                   placement: Optional[Sequence[int]] = None,
                   alpha_ms: float = DEFAULT_ALPHA_MS,
                   compute_scale: float = 1.0,
                   damping: float = DEFAULT_DAMPING,
                   partition_seed: int = 5) -> PageRankDeployment:
    """Partition ``graph`` and create one worker per partition.

    ``placement[i]`` is the index (into ``bed.servers``) hosting worker
    ``i``; by default workers are spread round-robin.
    """
    rng = bed.streams.stream("pagerank-partition")
    rng.seed(partition_seed)
    partition = partition_graph(graph, num_partitions, rng)
    assignment = list(partition.assignment)

    nodes_of: List[List[int]] = [[] for _ in range(num_partitions)]
    for node, part in enumerate(assignment):
        nodes_of[part].append(node)

    workers: List[ActorRef] = []
    for part_id in range(num_partitions):
        out_edges = {node: list(graph.out_edges(node))
                     for node in nodes_of[part_id]}
        if placement is not None:
            server = bed.servers[placement[part_id] % len(bed.servers)]
        else:
            server = bed.servers[part_id % len(bed.servers)]
        ref = bed.system.create_actor(
            PageRankWorker, part_id, nodes_of[part_id], out_edges,
            assignment, graph.num_nodes, alpha_ms, compute_scale,
            server=server)
        workers.append(ref)

    peer_map = {part: ref for part, ref in enumerate(workers)}
    for ref in workers:
        bed.system.actor_instance(ref).set_peers(peer_map)
    return PageRankDeployment(bed=bed, graph=graph, partition=partition,
                              workers=workers, assignment=assignment,
                              damping=damping)


def run_iterations(deployment: PageRankDeployment, iterations: int,
                   load_phase: bool = True,
                   on_iteration=None) -> IterationStats:
    """Drive the BSP loop to completion; returns per-iteration stats.

    ``on_iteration(index, elapsed_ms)`` is called after each iteration —
    baselines (Mizan) hook vertex migration there.
    """
    bed = deployment.bed
    client = Client(bed.system, name="pagerank-driver")
    stats = IterationStats()
    finished = []

    def call_all(function, *args):
        signals = [client.call(ref, function, *args)
                   for ref in deployment.workers]
        results = []
        for signal in signals:
            value = yield signal
            results.append(value)
        return results

    def driver():
        if load_phase:
            yield from call_all("load_data")
        for index in range(iterations):
            started = bed.sim.now
            dangling = yield from call_all(
                "compute_contribs", deployment.damping)
            yield from call_all("send_updates")
            yield Timeout(bed.sim, EXCHANGE_GRACE_MS)
            dangling_total = sum(d for d in dangling if d is not None)
            deltas = yield from call_all(
                "apply_update", deployment.damping, dangling_total)
            elapsed = bed.sim.now - started
            stats.times_ms.append(elapsed)
            stats.deltas.append(sum(d for d in deltas if d is not None))
            if on_iteration is not None:
                more = on_iteration(index, elapsed)
                if hasattr(more, "send"):
                    yield from more
        finished.append(True)

    spawn(bed.sim, driver(), name="pagerank-driver")
    # Run in chunks: periodic EMR processes keep the event heap non-empty
    # forever, so "run until the driver reports done" is the loop shape.
    horizon = bed.sim.now + 36_000_000.0
    while not finished:
        if bed.sim.peek() is None:
            raise RuntimeError("PageRank driver stalled (empty event heap)")
        bed.sim.run(until=bed.sim.now + 10_000.0)
        if bed.sim.now >= horizon:
            raise RuntimeError("PageRank driver did not finish in time")
    return stats


def collect_ranks(deployment: PageRankDeployment) -> List[float]:
    """Gather the distributed ranks into one dense vector (for tests)."""
    ranks = [0.0] * deployment.graph.num_nodes
    for ref in deployment.workers:
        worker = deployment.bed.system.actor_instance(ref)
        for node, value in worker.rank.items():
            ranks[node] = value
    return ranks
