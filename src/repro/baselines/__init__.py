"""Baseline elasticity policies the paper compares PLASMA against."""

from .base import PeriodicBalancer
from .defaultrule import DefaultRuleManager
from .estore_inapp import EStoreInApp
from .mizan import MizanMigrator
from .orleans import OrleansBalancer

__all__ = ["PeriodicBalancer", "DefaultRuleManager", "EStoreInApp",
           "MizanMigrator", "OrleansBalancer"]
