"""Shared machinery for baseline elasticity managers.

Baselines replicate competitor policies (Orleans, the "default rule", the
in-app E-Store controller) against the same actor substrate PLASMA runs
on.  Each attaches its own profiling (they are allowed to watch the same
runtime signals) and runs a periodic decision loop.
"""

from __future__ import annotations

from typing import List, Optional

from ..actors import ActorRecord, ActorSystem
from ..cluster import Server
from ..core.profiling import ProfilingRuntime
from ..sim import Timeout, spawn

__all__ = ["PeriodicBalancer"]


class PeriodicBalancer:
    """Base class: a manager that wakes every ``period_ms`` and calls
    :meth:`decide`.  Subclasses implement the policy."""

    def __init__(self, system: ActorSystem, period_ms: float = 60_000.0,
                 profile: bool = True) -> None:
        self.system = system
        self.period_ms = period_ms
        self.running = False
        self.migrations = 0
        self.rounds = 0
        self.profiler: Optional[ProfilingRuntime] = None
        if profile:
            self.profiler = ProfilingRuntime(system.sim,
                                             window_ms=period_ms)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        if self.profiler is not None:
            self.system.add_hooks(self.profiler)
        spawn(self.system.sim, self._loop(),
              name=f"{type(self).__name__}")

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        if self.profiler is not None and self.profiler in self.system.hooks:
            self.system.remove_hooks(self.profiler)

    def migrations_total(self) -> int:
        return self.migrations

    def _loop(self):
        sim = self.system.sim
        while self.running:
            yield Timeout(sim, self.period_ms)
            if not self.running:
                return
            self.rounds += 1
            self.decide()

    # -- helpers for subclasses -------------------------------------------------

    def servers(self) -> List[Server]:
        return [s for s in self.system.provisioner.servers if s.running]

    def actors_on(self, server: Server) -> List[ActorRecord]:
        return self.system.actors_on(server)

    def migrate(self, record: ActorRecord, target: Server) -> None:
        if record.server is target:
            return
        self.system.migrate_actor(record.ref, target)
        self.migrations += 1

    def decide(self) -> None:
        raise NotImplementedError

    def colocate_frequent_pairs(self, min_pair_rate_per_min: float = 1.0,
                                max_moves: int = 8) -> int:
        """Frequency-affinity colocation: move the caller of each hot
        remote (caller → callee) pair next to its callee, hottest pairs
        first.  Shared by the Orleans and default-rule baselines."""
        if self.profiler is None:
            return 0
        pairs = []
        for server in self.servers():
            records = self.actors_on(server)
            if not records:
                continue
            for snap in self.profiler.snapshot_actors(records):
                for (caller_id, _function), rate in \
                        snap.pair_count_per_min.items():
                    if rate < min_pair_rate_per_min:
                        continue
                    caller = self.system.directory.try_lookup(caller_id)
                    if caller is None or caller.server is snap.server:
                        continue
                    pairs.append((rate, caller_id, snap.actor_id))
        pairs.sort(reverse=True)
        done = 0
        for _rate, caller_id, callee_id in pairs:
            if done >= max_moves:
                break
            caller = self.system.directory.try_lookup(caller_id)
            callee = self.system.directory.try_lookup(callee_id)
            if caller is None or callee is None:
                continue
            if caller.server is callee.server:
                continue
            mover, anchor = caller, callee
            if mover.pinned or mover.migrating:
                mover, anchor = callee, caller
                if mover.pinned or mover.migrating:
                    continue
            self.migrate(mover, anchor.server)
            done += 1
        return done
