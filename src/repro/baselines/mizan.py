"""Mizan-style dynamic vertex migration (paper §5.4, Fig. 7a).

Mizan balances graph processing by migrating *vertices* between workers
at superstep boundaries, based on per-worker runtime statistics.  The
paper finds it reduces iteration time by only a few percent (vs. 24% for
PLASMA) because vertex migration happens inside the computation barrier
and pays its overhead on every adjustment — and it cannot change where
the *workers* run, so a hot server stays hot when all its workers are
moderately loaded.

This controller replicates that scheme against our actor PageRank: after
each iteration it compares per-worker compute cost, then moves a bounded
batch of high-degree vertices from the slowest worker to the fastest,
charging a migration barrier proportional to the data moved (Mizan
performs migration as an extra BSP phase).
"""

from __future__ import annotations

from typing import List, Optional

from ..actors import Client
from ..apps.pagerank import PageRankDeployment
from ..sim import Timeout

__all__ = ["MizanMigrator"]


class MizanMigrator:
    """Vertex-migration planner hooked into the PageRank iteration loop."""

    def __init__(self, deployment: PageRankDeployment,
                 migrate_fraction: float = 0.05,
                 imbalance_trigger: float = 1.10,
                 barrier_ms_per_vertex: float = 1.5) -> None:
        self.deployment = deployment
        self.migrate_fraction = migrate_fraction
        self.imbalance_trigger = imbalance_trigger
        self.barrier_ms_per_vertex = barrier_ms_per_vertex
        self.vertices_moved = 0
        self.migration_rounds = 0
        self._client = Client(deployment.bed.system, name="mizan")

    def worker_costs(self) -> List[int]:
        system = self.deployment.bed.system
        return [system.actor_instance(ref).graph_units()
                for ref in self.deployment.workers]

    def on_iteration(self, index: int, elapsed_ms: float):
        """Generator hook for ``run_iterations(..., on_iteration=...)``."""
        costs = self.worker_costs()
        mean_cost = sum(costs) / len(costs)
        slowest = max(range(len(costs)), key=lambda i: costs[i])
        fastest = min(range(len(costs)), key=lambda i: costs[i])
        if costs[slowest] < mean_cost * self.imbalance_trigger:
            return
        slow_ref = self.deployment.workers[slowest]
        fast_ref = self.deployment.workers[fastest]
        system = self.deployment.bed.system
        slow_worker = system.actor_instance(slow_ref)
        count = max(1, int(len(slow_worker.nodes) * self.migrate_fraction))

        payload = yield self._client.call(slow_ref, "emigrate_nodes", count)
        if not payload:
            return
        fast_part = system.actor_instance(fast_ref).part_id
        yield self._client.call(fast_ref, "immigrate_nodes", payload,
                                fast_part)
        # Mizan runs migration as a dedicated superstep: every worker
        # stalls behind the migration barrier.
        yield Timeout(system.sim,
                      self.barrier_ms_per_vertex * len(payload))
        self.vertices_moved += len(payload)
        self.migration_rounds += 1
