"""Orleans-style elasticity baseline (paper §2.1 and Fig. 6a).

Orleans "balances workload by equalizing the number of actors on each
server ... [and] co-locates actors that frequently communicate with one
another".  Crucially it does *not* consider server metrics such as CPU
usage — with 32 equal-count partitions on 8 servers it takes no action at
all, which is exactly the behaviour the PageRank comparison exposes.
"""

from __future__ import annotations

from typing import List

from ..actors import ActorRecord, ActorSystem
from .base import PeriodicBalancer

__all__ = ["OrleansBalancer"]


class OrleansBalancer(PeriodicBalancer):
    """Equal-actor-count balancing plus optional frequency colocation."""

    def __init__(self, system: ActorSystem, period_ms: float = 60_000.0,
                 colocate_frequent: bool = False,
                 min_pair_rate_per_min: float = 1.0) -> None:
        super().__init__(system, period_ms=period_ms, profile=True)
        self.colocate_frequent = colocate_frequent
        self.min_pair_rate_per_min = min_pair_rate_per_min

    def decide(self) -> None:
        self._equalize_counts()
        if self.colocate_frequent:
            self.colocate_frequent_pairs(self.min_pair_rate_per_min)

    def _equalize_counts(self) -> None:
        servers = self.servers()
        if len(servers) < 2:
            return
        counts = {s.server_id: len(self.actors_on(s)) for s in servers}
        total = sum(counts.values())
        if total == 0:
            return
        target = total / len(servers)
        # Move actors from servers above ceil(target) to those below
        # floor(target) until counts are within one of each other.
        overfull = sorted((s for s in servers
                           if counts[s.server_id] > target + 0.5),
                          key=lambda s: -counts[s.server_id])
        for src in overfull:
            while counts[src.server_id] > target + 0.5:
                dst = min(servers, key=lambda s: counts[s.server_id])
                if counts[dst.server_id] + 1 > counts[src.server_id] - 1:
                    break
                mover = self._pick_mover(self.actors_on(src))
                if mover is None:
                    break
                self.migrate(mover, dst)
                counts[src.server_id] -= 1
                counts[dst.server_id] += 1

    @staticmethod
    def _pick_mover(records: List[ActorRecord]):
        for record in records:
            if not record.pinned and not record.migrating:
                return record
        return None
