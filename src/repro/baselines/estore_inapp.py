"""E-Store's own (in-application) elasticity controller (paper §5.5).

The paper implemented E-Store's published scheme inside AEON (3000 LoC of
runtime extensions) to compare against 3 PLASMA rules.  The scheme:
monitor per-server resource usage; above the high-water mark, migrate the
top-k% most accessed root partitions *with their descendants* to idle
servers; below the low-water mark, redistribute.
"""

from __future__ import annotations

from typing import List, Optional

from ..actors import ActorRef, ActorSystem
from .base import PeriodicBalancer

__all__ = ["EStoreInApp"]


class EStoreInApp(PeriodicBalancer):
    """Top-k% hot-partition migration with descendant co-migration."""

    def __init__(self, system: ActorSystem, roots: List[ActorRef],
                 period_ms: float = 60_000.0,
                 high_water: float = 80.0, low_water: float = 50.0,
                 top_fraction: float = 0.1) -> None:
        super().__init__(system, period_ms=period_ms, profile=True)
        self.roots = list(roots)
        self.high_water = high_water
        self.low_water = low_water
        self.top_fraction = top_fraction

    def decide(self) -> None:
        servers = self.servers()
        if len(servers) < 2:
            return
        window = self.period_ms
        hot = [s for s in servers if s.cpu_percent(window) > self.high_water]
        cold = sorted(servers, key=lambda s: s.cpu_percent(window))
        if hot:
            for server in hot:
                self._shed_hot_partitions(server, cold)
        elif any(s.cpu_percent(window) < self.low_water for s in servers):
            self._redistribute(cold)

    # -- helpers ----------------------------------------------------------

    def _roots_on(self, server) -> List[ActorRef]:
        on_server = []
        for root in self.roots:
            record = self.system.directory.try_lookup(root.actor_id)
            if record is not None and record.server is server:
                on_server.append(root)
        return on_server

    def _access_rate(self, root: ActorRef) -> float:
        record = self.system.directory.try_lookup(root.actor_id)
        if record is None:
            return 0.0
        snap = self.profiler.snapshot_actors([record])[0]
        return sum(rate for (kind, _fn), rate
                   in snap.call_count_per_min.items() if kind == "client")

    def _move_tree(self, root: ActorRef, target) -> None:
        """Migrate a root partition and every descendant with it."""
        record = self.system.directory.try_lookup(root.actor_id)
        if record is None or record.server is target:
            return
        self.migrate(record, target)
        instance = record.instance
        for child in getattr(instance, "children", []):
            child_record = self.system.directory.try_lookup(child.actor_id)
            if child_record is not None:
                self.migrate(child_record, target)

    def _shed_hot_partitions(self, server, cold_sorted) -> None:
        roots = self._roots_on(server)
        if len(roots) <= 2:
            return  # effectively dedicated to its hot trees already
        roots.sort(key=self._access_rate, reverse=True)
        count = max(1, int(len(roots) * self.top_fraction))
        window = self.period_ms
        targets = [s for s in cold_sorted if s is not server
                   and s.cpu_percent(window) < self.high_water]
        if not targets:
            return
        for index, root in enumerate(roots[:count]):
            self._move_tree(root, targets[index % len(targets)])

    def _redistribute(self, cold_sorted) -> None:
        """Low-water path: feed the idlest server from the busiest."""
        window = self.period_ms
        idlest = cold_sorted[0]
        busiest = cold_sorted[-1]
        if busiest is idlest:
            return
        spread = (busiest.cpu_percent(window) - idlest.cpu_percent(window))
        if spread < 15.0:
            return
        roots = self._roots_on(busiest)
        if not roots:
            return
        roots.sort(key=self._access_rate, reverse=True)
        # Move one mid-heat tree: the hottest often overshoots.
        self._move_tree(roots[len(roots) // 2], idlest)
