"""The "default rule" baseline (paper Fig. 5 and Fig. 11a).

Two semantics-free heuristics an elasticity runtime could apply without
application knowledge:

- **hot-actor migration** (Fig. 5's def-rule): each period, move the
  single busiest actor off the most loaded server onto the least loaded
  one.  For the Metadata Server this moves the hot Folder but strands
  its Files, so every open still pays remote file reads.
- **frequency colocation** (Fig. 11a's def-rule): co-locate the actor
  pairs that exchanged the most messages recently — Orleans-style — which
  only converges after the interaction has already been observed (and can
  mis-fire on transient traffic).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..actors import ActorSystem
from .base import PeriodicBalancer

__all__ = ["DefaultRuleManager"]


class DefaultRuleManager(PeriodicBalancer):
    """Semantics-free baseline elasticity manager."""

    def __init__(self, system: ActorSystem, period_ms: float = 60_000.0,
                 migrate_hot: bool = True,
                 colocate_frequent: bool = False,
                 cpu_threshold: float = 80.0,
                 min_pair_rate_per_min: float = 1.0,
                 max_colocations_per_round: int = 8) -> None:
        super().__init__(system, period_ms=period_ms, profile=True)
        self.migrate_hot = migrate_hot
        self.colocate_frequent = colocate_frequent
        self.cpu_threshold = cpu_threshold
        self.min_pair_rate_per_min = min_pair_rate_per_min
        self.max_colocations_per_round = max_colocations_per_round

    def decide(self) -> None:
        if self.migrate_hot:
            self._migrate_hottest_actor()
        if self.colocate_frequent:
            self.colocate_frequent_pairs(
                self.min_pair_rate_per_min,
                self.max_colocations_per_round)

    # -- hot-actor migration ---------------------------------------------------

    def _migrate_hottest_actor(self) -> None:
        servers = self.servers()
        if len(servers) < 2:
            return
        window = self.period_ms
        hottest = max(servers, key=lambda s: s.cpu_percent(window))
        if hottest.cpu_percent(window) < self.cpu_threshold:
            return
        records = self.actors_on(hottest)
        if not records:
            return
        snaps = self.profiler.snapshot_actors(records)
        snaps = [s for s in snaps if not s.pinned and not s.migrating]
        if not snaps:
            return
        busiest = max(snaps, key=lambda s: s.cpu_perc)
        coldest = min((s for s in servers if s is not hottest),
                      key=lambda s: s.cpu_percent(window))
        record = self.system.directory.try_lookup(busiest.actor_id)
        if record is not None:
            self.migrate(record, coldest)
