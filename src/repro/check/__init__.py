"""Runtime invariant checking for the elasticity stack.

:class:`InvariantChecker` attaches to a running
:class:`~repro.core.emr.ElasticityManager` and continuously re-derives
the correctness properties of the paper's Algorithms 1 and 2 from the
runtime's observable events — placement stability, pin/priority
discipline, majority-vote fleet scaling, actor conservation across
crashes and migrations, and resource accounting.  Violations are
collected (or raised, in strict mode) with enough context to be
replayed.

The checker is the assertion half of the simulation-testing layer; the
scenario fuzzer in :mod:`repro.fuzz` is the input half.
"""

from .checker import InvariantChecker
from .invariants import INVARIANTS, Violation

__all__ = ["InvariantChecker", "INVARIANTS", "Violation"]
