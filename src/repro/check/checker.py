"""The runtime invariant checker.

:class:`InvariantChecker` subscribes to the same observation surfaces
the tracer uses — actor-runtime hooks and the elasticity manager's event
bus — plus a periodic sweep on the simulation clock, and re-derives the
elasticity stack's correctness properties *independently* of the code
that is supposed to enforce them.  It deliberately reads raw
configuration fields (``period_ms``, ``stability_ms``) rather than the
helper methods the runtime itself calls, so a mutation that weakens the
runtime's own guard (the classic one-line ``stability_window_ms``
regression) is caught rather than mirrored.

Usage::

    checker = InvariantChecker(manager, meters=[meter], tracer=tracer)
    checker.attach()
    ... run the simulation ...
    checker.final_check()
    assert not checker.violations, checker.report()

Attaching sets ``manager.debug_events = True`` so LEMs and GEMs emit the
verbose per-round events (``lem-round``, ``actions-resolved``,
``gem-vote``) the checker consumes; detaching restores the previous
value.  The checker never mutates runtime decisions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set

from dataclasses import fields as _dataclass_fields

from ..actors import ActorRecord, RuntimeHooks
from ..cluster import AvailabilityMeter, Server
from ..core.emr.hierarchy import GroupAggregate
from .invariants import INVARIANTS, InvariantError, Violation

__all__ = ["InvariantChecker"]

_EPS = 1e-6
_PERC_EPS = 1e-6
_MEM_EPS_MB = 1e-6

#: Every field a *full* (non-delta) group aggregate ships; derived from
#: the dataclass schema, not from the hierarchy's runtime bookkeeping.
_AGGREGATE_FIELDS = frozenset(
    f.name for f in _dataclass_fields(GroupAggregate))


class _CheckerHooks(RuntimeHooks):
    """Actor-runtime hook adapter (same shape as the tracer's)."""

    def __init__(self, checker: "InvariantChecker") -> None:
        self.checker = checker

    def on_actor_created(self, record: ActorRecord) -> None:
        self.checker._on_created(record)

    def on_actor_destroyed(self, record: ActorRecord) -> None:
        self.checker._on_destroyed(record)

    def on_actor_migrated(self, record: ActorRecord, old_server: Server,
                          new_server: Server) -> None:
        self.checker._on_migrated(record, old_server, new_server)

    def on_migration_aborted(self, record: ActorRecord, source: Server,
                             target: Server, reason: str) -> None:
        self.checker._on_migration_aborted(record, source, target, reason)

    def on_server_crashed(self, server: Server,
                          lost: List[ActorRecord]) -> None:
        self.checker._on_server_crashed(server, lost)

    def on_actor_resurrected(self, record: ActorRecord) -> None:
        self.checker._on_resurrected(record)

    def on_message_shed(self, record: ActorRecord, message,
                        reason: str) -> None:
        self.checker._hook_sheds += 1

    def on_request_rejected(self, record: ActorRecord, message) -> None:
        self.checker._hook_rejects += 1


class InvariantChecker:
    """Continuously checks the invariant catalogue against a live run.

    Parameters
    ----------
    manager:
        The :class:`~repro.core.emr.ElasticityManager` under test.
    meters:
        Optional :class:`AvailabilityMeter` instances fed by the
        scenario's clients; used by ``availability-consistency``.
    tracer:
        Optional :class:`~repro.core.tracing.ElasticityTracer`; when
        given, each violation carries the tail of the trace as context.
    strict:
        Raise :class:`InvariantError` at the first violation instead of
        collecting.
    sweep_interval_ms:
        Period of the placement/accounting sweep (default: half the
        elasticity period).
    """

    def __init__(self, manager, meters: Sequence[AvailabilityMeter] = (),
                 tracer=None, strict: bool = False,
                 sweep_interval_ms: Optional[float] = None,
                 max_violations: int = 200) -> None:
        self.manager = manager
        self.meters = list(meters)
        self.tracer = tracer
        self.strict = strict
        self.max_violations = max_violations
        self.sweep_interval_ms = (
            sweep_interval_ms if sweep_interval_ms is not None
            else manager.config.period_ms / 2.0)
        self.violations: List[Violation] = []
        self.dropped = 0
        self.checks_run = 0
        self._hooks = _CheckerHooks(self)
        self._attached = False
        self._cancel_sweep = None
        self._prev_debug_events = False
        # -- derived runtime state ------------------------------------
        self._alive: Dict[int, str] = {}          # actor id -> type name
        self._lost: Dict[int, str] = {}           # crashed, resurrectable
        self._placed_at: Dict[int, float] = {}    # last placement time
        self._server_of: Dict[int, str] = {}      # actor id -> server name
        self._inflight: Dict[int, Dict[str, Any]] = {}
        self._last_vote: Optional[Dict[str, Any]] = None
        self._first_fault_ms: Optional[float] = None
        self._crashed_servers: Set[str] = set()
        # -- partition / epoch state ----------------------------------
        self._active_partitions: Dict[int, Dict[str, Any]] = {}
        self._degraded_gems: Set[int] = set()
        self._last_epoch_seen = 0
        # -- durability state (re-derived from checkpoint events, NOT
        # from the StateStore's own bookkeeping) -----------------------
        self._written_seq: Dict[int, int] = {}    # actor id -> last write
        self._acked_seq: Dict[int, int] = {}      # actor id -> last ack
        #: actor id -> seq -> {"digest", "replicas"} of acknowledged
        #: checkpoints, as carried on checkpoint-replicated events.
        self._acked_cps: Dict[int, Dict[int, Dict[str, Any]]] = {}
        # -- overload state (independent hook counters + brownout
        # timelines re-derived from events, NOT from the overload
        # manager's own hysteresis machine) ----------------------------
        self._hook_sheds = 0
        self._hook_rejects = 0
        self._browned_out: Dict[str, float] = {}   # server -> entered at
        self._brownout_low_since: Dict[str, float] = {}
        # -- hierarchical control-plane state (re-derived from
        # group-assigned / gem-aggregate events, NOT from the
        # hierarchy's own ServerGroupMap) ------------------------------
        self._group_of_server: Dict[str, int] = {}
        #: group -> recent (cpu_sum, server_count, actor_count) tuples,
        #: newest last.  Root rounds are compared against this short
        #: history rather than only the newest aggregate: an aggregate
        #: published while its delta is still in flight to the root is
        #: legitimate one-step staleness, not a folding bug.
        self._aggregate_history: Dict[int, List[tuple]] = {}
        # -- hierarchical failover state (re-derived from fault and
        # failover events, NOT from the RootGem's own flags) ------------
        self._root_failed = False
        self._root_generation = 0
        #: Groups whose aggregate stream broke (root failover/recovery,
        #: adoption change): their next gem-aggregate must be full.
        self._groups_needing_full: Set[int] = set()
        #: Root-issued migrations in flight: actor id -> started-at ms.
        self._root_inflight: Dict[int, float] = {}

    # -- partition side re-derivation ---------------------------------

    def _quorumless_side_names(self) -> Set[str]:
        """Server names on the minority side of any active partition,
        re-derived from fault events plus the current fleet (NOT from
        the manager's own isolation bookkeeping — same independence
        rule as the stability window)."""
        if not self._active_partitions:
            return set()
        running = {server.name
                   for server in self.manager.system.provisioner.servers
                   if server.running}
        quorumless: Set[str] = set()
        for info in self._active_partitions.values():
            group = set(info["group"]) & running
            rest = running - set(info["group"])
            # The side with a strict majority of running servers keeps
            # authority; ties leave the cut-off group quorum-less.
            if len(group) > len(rest):
                quorumless |= rest
            else:
                quorumless |= group
        return quorumless

    # -- expected stability window ------------------------------------

    def _expected_stability_ms(self) -> float:
        """One stability window, derived from raw config fields (NOT from
        ``EmrConfig.stability_window_ms`` — the checker must not inherit a
        bug in the runtime's own helper)."""
        config = self.manager.config
        if config.stability_ms is not None:
            return config.stability_ms
        return config.period_ms

    # -- lifecycle -----------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        system = self.manager.system
        # Adopt the state of a run already in progress, so attaching
        # mid-run never reports pre-existing actors as duplicates.
        for record in system.directory.records():
            actor_id = record.ref.actor_id
            self._alive[actor_id] = record.ref.type_name
            self._placed_at[actor_id] = record.last_placed_at
            self._server_of[actor_id] = record.server.name
        system.add_hooks(self._hooks)
        self.manager.add_listener(self._on_emr_event)
        self._prev_debug_events = self.manager.debug_events
        self.manager.debug_events = True
        self._cancel_sweep = system.sim.every(self.sweep_interval_ms,
                                              self._sweep)

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        system = self.manager.system
        if self._hooks in system.hooks:
            system.remove_hooks(self._hooks)
        self.manager.remove_listener(self._on_emr_event)
        self.manager.debug_events = self._prev_debug_events
        if self._cancel_sweep is not None:
            self._cancel_sweep()
            self._cancel_sweep = None

    # -- reporting -----------------------------------------------------

    def _violate(self, invariant: str, message: str, **detail: Any) -> None:
        assert invariant in INVARIANTS, f"unknown invariant {invariant!r}"
        if self.tracer is not None:
            detail = dict(detail)
            detail["trace_tail"] = [str(event)
                                    for event in self.tracer.tail(12)]
        violation = Violation(invariant=invariant,
                              time_ms=self.manager.system.sim.now,
                              message=message, detail=detail)
        if self.strict:
            raise InvariantError(violation)
        if len(self.violations) >= self.max_violations:
            self.dropped += 1
            return
        self.violations.append(violation)

    def report(self) -> str:
        """Human-readable summary of every collected violation."""
        if not self.violations:
            return "no invariant violations"
        lines = [f"{len(self.violations)} invariant violation(s)"
                 + (f" (+{self.dropped} dropped)" if self.dropped else "")]
        lines.extend(str(violation) for violation in self.violations)
        return "\n".join(lines)

    def violations_of(self, invariant: str) -> List[Violation]:
        return [violation for violation in self.violations
                if violation.invariant == invariant]

    def assert_clean(self) -> None:
        """Run :meth:`final_check` and raise ``AssertionError`` with the
        full report if any invariant was violated.  The one-liner test
        suites call after driving a simulation."""
        self.final_check()
        if self.violations:
            raise AssertionError(self.report())

    # -- actor-runtime hooks -------------------------------------------

    def _on_created(self, record: ActorRecord) -> None:
        actor_id = record.ref.actor_id
        now = self.manager.system.sim.now
        if actor_id in self._alive:
            self._violate(
                "actor-conservation",
                f"actor id {actor_id} created while already alive",
                actor=str(record.ref))
            if self._server_of.get(actor_id) in self._quorumless_side_names():
                self._violate(
                    "no-duplicate-actor",
                    f"actor id {actor_id} re-created while its copy on "
                    f"{self._server_of[actor_id]} is merely cut off by a "
                    f"partition", actor=str(record.ref),
                    old_server=self._server_of[actor_id])
        self._alive[actor_id] = record.ref.type_name
        self._lost.pop(actor_id, None)
        self._placed_at[actor_id] = now
        self._server_of[actor_id] = record.server.name

    def _on_destroyed(self, record: ActorRecord) -> None:
        actor_id = record.ref.actor_id
        if actor_id not in self._alive:
            self._violate(
                "actor-conservation",
                f"actor id {actor_id} destroyed but was not alive",
                actor=str(record.ref))
        self._alive.pop(actor_id, None)
        self._server_of.pop(actor_id, None)
        self._placed_at.pop(actor_id, None)
        self._inflight.pop(actor_id, None)
        self._root_inflight.pop(actor_id, None)

    def _on_migrated(self, record: ActorRecord, old_server: Server,
                     new_server: Server) -> None:
        actor_id = record.ref.actor_id
        now = self.manager.system.sim.now
        self._root_inflight.pop(actor_id, None)
        start = self._inflight.pop(actor_id, None)
        if start is not None and start["src"] != old_server.name:
            self._violate(
                "migration-sanity",
                f"migration of {record.ref} completed from "
                f"{old_server.name} but started from {start['src']}",
                actor=str(record.ref))
        if start is None:
            # No start event (a direct migrate_actor call, outside the
            # EMR): fall back to the completion time, which is >= the
            # start time, so this can only under-report — never a false
            # positive.
            placed = self._placed_at.get(actor_id)
            stability = self._expected_stability_ms()
            if placed is not None and now - placed < stability - _EPS:
                self._violate(
                    "stability-window",
                    f"{record.ref} migrated {now - placed:.1f}ms after "
                    f"placement; stability window is {stability:.1f}ms",
                    actor=str(record.ref), placed_at=placed)
        self._placed_at[actor_id] = now
        self._server_of[actor_id] = new_server.name
        self.checks_run += 1

    def _on_migration_aborted(self, record: ActorRecord, source: Server,
                              target: Server, reason: str) -> None:
        self._inflight.pop(record.ref.actor_id, None)
        self._root_inflight.pop(record.ref.actor_id, None)

    def _on_server_crashed(self, server: Server,
                           lost: List[ActorRecord]) -> None:
        self._crashed_servers.add(server.name)
        if self._first_fault_ms is None:
            self._first_fault_ms = self.manager.system.sim.now
        for record in lost:
            # crash_server destroys the lost actors (firing the destroy
            # hook) before announcing the crash, so they are already out
            # of the alive map here; record them as crash-lost so a
            # later resurrection is recognised as legitimate.
            actor_id = record.ref.actor_id
            self._alive.pop(actor_id, None)
            self._lost[actor_id] = record.ref.type_name
            self._server_of.pop(actor_id, None)
            self._placed_at.pop(actor_id, None)
            self._inflight.pop(actor_id, None)
            self._root_inflight.pop(actor_id, None)

    def _on_resurrected(self, record: ActorRecord) -> None:
        actor_id = record.ref.actor_id
        now = self.manager.system.sim.now
        if actor_id in self._alive:
            self._violate(
                "actor-conservation",
                f"actor id {actor_id} resurrected while still alive",
                actor=str(record.ref))
            if self._server_of.get(actor_id) in self._quorumless_side_names():
                self._violate(
                    "no-duplicate-actor",
                    f"actor id {actor_id} resurrected while its copy on "
                    f"{self._server_of[actor_id]} is merely cut off by a "
                    f"partition", actor=str(record.ref),
                    old_server=self._server_of[actor_id])
        elif actor_id not in self._lost:
            # Covers double-resurrection too: a successful resurrection
            # removes the id from the lost set, so a second resurrect
            # without an intervening crash lands here (or in the
            # still-alive branch above).
            self._violate(
                "actor-conservation",
                f"actor id {actor_id} resurrected but never lost to a "
                f"crash", actor=str(record.ref))
        self._alive[actor_id] = record.ref.type_name
        self._lost.pop(actor_id, None)
        self._placed_at[actor_id] = now
        self._server_of[actor_id] = record.server.name
        if not record.server.running:
            self._violate(
                "placement-consistency",
                f"{record.ref} resurrected onto non-running server "
                f"{record.server.name}", actor=str(record.ref))

    # -- EMR event bus -------------------------------------------------

    def _on_emr_event(self, kind: str, detail: Dict[str, Any]) -> None:
        if kind == "migration-started":
            self._check_migration_start(detail)
        elif kind == "actions-resolved":
            self._check_actions_resolved(detail)
        elif kind == "gem-vote":
            self._check_gem_vote(detail)
        elif kind == "scale-out":
            self._check_scale_decision("overloaded", "scale-out-majority",
                                       detail)
        elif kind == "scale-in":
            self._check_scale_decision("underloaded", "scale-in-majority",
                                       detail)
        elif kind == "lem-round":
            self._check_lem_round(detail)
        elif kind == "fault-injected":
            if self._first_fault_ms is None:
                self._first_fault_ms = self.manager.system.sim.now
            if detail.get("fault") == "partition-network":
                self._active_partitions[detail["partition_id"]] = {
                    "group": tuple(detail.get("group", ())),
                    "symmetric": detail.get("symmetric", True),
                    "loss": detail.get("loss", 1.0)}
            elif detail.get("fault") == "kill-root":
                self._root_failed = True
            elif detail.get("fault") == "crash-server":
                # Churn-time shard audit: a crash may remap the crashed
                # host's shard range — the coverage property must hold
                # *through* the handoff, not only at the next sweep.
                self._audit_shards()
        elif kind == "fault-healed":
            if detail.get("fault") == "partition-network":
                self._active_partitions.pop(detail.get("partition_id"),
                                            None)
            elif detail.get("fault") == "kill-root":
                self._check_root_healed(detail)
        elif kind == "epoch-advanced":
            self._check_epoch_advanced(detail)
        elif kind == "gem-degraded":
            self._check_event_epoch(kind, detail)
            self._degraded_gems.add(detail["gem_id"])
        elif kind == "gem-restored":
            self._check_event_epoch(kind, detail)
            self._degraded_gems.discard(detail["gem_id"])
        elif kind == "stale-epoch-rejected":
            self._check_stale_rejection(detail)
        elif kind == "partition-healed":
            self._check_partition_healed(detail)
        elif kind == "brownout-entered":
            self._browned_out[detail["server"]] = \
                self.manager.system.sim.now
            self._brownout_low_since.pop(detail["server"], None)
        elif kind == "brownout-exited":
            self._browned_out.pop(detail["server"], None)
            self._brownout_low_since.pop(detail["server"], None)
        elif kind == "checkpoint-written":
            self._check_checkpoint_written(detail)
        elif kind == "checkpoint-replicated":
            self._check_checkpoint_replicated(detail)
        elif kind == "state-restored":
            self._check_state_restored(detail)
        elif kind == "group-assigned":
            self._check_group_assigned(detail)
        elif kind == "gem-aggregate":
            self._check_gem_aggregate(detail)
        elif kind == "root-round":
            self._check_root_round(detail)
        elif kind == "root-failover":
            self._check_root_failover(detail)
        elif kind in ("group-adopted", "group-adoption-released"):
            # Either way the group's publisher changed: its delta
            # baseline was reset, so the next aggregate must be full.
            self.checks_run += 1
            self._groups_needing_full.add(detail.get("group"))
        elif kind == "shard-remapped":
            self._audit_shards()

    def _check_migration_start(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        now = self.manager.system.sim.now
        actor_id = detail["actor_id"]
        actor = detail.get("actor", actor_id)
        action_kind = detail["action"]
        if detail.get("pinned") and action_kind != "reserve":
            self._violate(
                "pin-integrity",
                f"{action_kind} migration started for pinned actor "
                f"{actor}", **detail)
        if actor_id in self._inflight:
            self._violate(
                "single-flight",
                f"migration of {actor} started while a previous one "
                f"(started at {self._inflight[actor_id]['at']:.1f}ms) "
                f"is still in flight", **detail)
        if detail["src"] == detail["dst"]:
            self._violate(
                "migration-sanity",
                f"migration of {actor} has src == dst "
                f"({detail['src']})", **detail)
        known_server = self._server_of.get(actor_id)
        if known_server is not None and known_server != detail["src"]:
            self._violate(
                "migration-sanity",
                f"migration of {actor} starts from {detail['src']} but "
                f"the actor is on {known_server}", **detail)
        if not detail.get("dst_running", True):
            self._violate(
                "migration-sanity",
                f"migration of {actor} targets non-running server "
                f"{detail['dst']}", **detail)
        if detail.get("dst_draining"):
            self._violate(
                "migration-sanity",
                f"migration of {actor} targets draining server "
                f"{detail['dst']}", **detail)
        placed = self._placed_at.get(actor_id)
        stability = self._expected_stability_ms()
        if placed is not None and now - placed < stability - _EPS:
            self._violate(
                "stability-window",
                f"{actor} migration started {now - placed:.1f}ms after "
                f"placement; stability window is {stability:.1f}ms",
                placed_at=placed, **detail)
        if self._active_partitions:
            quorumless = self._quorumless_side_names()
            for end in ("src", "dst"):
                if detail[end] in quorumless:
                    self._violate(
                        "no-split-brain",
                        f"migration of {actor} started with {end} "
                        f"{detail[end]} on a quorum-less partition side",
                        **detail)
        self._check_event_epoch("migration-started", detail)
        self._check_migration_authority(detail, actor)
        if detail.get("issuer") == "root":
            if self._root_failed:
                self._violate(
                    "root-single-authority",
                    f"root-issued migration of {actor} started while "
                    f"the root is failed", **detail)
            self._root_inflight[actor_id] = now
        self._inflight[actor_id] = {"at": now, "src": detail["src"],
                                    "dst": detail["dst"]}

    def _check_migration_authority(self, detail: Dict[str, Any],
                                   actor) -> None:
        """cross-group-single-authority, migration half: a resource
        migration (balance/reserve — drains surface as balance plans)
        crossing a group boundary must come from the root tier, and a
        root-issued one must actually cross.  Interaction migrations
        (colocate/separate) are actor-local authority and may cross
        freely.  Group membership comes from group-assigned events, so
        flat runs (no groups) skip the check entirely."""
        src_group = self._group_of_server.get(detail["src"])
        dst_group = self._group_of_server.get(detail["dst"])
        if src_group is None or dst_group is None:
            return
        issuer = detail.get("issuer", "lem")
        crosses = src_group != dst_group
        if (crosses and issuer != "root"
                and detail.get("action") in ("balance", "reserve")
                and not self._group_leaves_all_failed(src_group)
                and not self._group_leaves_all_failed(dst_group)):
            # The leaves-all-failed escape hatch: with its whole leaf
            # set down, a group's LEMs fall back to foreign leaves and
            # the group itself is adopted by a surviving leaf
            # (availability over locality).  The adopter plans over its
            # home *and* adopted servers in one pool, so its plans may
            # legitimately cross the boundary — in either direction.
            self._violate(
                "cross-group-single-authority",
                f"{detail.get('action')} migration of {actor} crosses "
                f"groups {src_group}->{dst_group} but was issued by "
                f"{issuer!r}, not the root tier", **detail)
        if issuer == "root" and not crosses:
            self._violate(
                "cross-group-single-authority",
                f"root-issued migration of {actor} stays inside group "
                f"{src_group} — the root arbitrates only cross-group "
                f"moves", **detail)

    def _group_leaves_all_failed(self, group: int) -> bool:
        hierarchy = getattr(self.manager, "hierarchy", None)
        if hierarchy is None:
            return False
        leaves = [gem for gem in self.manager.gems
                  if hierarchy.leaf_group.get(gem.gem_id) == group]
        return bool(leaves) and all(gem.failed for gem in leaves)

    def _check_actions_resolved(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        candidates: Dict[int, list] = detail["candidates"]
        chosen: Dict[int, tuple] = detail["chosen"]
        for actor_id, proposals in candidates.items():
            best_priority = max(priority for _kind, priority in proposals)
            picked = chosen.get(actor_id)
            if picked is None:
                self._violate(
                    "conflict-priority",
                    f"actor id {actor_id} had {len(proposals)} proposed "
                    f"action(s) but none survived resolution",
                    server=detail.get("server"), proposals=proposals)
                continue
            expected = next(item for item in proposals
                            if item[1] == best_priority)
            if tuple(picked) != tuple(expected):
                self._violate(
                    "conflict-priority",
                    f"actor id {actor_id}: resolution picked {picked} "
                    f"but the highest-priority proposal (earliest on "
                    f"ties) is {expected}",
                    server=detail.get("server"), proposals=proposals)
        for actor_id in chosen:
            if actor_id not in candidates:
                self._violate(
                    "conflict-priority",
                    f"resolution produced an action for actor id "
                    f"{actor_id} that nobody proposed",
                    server=detail.get("server"))

    def _check_gem_vote(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        invariant = ("scale-out-majority"
                     if detail.get("direction") == "overloaded"
                     else "scale-in-majority")
        requester = detail.get("requester")
        if requester in self._degraded_gems and not detail.get("vetoed"):
            self._violate(
                "no-split-brain",
                f"quorum-less GEM {requester} requested a "
                f"{detail.get('direction')} vote without being vetoed",
                **detail)
        if detail.get("vetoed"):
            if detail.get("decision"):
                self._violate(
                    invariant,
                    f"vetoed vote ({detail['vetoed']}) recorded a "
                    f"winning decision", **detail)
            return
        views = detail.get("peer_views", ())
        agreeing = 0
        for item in views:
            # Legacy traces carry 3-tuples; partition-aware runs append
            # a reachability flag as a 4th element.
            _gem, view, rounds = item[0], item[1], item[2]
            reachable = item[3] if len(item) > 3 else True
            if reachable and (view >= 0.5 or rounds == 0):
                agreeing += 1
        expected = agreeing * 2 >= len(views) if views else True
        if bool(detail.get("decision")) != expected:
            self._violate(
                invariant,
                f"recorded vote decision {detail.get('decision')} "
                f"disagrees with recomputed majority {expected} "
                f"({agreeing}/{len(views)} peers agreeing)", **detail)
        self._last_vote = {"at": self.manager.system.sim.now,
                           "direction": detail.get("direction"),
                           "decision": detail.get("decision")}

    def _check_scale_decision(self, direction: str, invariant: str,
                              detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        vote = self._last_vote
        now = self.manager.system.sim.now
        if (vote is None or vote["at"] != now
                or vote["direction"] != direction
                or not vote["decision"]):
            self._violate(
                invariant,
                f"fleet adjustment ({direction}) executed without a "
                f"same-tick winning majority vote", **detail)
        gem_id = detail.get("gem_id")
        if gem_id in self._degraded_gems:
            self._violate(
                "no-split-brain",
                f"quorum-less GEM {gem_id} executed a fleet adjustment "
                f"({direction})", **detail)

    # -- epoch fencing / partitions ------------------------------------

    def _check_epoch_advanced(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        epoch = detail.get("epoch", 0)
        if epoch <= self._last_epoch_seen:
            self._violate(
                "epoch-monotonicity",
                f"epoch advanced to {epoch} but {self._last_epoch_seen} "
                f"was already seen", **detail)
        if epoch > self.manager.epoch:
            self._violate(
                "epoch-monotonicity",
                f"epoch-advanced event carries epoch {epoch} beyond the "
                f"manager's global epoch {self.manager.epoch}", **detail)
        self._last_epoch_seen = max(self._last_epoch_seen, epoch)

    def _check_event_epoch(self, kind: str,
                           detail: Dict[str, Any]) -> None:
        epoch = detail.get("epoch")
        if epoch is None:
            return
        if epoch > self.manager.epoch:
            self._violate(
                "epoch-monotonicity",
                f"{kind} event carries epoch {epoch} beyond the "
                f"manager's global epoch {self.manager.epoch}", **detail)

    def _check_stale_rejection(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        gem_epoch = detail.get("gem_epoch", 0)
        lem_epoch = detail.get("lem_epoch", 0)
        if gem_epoch >= lem_epoch:
            self._violate(
                "epoch-monotonicity",
                f"LEM on {detail.get('server')} rejected GEM epoch "
                f"{gem_epoch} as stale against its own {lem_epoch}",
                **detail)

    def _check_partition_healed(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        self._check_event_epoch("partition-healed", detail)
        directory_ids = {record.ref.actor_id for record in
                         self.manager.system.directory.records()}
        revenants = sorted(directory_ids & set(self._lost))[:5]
        if revenants:
            self._violate(
                "no-duplicate-actor",
                f"after heal, actor ids {revenants} are both live in "
                f"the directory and still marked crash-lost",
                revenants=revenants, **detail)
        # Directory-vs-derived-state agreement (duplicate or lost
        # records) is re-checked by the regular sweep machinery.
        self._sweep()

    def _check_lem_round(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        server = detail.get("server", "?")
        for key in ("server_cpu_perc", "server_net_perc"):
            value = detail.get(key, 0.0)
            if not -_PERC_EPS <= value <= 100.0 + _PERC_EPS:
                self._violate(
                    "resource-accounting",
                    f"{server}: {key} out of range: {value:.3f}",
                    **{key: value, "server": server})
        if detail.get("server_mem_perc", 0.0) < -_PERC_EPS:
            self._violate(
                "resource-accounting",
                f"{server}: negative memory percentage", server=server)
        for value in detail.get("actor_cpu_percs", ()):
            if not -_PERC_EPS <= value <= 100.0 + _PERC_EPS:
                self._violate(
                    "resource-accounting",
                    f"{server}: actor cpu percentage out of range: "
                    f"{value:.3f}", server=server)
        if detail.get("actor_count") != len(detail.get("actor_cpu_percs",
                                                       ())):
            self._violate(
                "resource-accounting",
                f"{server}: snapshot actor_count "
                f"{detail.get('actor_count')} != "
                f"{len(detail.get('actor_cpu_percs', ()))} actor "
                f"snapshots", server=server)
        booked = detail.get("server_mem_used_mb", 0.0)
        summed = detail.get("actor_mem_mb", 0.0)
        if abs(booked - summed) > _MEM_EPS_MB:
            self._violate(
                "resource-accounting",
                f"{server}: actors' state memory sums to "
                f"{summed:.3f}MB but the server has {booked:.3f}MB "
                f"booked", server=server, booked=booked, summed=summed)
        self._check_brownout_exit(server, detail)

    def _check_brownout_exit(self, server: str,
                             detail: Dict[str, Any]) -> None:
        """brownout-exit: once a browned-out server's round CPU stays at
        or below the exit watermark, brownout must lift within a bounded
        window — (exit_rounds + 2) stretched periods gives the hysteresis
        its full budget plus scheduling slack.  Timeline re-derived from
        brownout-entered/-exited events and per-round CPU samples."""
        overload = getattr(self.manager, "overload", None)
        if overload is None or server not in self._browned_out:
            return
        now = self.manager.system.sim.now
        cpu = detail.get("server_cpu_perc", 0.0)
        oconfig = overload.config
        if cpu > oconfig.brownout_exit_cpu_perc + _PERC_EPS:
            self._brownout_low_since.pop(server, None)
            return
        low_since = self._brownout_low_since.setdefault(server, now)
        bound = ((oconfig.brownout_exit_rounds + 2)
                 * oconfig.brownout_stretch * self.manager.config.period_ms)
        if now - low_since > bound + _EPS:
            self._violate(
                "brownout-exit",
                f"{server} has reported CPU <= the exit watermark "
                f"({oconfig.brownout_exit_cpu_perc:.0f}%) for "
                f"{now - low_since:.0f}ms but is still browned out "
                f"(bound: {bound:.0f}ms)", server=server,
                low_since=low_since, cpu_perc=cpu)
            # One violation per stuck episode, not one per round.
            self._browned_out.pop(server, None)
            self._brownout_low_since.pop(server, None)

    # -- durability: checkpoints and restores --------------------------

    def _link_cut(self, first: str, second: str) -> bool:
        """Is either direction between the two named servers severed by
        an active *absolute* cut?  Lossy partitions (``loss < 1``) do
        not sever a link — mirrors ``NetworkFabric.link_blocked``, but
        re-derived from fault events."""
        for info in self._active_partitions.values():
            if info.get("loss", 1.0) < 1.0:
                continue
            group = set(info["group"])
            if (first in group) != (second in group):
                return True
        return False

    def _check_checkpoint_written(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        actor_id = detail["actor_id"]
        seq = detail["seq"]
        last = self._written_seq.get(actor_id, 0)
        if seq <= last:
            self._violate(
                "checkpoint-monotonicity",
                f"checkpoint seq {seq} written for actor id {actor_id} "
                f"after seq {last}", **detail)
        self._written_seq[actor_id] = max(last, seq)

    def _check_checkpoint_replicated(self, detail: Dict[str, Any]) -> None:
        self.checks_run += 1
        actor_id = detail["actor_id"]
        seq = detail["seq"]
        last = self._acked_seq.get(actor_id, 0)
        if seq <= last:
            self._violate(
                "checkpoint-monotonicity",
                f"checkpoint seq {seq} acknowledged for actor id "
                f"{actor_id} after seq {last} was already acknowledged",
                **detail)
        if seq > self._written_seq.get(actor_id, 0):
            self._violate(
                "checkpoint-monotonicity",
                f"checkpoint seq {seq} acknowledged for actor id "
                f"{actor_id} but never written", **detail)
        self._acked_seq[actor_id] = max(last, seq)
        self._acked_cps.setdefault(actor_id, {})[seq] = {
            "digest": detail.get("digest"),
            "replicas": tuple(detail.get("replicas", ()))}

    def _check_state_restored(self, detail: Dict[str, Any]) -> None:
        """state-durability and no-minority-restore.

        Eligibility is re-derived: an acknowledged checkpoint counts as
        readable when at least one of its replicas is on a server that
        is not crashed, not on a quorum-less partition side, and whose
        link to the restoring host is not severed — the same facts the
        runtime must honour, recomputed from events and the fleet."""
        self.checks_run += 1
        actor_id = detail["actor_id"]
        actor = detail.get("actor", actor_id)
        seq = detail["seq"]
        host = detail.get("server")
        quorumless = self._quorumless_side_names()
        replica = detail.get("replica")
        if replica in quorumless:
            self._violate(
                "no-minority-restore",
                f"{actor} restored from replica on {replica}, which is "
                f"on a quorum-less partition side", **detail)
        acked = self._acked_cps.get(actor_id, {})
        if seq not in acked:
            self._violate(
                "state-durability",
                f"{actor} restored from checkpoint seq {seq}, which "
                f"was never acknowledged", **detail)
            return
        recorded = acked[seq]
        if (recorded["digest"] is not None
                and detail.get("digest") != recorded["digest"]):
            self._violate(
                "state-durability",
                f"{actor} restored state digest {detail.get('digest')} "
                f"does not round-trip to checkpoint seq {seq}'s digest "
                f"{recorded['digest']}", **detail)

        # The running fleet, not just crash events: a replica on a
        # retired (scaled-in) server is just as unreadable as one on a
        # crashed server.
        running = {server.name
                   for server in self.manager.system.provisioner.servers
                   if server.running}

        def readable(info: Dict[str, Any]) -> bool:
            return any(name in running
                       and name not in self._crashed_servers
                       and name not in quorumless
                       and (host is None or not self._link_cut(host, name))
                       for name in info["replicas"])

        newest_readable = max(
            (s for s, info in acked.items() if readable(info)), default=0)
        if seq < newest_readable:
            self._violate(
                "state-durability",
                f"{actor} restored from checkpoint seq {seq} but seq "
                f"{newest_readable} is acknowledged and still readable",
                newest_readable=newest_readable, **detail)

    # -- hierarchical control plane ------------------------------------

    def _check_group_assigned(self, detail: Dict[str, Any]) -> None:
        """cross-group-single-authority, membership half: a server is
        assigned to exactly one group, forever (membership never
        reshuffles — a crashed server keeps its slot)."""
        self.checks_run += 1
        server = detail.get("server")
        group = detail.get("group")
        known = self._group_of_server.get(server)
        if known is not None and known != group:
            self._violate(
                "cross-group-single-authority",
                f"server {server} reassigned from group {known} to "
                f"group {group}", **detail)
            return
        self._group_of_server[server] = group

    def _check_gem_aggregate(self, detail: Dict[str, Any]) -> None:
        """aggregate-consistency, leaf half: the carried sums must equal
        a recomputation over the carried per-server values, and every
        covered server must belong to the aggregate's group."""
        self.checks_run += 1
        group = detail.get("group")
        if group in self._groups_needing_full:
            # aggregate-resync-after-failover: this group's stream broke
            # (root failover/recovery or an adoption change reset the
            # delta baseline), so this aggregate must ship every field.
            self._groups_needing_full.discard(group)
            shipped = set(detail.get("delta_fields", ()))
            missing = sorted(_AGGREGATE_FIELDS - shipped)
            if missing:
                self._violate(
                    "aggregate-resync-after-failover",
                    f"group {group}'s first aggregate after a failover "
                    f"is a delta (missing fields: {missing}) — the new "
                    f"publisher/consumer has no baseline to fold it "
                    f"onto", **detail)
        cpu_percs = tuple(detail.get("server_cpu_percs", ()))
        names = tuple(detail.get("server_names", ()))
        cpu_sum = detail.get("cpu_sum", 0.0)
        tolerance = _PERC_EPS * max(1, len(cpu_percs))
        if abs(sum(cpu_percs) - cpu_sum) > tolerance:
            self._violate(
                "aggregate-consistency",
                f"group {group} aggregate carries cpu_sum "
                f"{cpu_sum:.3f} but its per-server values sum to "
                f"{sum(cpu_percs):.3f}", **detail)
        if detail.get("server_count") != len(names) \
                or len(names) != len(cpu_percs):
            self._violate(
                "aggregate-consistency",
                f"group {group} aggregate server_count "
                f"{detail.get('server_count')} != {len(names)} named "
                f"servers / {len(cpu_percs)} cpu values", **detail)
        for name in names:
            assigned = self._group_of_server.get(name)
            if assigned is not None and assigned != group:
                self._violate(
                    "aggregate-consistency",
                    f"group {group} aggregate covers server {name}, "
                    f"which is assigned to group {assigned}", **detail)
        history = self._aggregate_history.setdefault(group, [])
        history.append((cpu_sum, detail.get("server_count"),
                        detail.get("actor_count")))
        del history[:-3]

    def _check_root_round(self, detail: Dict[str, Any]) -> None:
        """aggregate-consistency, root half: every folded per-group view
        must match one of the group's recently published full aggregates
        (a delta-folding bug makes the view match none of them).  Also
        the root-single-authority half that polices rounds: a failed or
        superseded root incarnation must not hold rounds."""
        self.checks_run += 1
        if self._root_failed:
            self._violate(
                "root-single-authority",
                "root round held while the root is failed", **detail)
        generation = detail.get("generation")
        if generation is not None:
            if generation < self._root_generation:
                self._violate(
                    "root-single-authority",
                    f"root round carries generation {generation} but "
                    f"the latest promoted generation is "
                    f"{self._root_generation} — a superseded root is "
                    f"still holding rounds", **detail)
            else:
                # A higher generation is a promotion that happened while
                # the tree was inert (no root-failover event is emitted
                # then); adopt it.
                self._root_generation = generation
        for item in detail.get("groups", ()):
            group, cpu_sum, server_count, actor_count = item
            history = self._aggregate_history.get(group)
            if not history:
                self._violate(
                    "aggregate-consistency",
                    f"root folded a view for group {group}, which never "
                    f"published an aggregate", **detail)
                continue
            matched = any(
                abs(cpu_sum - h_cpu) <= _PERC_EPS * max(1, h_servers or 1)
                and server_count == h_servers and actor_count == h_actors
                for h_cpu, h_servers, h_actors in history)
            if not matched:
                self._violate(
                    "aggregate-consistency",
                    f"root view of group {group} "
                    f"(cpu_sum={cpu_sum:.3f}, servers={server_count}, "
                    f"actors={actor_count}) matches none of the group's "
                    f"recent aggregates {history}", **detail)

    def _check_root_failover(self, detail: Dict[str, Any]) -> None:
        """root-single-authority, promotion half: generations only move
        forward, and a promotion transfers authority — the old
        incarnation is retired, the new one rules.  Every known group's
        aggregate stream restarts from a full publish."""
        self.checks_run += 1
        generation = detail.get("generation")
        if generation is not None:
            if generation <= self._root_generation:
                self._violate(
                    "root-single-authority",
                    f"root failover to generation {generation} does not "
                    f"advance the latest generation "
                    f"{self._root_generation}", **detail)
            self._root_generation = max(self._root_generation, generation)
        self._root_failed = False
        self._groups_needing_full.update(self._group_of_server.values())

    def _check_root_healed(self, detail: Dict[str, Any]) -> None:
        """A ``kill-root`` heal: a superseded incarnation stays retired
        (the promotion already transferred authority); a genuine
        recovery restores authority to the same generation, with its
        views wiped — so every group must republish in full."""
        self.checks_run += 1
        if detail.get("superseded"):
            return
        self._root_failed = False
        self._groups_needing_full.update(self._group_of_server.values())

    def _audit_shards(self) -> None:
        """Sharded directory: audit ring ownership vs the shard maps vs
        the authoritative map.  Runs every sweep *and* at churn time
        (crash-server injections and shard remaps), so a handoff that
        transiently loses or duplicates records is caught in the act."""
        coverage = getattr(self.manager.system.directory,
                           "coverage_errors", None)
        if coverage is None:
            return
        self.checks_run += 1
        for error in coverage()[:5]:
            self._violate("shard-coverage", error)

    def _check_stranded_root_migrations(self) -> None:
        """no-stranded-cross-group-migration: every root-issued
        migration must reach commit or rollback within the two-phase
        timeout budget, whatever happened to the root meanwhile.  The
        bound is generous — drain + two phase-timeout waits + transfer —
        so tripping it means the protocol genuinely lost the migration,
        not that it is merely slow."""
        now = self.manager.system.sim.now
        config = self.manager.config
        bound = (3 * config.migration_phase_timeout_ms
                 + 2 * config.period_ms)
        for actor_id, started in list(self._root_inflight.items()):
            if now - started > bound:
                del self._root_inflight[actor_id]
                self._violate(
                    "no-stranded-cross-group-migration",
                    f"root-issued migration of actor {actor_id} started "
                    f"at {started:.1f}ms is still unresolved after "
                    f"{now - started:.1f}ms (bound {bound:.1f}ms)",
                    actor_id=actor_id, started_at=started)

    # -- periodic sweep ------------------------------------------------

    def _sweep(self) -> None:
        self.checks_run += 1
        system = self.manager.system
        directory_ids = set()
        mem_by_server: Dict[int, float] = {}
        for record in system.directory.records():
            directory_ids.add(record.ref.actor_id)
            if not record.server.running:
                self._violate(
                    "placement-consistency",
                    f"{record.ref} is hosted on non-running server "
                    f"{record.server.name}", actor=str(record.ref))
            sid = record.server.server_id
            mem_by_server[sid] = (mem_by_server.get(sid, 0.0)
                                  + record.instance.state_size_mb)
        for server in system.provisioner.servers:
            if not server.running:
                continue
            expected = mem_by_server.get(server.server_id, 0.0)
            if abs(server.memory_used_mb - expected) > _MEM_EPS_MB:
                self._violate(
                    "resource-accounting",
                    f"{server.name}: booked memory "
                    f"{server.memory_used_mb:.3f}MB != "
                    f"{expected:.3f}MB of hosted actor state",
                    server=server.name)
        overload = getattr(system, "overload", None)
        if overload is not None and overload.config.mailbox_capacity:
            capacity = overload.config.mailbox_capacity
            for record in system.directory.records():
                depth = system.mailbox_depth(record.ref.actor_id)
                if depth > capacity:
                    self._violate(
                        "no-message-loss-without-shed-record",
                        f"{record.ref} mailbox holds {depth} messages; "
                        f"configured capacity is {capacity}",
                        actor=str(record.ref), depth=depth,
                        capacity=capacity)
        self._audit_shards()
        self._check_stranded_root_migrations()
        tracked = set(self._alive)
        if tracked != directory_ids:
            missing = sorted(tracked - directory_ids)[:5]
            extra = sorted(directory_ids - tracked)[:5]
            self._violate(
                "actor-conservation",
                f"directory and event-derived live set disagree "
                f"(missing from directory: {missing}, untracked: "
                f"{extra})", missing=missing, extra=extra)

    # -- end of run ----------------------------------------------------

    def final_check(self) -> List[Violation]:
        """Run the end-of-run checks and return all violations."""
        self._sweep()
        self._check_conservation()
        fault_free = (self._first_fault_ms is None
                      and not self._crashed_servers)
        if fault_free:
            for index, meter in enumerate(self.meters):
                counts = meter.counts_between(0.0,
                                              self.manager.system.sim.now)
                bad = (counts.get("failure", 0)
                       + counts.get("timeout", 0))
                if bad:
                    self._violate(
                        "availability-consistency",
                        f"meter {index}: {bad} failed/timed-out calls "
                        f"in a fault-free run", counts=dict(counts))
        return self.violations

    def _check_conservation(self) -> None:
        """admission-conservation + no-message-loss-without-shed-record:
        audit the overload manager's disposition ledger against itself
        and against the checker's own hook counters."""
        overload = getattr(self.manager, "overload", None)
        if overload is None:
            return
        self.checks_run += 1
        for mid, first, second in overload.double_dispositions[:5]:
            self._violate(
                "admission-conservation",
                f"message {mid} reached two terminal dispositions: "
                f"{first!r} then {second!r}", message_id=mid,
                first=first, second=second)
        balance = overload.conservation_balance()
        issued = balance.pop("issued")
        outstanding = balance.pop("outstanding")
        terminal = sum(balance.values())
        if issued != terminal + outstanding:
            self._violate(
                "admission-conservation",
                f"{issued} client messages issued but "
                f"{terminal} terminal + {outstanding} outstanding = "
                f"{terminal + outstanding}", issued=issued,
                outstanding=outstanding, **balance)
        # Every drop the data plane performed fired a hook the checker
        # counted; the ledger must have a record for each of them.
        if self._hook_sheds > overload.total_shed():
            self._violate(
                "no-message-loss-without-shed-record",
                f"hooks observed {self._hook_sheds} shed messages but "
                f"the ledger records only {overload.total_shed()}",
                hook_sheds=self._hook_sheds,
                ledger_sheds=overload.total_shed())
        if self._hook_rejects > overload.counts["rejected"]:
            self._violate(
                "admission-conservation",
                f"hooks observed {self._hook_rejects} rejected requests "
                f"but the ledger records only "
                f"{overload.counts['rejected']}",
                hook_rejects=self._hook_rejects,
                ledger_rejects=overload.counts["rejected"])
