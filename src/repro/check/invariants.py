"""The invariant catalogue and the violation record type.

Each invariant has a stable kebab-case name used in violation reports,
corpus artifacts, and the documentation (``docs/testing.md``).  The
checker in :mod:`repro.check.checker` evaluates them continuously from
runtime events; this module is the single place their meaning is
written down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["INVARIANTS", "Violation", "InvariantError"]


#: name -> one-line statement of the property.  Keep in sync with
#: docs/testing.md (the tests assert the two lists match).
INVARIANTS: Dict[str, str] = {
    "stability-window": (
        "an actor never starts a migration before it has spent one full "
        "stability window (default: one elasticity period) on its "
        "current placement"),
    "pin-integrity": (
        "no executed migration moves a pinned actor, except an explicit "
        "reserve (which outranks pin in the paper's priority order)"),
    "conflict-priority": (
        "conflict resolution keeps, for every actor, an action whose "
        "priority is the maximum over all actions proposed for that "
        "actor in the round (ties broken by proposal order)"),
    "scale-out-majority": (
        "every fleet scale-out decision is backed by a GEM majority "
        "vote whose recomputed outcome agrees with the recorded one"),
    "scale-in-majority": (
        "every fleet scale-in (server drain) decision is backed by a "
        "GEM majority vote whose recomputed outcome agrees with the "
        "recorded one"),
    "actor-conservation": (
        "no actor is lost or duplicated: every live actor id has "
        "exactly one directory record, resurrections only revive "
        "actors actually lost to a crash, and never twice"),
    "single-flight": (
        "an actor never has two overlapping migrations: a started "
        "migration completes or aborts before the next one starts"),
    "migration-sanity": (
        "every started migration has src != dst, starts from the "
        "server that actually hosts the actor, and targets a running, "
        "non-draining server"),
    "resource-accounting": (
        "per-server snapshots account for their actors: state memory "
        "of hosted actors sums to the server's booked memory, and "
        "every snapshot percentage lies in [0, 100] (memory may "
        "exceed 100 only through explicit oversubscription)"),
    "availability-consistency": (
        "client availability meters record failures/timeouts only "
        "when faults were actually injected (or a server crashed); a "
        "fault-free run is 100% available"),
    "placement-consistency": (
        "at every sweep, each directory record is hosted on a running "
        "server and pending placements match the provisioner's fleet"),
    "no-split-brain": (
        "while a partition denies a GEM its quorum, that GEM requests "
        "no scale votes, executes no fleet changes, and no migration "
        "starts from or onto a quorum-less side's servers"),
    "epoch-monotonicity": (
        "control-plane epochs only move forward: every event-carried "
        "epoch is non-decreasing over time and never exceeds the "
        "manager's global epoch"),
    "no-duplicate-actor": (
        "an actor alive on an unreachable-but-running server is never "
        "resurrected or re-created elsewhere while the partition "
        "lasts, and after heal every actor id has exactly one record"),
    "state-durability": (
        "a restored actor's state is exactly the newest acknowledged "
        "checkpoint that still has a readable replica (not crashed, "
        "not quorum-less, link to the new host not severed), verified "
        "by round-trip digest — never an unacknowledged or stale one"),
    "checkpoint-monotonicity": (
        "per-actor checkpoint sequence numbers strictly increase, "
        "separately for writes and for acknowledgements: an "
        "acknowledged checkpoint is never re-acknowledged and never "
        "superseded by a lower sequence"),
    "no-minority-restore": (
        "while a partition is active, no state restore reads from a "
        "replica hosted on a quorum-less side's server"),
    "no-message-loss-without-shed-record": (
        "with overload protection active, no bounded mailbox ever "
        "exceeds its capacity, and every message dropped by the data "
        "plane leaves a shed record (ledger counts agree with hook "
        "observations)"),
    "admission-conservation": (
        "every client message reaches exactly one terminal "
        "disposition — delivered, shed, rejected, deadline-dropped, "
        "fabric-lost, or dead on a crashed/missing target — never "
        "zero, never two: issued equals the terminal sum plus "
        "messages still in flight"),
    "brownout-exit": (
        "brownout is not sticky: once a browned-out server's load "
        "falls back below the exit watermark, brownout lifts within a "
        "bounded number of (stretched) reporting rounds"),
    "shard-coverage": (
        "with a sharded directory, every live actor record lives in "
        "exactly one shard map — the consistent-hash ring owner's — "
        "and the union of the shard maps is exactly the authoritative "
        "directory (no dead records linger in any shard)"),
    "aggregate-consistency": (
        "every published group aggregate carries sums that equal the "
        "recomputation over its per-server values, covers only servers "
        "assigned to that group, and the root tier's delta-folded view "
        "of each group matches the group's latest full aggregate"),
    "cross-group-single-authority": (
        "every server belongs to exactly one server group, resource "
        "migrations (balance/reserve/drain) crossing a group boundary "
        "are issued only by the root tier, and every root-issued "
        "migration actually crosses a group boundary"),
    "root-single-authority": (
        "at most one root incarnation holds authority at a time: while "
        "the root is failed no root round runs and no root-issued "
        "migration starts, root generations only move forward, and a "
        "root round never carries a generation other than the latest "
        "promoted one"),
    "aggregate-resync-after-failover": (
        "whenever a group's aggregate stream breaks — root promotion "
        "or recovery, group adoption or release — the next aggregate "
        "published for that group is full (every field ships), never a "
        "delta against a baseline the new consumer or publisher does "
        "not have"),
    "no-stranded-cross-group-migration": (
        "a root-issued cross-group migration started before the root "
        "died is driven to commit or rollback by the two-phase "
        "timeouts: no actor stays marked migrating longer than the "
        "phase-timeout bound, and none is left migrating at the end of "
        "the run beyond that bound"),
}


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation."""

    invariant: str
    time_ms: float
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"[{self.time_ms / 1000.0:9.3f}s] {self.invariant}: "
                f"{self.message}")


class InvariantError(AssertionError):
    """Raised in strict mode at the moment an invariant breaks."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation
