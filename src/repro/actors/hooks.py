"""Observation hooks the actor runtime exposes.

PLASMA's design keeps the elasticity profiling runtime (EPR) *outside*
the application runtime: "the EPR only collects runtime data of actors"
(§2.2).  The actor system therefore publishes events through this narrow
interface and the EPR subscribes to it; disabling profiling is simply not
subscribing, which is how the Table 3 overhead experiment runs its
vanilla configuration.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Server
    from .directory import ActorRecord
    from .message import Message

__all__ = ["RuntimeHooks"]


class RuntimeHooks:
    """Subscriber interface for actor runtime events.  All methods are
    no-ops by default; subclasses override what they observe."""

    def on_actor_created(self, record: "ActorRecord") -> None:
        """A new actor was placed on ``record.server``."""

    def on_actor_destroyed(self, record: "ActorRecord") -> None:
        """An actor was removed from the system."""

    def on_message_delivered(self, record: "ActorRecord",
                             message: "Message") -> None:
        """``message`` entered ``record``'s mailbox on its current server."""

    def on_message_shed(self, record: "ActorRecord", message: "Message",
                        reason: str) -> None:
        """``message`` was dropped by ``record``'s bounded mailbox.
        ``reason`` is ``"shed"`` (mailbox full) or ``"deadline"`` (the
        client's deadline expired before arrival)."""

    def on_request_rejected(self, record: "ActorRecord",
                            message: "Message") -> None:
        """Server-level admission control refused the client call
        ``message`` before it entered ``record``'s mailbox."""

    def on_compute(self, record: "ActorRecord", busy_ms: float) -> None:
        """``record`` occupied a core for ``busy_ms`` (speed-scaled)."""

    def on_bytes_sent(self, record: "ActorRecord", nbytes: float) -> None:
        """``record`` sent ``nbytes`` over the network (remote only)."""

    def on_bytes_received(self, record: "ActorRecord", nbytes: float) -> None:
        """``record`` received ``nbytes`` over the network (remote only)."""

    def on_actor_migrated(self, record: "ActorRecord", old_server: "Server",
                          new_server: "Server") -> None:
        """A live migration of ``record`` completed."""

    def on_migration_aborted(self, record: "ActorRecord", source: "Server",
                             target: "Server", reason: str) -> None:
        """A started migration was abandoned mid-transfer.  ``reason`` is
        ``"actor-lost"`` (the actor died with its source server) or
        ``"target-crashed"`` (the destination died during the transfer;
        the actor stays on ``source``)."""

    def on_server_crashed(self, server: "Server",
                          lost: "List[ActorRecord]") -> None:
        """``server`` failed.  ``lost`` holds the (now dead) directory
        records of every actor that was hosted there — consumers such as
        the elasticity runtime keep them as tombstones for resurrection."""

    def on_actor_resurrected(self, record: "ActorRecord") -> None:
        """An actor lost to a server crash was re-created (same ref,
        fresh state) on ``record.server``."""
