"""Actor runtime substrate (the AEON stand-in).

Public surface:

- :class:`Actor` — base class for application actors.
- :class:`ActorRef` — location-transparent handle.
- :class:`ActorSystem` — creation, messaging, live migration.
- :class:`Client` — external request source with latency recording.
- :class:`RuntimeHooks` — observation interface used by profiling.
- :func:`describe_actor_class`, :class:`ActorTypeSchema` — program schema
  extraction consumed by the EPL compiler.
"""

from .actor import ANY_TYPE, Actor, ActorTypeSchema, describe_actor_class
from .client import Client, DeadLetter
from .directory import ActorRecord, Directory
from .hooks import RuntimeHooks
from .message import CLIENT_KIND, Message, Overloaded
from .refs import ActorRef
from .sharded_directory import HashRing, ShardedDirectory
from .system import ActorSystem, PlacementPolicy

__all__ = [
    "Actor",
    "ActorRef",
    "ActorRecord",
    "ActorSystem",
    "ActorTypeSchema",
    "ANY_TYPE",
    "CLIENT_KIND",
    "Client",
    "DeadLetter",
    "Directory",
    "HashRing",
    "Message",
    "Overloaded",
    "PlacementPolicy",
    "RuntimeHooks",
    "ShardedDirectory",
    "describe_actor_class",
]
