"""Consistent-hash-sharded actor directory.

The flat :class:`~repro.actors.directory.Directory` is one authoritative
map — the control-plane scalability killer once the fleet grows past a
few hundred servers ("Scaling Reliably" makes the same argument for
distributed Erlang's global namespace).  This module shards the id space
over a virtual-node consistent-hash ring:

- **Ownership**: every actor id hashes to exactly one shard (the first
  virtual node clockwise on the ring).  Virtual nodes keep remapping
  bounded when shards are added or removed: only the keys whose owning
  arc moved change shards, ~``K/N`` of the keyspace per shard change.
- **Per-LEM lookup caches**: each server's LEM resolves remote actors
  through a local cache.  Cache entries are **epoch-fenced**: a
  migration commit bumps the actor's commit epoch and invalidates every
  cached entry, so a cache can never serve an entry that predates the
  commit.  The property tests in
  ``tests/actors/test_sharded_directory.py`` pin this.
- **Miss path**: a message already in flight to the pre-commit host is
  *not* recalled — the stale host forwards it, paying one extra hop
  (``ActorSystem._deliver``'s existing forwarding path, unchanged).
  Staleness is therefore bounded to messages sent before the commit.
- **Shard hosting and crash handoff**: shards are optionally *bound* to
  host servers (:meth:`ShardedDirectory.bind_hosts`, round-robin; the
  elasticity manager does this at start).  When a host crashes,
  :meth:`ShardedDirectory.note_host_crashed` removes its shards from
  the ring — the departing ranges rehash onto the surviving shards with
  bounded movement — and drops the crashed server's lookup cache.  The
  last shard is never removed (the id space must stay covered); it just
  becomes unhosted.  ``coverage_errors`` audits the remap, and the
  invariant checker runs that audit *during* churn (on every
  crash/remap event), not only at the periodic sweep.

The class subclasses ``Directory`` so iteration-order-sensitive
consumers (the invariant checker's sweep, ``on_server``, golden traces)
see the exact same insertion-ordered view as the flat map; the shard
maps partition the same records for routing and are what the
``shard-coverage`` invariant audits.

Hashing uses ``blake2b`` (stable across processes — never builtin
``hash``, which ``PYTHONHASHSEED`` would randomize and break replay
determinism).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from .directory import ActorRecord, Directory

__all__ = ["HashRing", "ShardedDirectory"]


def _hash64(data: str) -> int:
    digest = hashlib.blake2b(data.encode("ascii"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Virtual-node consistent-hash ring mapping keys to shard ids."""

    def __init__(self, virtual_nodes: int = 16) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be at least 1")
        self.virtual_nodes = virtual_nodes
        self._points: List[Tuple[int, int]] = []  # (hash, shard_id) sorted
        self._shards: List[int] = []

    def add_shard(self, shard_id: int) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._shards.append(shard_id)
        for vnode in range(self.virtual_nodes):
            self._points.append((_hash64(f"shard:{shard_id}:{vnode}"),
                                 shard_id))
        self._points.sort()

    def remove_shard(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id} not on the ring")
        self._shards.remove(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]

    def shards(self) -> List[int]:
        return list(self._shards)

    def owner(self, key: int) -> int:
        """Shard owning ``key``: first virtual node clockwise."""
        if not self._points:
            raise ValueError("ring has no shards")
        index = bisect_right(self._points, (_hash64(f"key:{key}"), -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


class ShardedDirectory(Directory):
    """Directory whose id space is partitioned over a hash ring.

    Drop-in for :class:`Directory`: the inherited insertion-ordered map
    stays authoritative for iteration (``records``/``on_server``/...),
    while per-shard maps partition the same records for ownership and
    the per-LEM caches model the lookup path a real deployment would
    take.  ``try_lookup`` routes through the owning shard's map, so a
    shard-bookkeeping bug surfaces as a failed lookup, not silence.
    """

    def __init__(self, shards: int = 4, virtual_nodes: int = 16) -> None:
        super().__init__()
        if shards < 1:
            raise ValueError("need at least one shard")
        self.ring = HashRing(virtual_nodes)
        self._shard_records: Dict[int, Dict[int, ActorRecord]] = {}
        for shard_id in range(shards):
            self.ring.add_shard(shard_id)
            self._shard_records[shard_id] = {}
        #: Per-cache-id (server id) lookup caches: actor id -> (record,
        #: epoch at fill time).
        self._caches: Dict[int, Dict[int, Tuple[ActorRecord, int]]] = {}
        #: Commit epoch per actor: bumped by ``note_commit`` when a
        #: migration flips the record, fencing out stale cache entries.
        self._commit_epoch: Dict[int, int] = {}
        #: shard id -> hosting server id (``bind_hosts``); unbound
        #: shards survive any crash.
        self._shard_host: Dict[int, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        self.shards_lost = 0

    # -- shard ownership ------------------------------------------------

    def shard_of(self, actor_id: int) -> int:
        return self.ring.owner(actor_id)

    def shard_ids(self) -> List[int]:
        return self.ring.shards()

    def shard_records(self, shard_id: int) -> Dict[int, ActorRecord]:
        return self._shard_records.get(shard_id, {})

    def add_shard(self, shard_id: int) -> int:
        """Grow the ring; returns how many records changed owner (the
        bounded-remapping property)."""
        self.ring.add_shard(shard_id)
        self._shard_records.setdefault(shard_id, {})
        return self._remap()

    def remove_shard(self, shard_id: int) -> int:
        """Shrink the ring; the departing shard's records rehash to the
        survivors.  Returns how many records changed owner."""
        if len(self.ring.shards()) <= 1:
            raise ValueError("cannot remove the last shard")
        self.ring.remove_shard(shard_id)
        moved = self._remap()
        self._shard_records.pop(shard_id, None)
        return moved

    def _remap(self) -> int:
        moved = 0
        for shard_id, records in list(self._shard_records.items()):
            for actor_id in list(records):
                owner = self.ring.owner(actor_id)
                if owner != shard_id:
                    self._shard_records[owner][actor_id] = \
                        records.pop(actor_id)
                    moved += 1
        return moved

    # -- shard hosting / crash handoff ----------------------------------

    def bind_hosts(self, servers: Iterable) -> None:
        """Pin each shard to a host server, round-robin over ``servers``
        in fleet order.  Idempotent per shard — rebinding does not move
        already-bound shards."""
        hosts = [server.server_id for server in servers]
        if not hosts:
            return
        for index, shard_id in enumerate(sorted(self._shard_records)):
            self._shard_host.setdefault(shard_id, hosts[index % len(hosts)])

    def shard_host(self, shard_id: int) -> Optional[int]:
        """Server id hosting ``shard_id``, or ``None`` if unbound."""
        return self._shard_host.get(shard_id)

    def note_host_crashed(self, server_id: int) -> Tuple[int, int]:
        """A shard host left the fleet: remove the shards it hosted
        from the ring (their ranges rehash onto the survivors) and drop
        its lookup cache.  The last shard on the ring is never removed —
        the id space must stay covered — it merely becomes unhosted.

        Returns ``(shards_removed, records_moved)``.
        """
        self._caches.pop(server_id, None)
        hosted = sorted(shard_id
                        for shard_id, host in self._shard_host.items()
                        if host == server_id)
        shards_removed = 0
        records_moved = 0
        for shard_id in hosted:
            del self._shard_host[shard_id]
            if len(self.ring.shards()) <= 1:
                continue  # sole surviving shard: unhosted, not removed
            records_moved += self.remove_shard(shard_id)
            shards_removed += 1
            self.shards_lost += 1
        return shards_removed, records_moved

    # -- Directory surface ---------------------------------------------

    def register(self, record: ActorRecord) -> None:
        super().register(record)
        shard_id = self.ring.owner(record.ref.actor_id)
        self._shard_records[shard_id][record.ref.actor_id] = record

    def unregister(self, actor_id: int) -> None:
        super().unregister(actor_id)
        shard = self._shard_records.get(self.ring.owner(actor_id))
        if shard is not None:
            shard.pop(actor_id, None)
        self._invalidate(actor_id)

    def try_lookup(self, actor_id: int) -> Optional[ActorRecord]:
        shard = self._shard_records.get(self.ring.owner(actor_id))
        if shard is None:
            return None
        return shard.get(actor_id)

    def lookup(self, actor_id: int) -> ActorRecord:
        record = self.try_lookup(actor_id)
        if record is None:
            raise KeyError(f"no live actor with id {actor_id}")
        return record

    # -- per-LEM caches with epoch-fenced invalidation ------------------

    def cached_lookup(self, cache_id: int,
                      actor_id: int) -> Optional[ActorRecord]:
        """Resolve ``actor_id`` through ``cache_id``'s lookup cache.

        A hit is served only while its fill epoch matches the actor's
        current commit epoch — a commit since the fill fences the entry
        out, forcing a shard consultation (the miss path).  The returned
        record is therefore never stale past the commit epoch; in-flight
        messages sent under the old entry are covered by forwarding.
        """
        cache = self._caches.setdefault(cache_id, {})
        entry = cache.get(actor_id)
        current = self._commit_epoch.get(actor_id, 0)
        if entry is not None and entry[1] == current:
            self.cache_hits += 1
            return entry[0]
        self.cache_misses += 1
        record = self.try_lookup(actor_id)
        if record is None:
            cache.pop(actor_id, None)
            return None
        cache[actor_id] = (record, current)
        return record

    def note_commit(self, actor_id: int, epoch: int = 0) -> None:
        """A migration of ``actor_id`` committed: bump its commit epoch
        and drop every cached entry (epoch-fenced invalidation)."""
        self._commit_epoch[actor_id] = \
            self._commit_epoch.get(actor_id, 0) + 1
        self._invalidate(actor_id)

    def _invalidate(self, actor_id: int) -> None:
        for cache in self._caches.values():
            if cache.pop(actor_id, None) is not None:
                self.cache_invalidations += 1

    # -- audit ----------------------------------------------------------

    def coverage_errors(self) -> List[str]:
        """Shard-coverage audit used by the invariant checker: every
        live record owned by exactly one shard map, that map the ring
        owner's, and the shard union exactly the authoritative map."""
        errors: List[str] = []
        seen: Dict[int, int] = {}
        for shard_id, records in self._shard_records.items():
            for actor_id in records:
                if actor_id in seen:
                    errors.append(
                        f"actor {actor_id} in shards {seen[actor_id]} "
                        f"and {shard_id}")
                seen[actor_id] = shard_id
                owner = self.ring.owner(actor_id)
                if owner != shard_id:
                    errors.append(
                        f"actor {actor_id} in shard {shard_id} but ring "
                        f"owner is {owner}")
        for record in self.records():
            actor_id = record.ref.actor_id
            if actor_id not in seen:
                errors.append(f"actor {actor_id} missing from all shards")
        extras = set(seen) - {r.ref.actor_id for r in self.records()}
        for actor_id in sorted(extras):
            errors.append(f"shard {seen[actor_id]} holds dead actor "
                          f"{actor_id}")
        return errors
