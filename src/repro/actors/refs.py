"""Actor references.

An :class:`ActorRef` is the only way application code (and EPL rules at
runtime) names an actor: a stable id plus the actor's type name.  Refs are
location-transparent — the directory resolves them to a server at send
time, so migration is invisible to callers.

Refs are hashable and compare by id, which lets actor properties hold
refs (or collections of refs) that EPL ``in ref(...)`` conditions inspect.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ActorRef"]


@dataclass(frozen=True)
class ActorRef:
    """Stable, location-transparent handle for one actor."""

    actor_id: int
    type_name: str

    def __repr__(self) -> str:
        return f"<{self.type_name}#{self.actor_id}>"
