"""Messages exchanged between actors (and from external clients).

A message is one function invocation: it names the target actor and
function, carries arguments and a payload size (which determines network
cost), and holds the reply signal the caller blocks on.  ``caller_kind``
is ``"client"`` for external callers or the calling actor's type name —
exactly the distinction PLASMA's EPL makes in ``cllr.call(...)`` features.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from ..sim import Signal

__all__ = ["Message", "Overloaded", "CLIENT_KIND",
           "DEFAULT_MESSAGE_BYTES", "DEFAULT_REPLY_BYTES"]

CLIENT_KIND = "client"
DEFAULT_MESSAGE_BYTES = 512.0
DEFAULT_REPLY_BYTES = 256.0

_message_ids = itertools.count(1)


class Overloaded:
    """Retriable NACK delivered as a reply when overload protection
    refuses a client call.

    ``reason`` is ``"admission"`` (server-level admission control turned
    the request away before it queued) or ``"shed"`` (the target's
    bounded mailbox dropped it).  Clients treat both as retriable —
    unlike a timeout, the server paid almost nothing to say no.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:
        return f"Overloaded({self.reason!r})"


@dataclass
class Message:
    """One in-flight function invocation."""

    target_id: int
    function: str
    args: Tuple[Any, ...]
    caller_kind: str
    caller_id: Optional[int]
    size_bytes: float
    reply: Optional[Signal]
    reply_bytes: float = DEFAULT_REPLY_BYTES
    sent_at: float = 0.0
    message_id: int = field(default_factory=lambda: next(_message_ids))
    forwards: int = 0
    remote: bool = False  # set at routing time: crossed a server boundary
    #: Absolute sim time after which the caller no longer wants the
    #: reply.  Only set by clients when overload protection is active;
    #: the ``deadline`` shedding policy drops expired messages on
    #: arrival instead of wasting a saturated server's cycles.
    deadline_ms: Optional[float] = None

    def is_client_call(self) -> bool:
        return self.caller_kind == CLIENT_KIND
