"""Actor base class and actor-program schema extraction.

Application actors subclass :class:`Actor`.  Handler methods are regular
(or generator) methods; a handler that needs CPU time yields
``self.compute(cpu_ms)`` and one that calls another actor yields
``self.call(ref, "function", ...)``.  Messages to one actor are processed
strictly sequentially (classic actor semantics), so handlers never need
locks.

The EPL compiler validates elasticity rules against the *actor program
schema* — the set of actor types with their properties and functions —
which :func:`describe_actor_class` extracts from the Python class:
class-level annotations become declared properties, public methods become
functions.  This mirrors the paper's Fig. 3.I grammar where an
``aclass`` declares ``prop`` and ``func`` items.
"""

from __future__ import annotations

import copy
import inspect
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Optional, TYPE_CHECKING

from ..sim import Waitable
from .message import DEFAULT_MESSAGE_BYTES
from .refs import ActorRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .system import ActorSystem

__all__ = ["Actor", "ActorTypeSchema", "describe_actor_class",
           "ANY_TYPE"]

ANY_TYPE = "any"

_RESERVED_METHODS = frozenset({
    "compute", "call", "tell", "sleep", "on_start", "on_migrated",
    "snapshot_state", "restore_state", "storm_tick",
})


@dataclass(frozen=True)
class ActorTypeSchema:
    """Declared shape of one actor type, used for EPL validation."""

    name: str
    properties: FrozenSet[str]
    functions: FrozenSet[str]

    def has_property(self, pname: str) -> bool:
        return pname in self.properties

    def has_function(self, fname: str) -> bool:
        return fname in self.functions


def describe_actor_class(cls: type) -> ActorTypeSchema:
    """Extract the schema (properties, functions) from an actor class."""
    if not (isinstance(cls, type) and issubclass(cls, Actor)):
        raise TypeError(f"{cls!r} is not an Actor subclass")
    properties = set()
    for klass in cls.__mro__:
        if klass in (Actor, object):
            continue
        properties.update(getattr(klass, "__annotations__", {}))
    functions = set()
    for name, member in inspect.getmembers(cls, callable):
        if name.startswith("_") or name in _RESERVED_METHODS:
            continue
        if inspect.isfunction(member) or inspect.ismethod(member):
            functions.add(name)
    return ActorTypeSchema(
        name=cls.__name__,
        properties=frozenset(properties),
        functions=frozenset(functions))


class Actor:
    """Base class for all application actors.

    Class-level knobs subclasses may override:

    - ``state_size_mb``: memory footprint, charged to the hosting server
      and proportional to migration transfer cost.
    - ``message_bytes``: default payload size for calls made *by* this
      actor.

    The runtime injects ``actor_id``, ``ref``, and internal wiring when
    the actor is created through :meth:`ActorSystem.create_actor`.
    """

    state_size_mb: float = 1.0
    message_bytes: float = DEFAULT_MESSAGE_BYTES

    # Injected by the runtime at creation:
    actor_id: int = -1
    ref: Optional[ActorRef] = None
    _system: "ActorSystem" = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"<{type(self).__name__}#{self.actor_id}>"

    @property
    def type_name(self) -> str:
        return type(self).__name__

    # -- handler-side primitives -------------------------------------------

    def compute(self, cpu_ms: float) -> Waitable:
        """Consume ``cpu_ms`` of CPU on the hosting server.

        Yield the result inside a handler.  The time actually taken
        depends on the server's speed and current contention.
        """
        return self._system._actor_compute(self, cpu_ms)

    def call(self, ref: ActorRef, function: str, *args: Any,
             size_bytes: Optional[float] = None) -> Waitable:
        """Invoke ``function`` on ``ref`` and wait for the reply.

        Yield the result inside a handler; the yielded value resumes with
        the callee's return value.
        """
        return self._system._actor_call(
            self, ref, function, args,
            size_bytes if size_bytes is not None else self.message_bytes)

    def tell(self, ref: ActorRef, function: str, *args: Any,
             size_bytes: Optional[float] = None) -> None:
        """Fire-and-forget invocation (no reply)."""
        self._system._actor_tell(
            self, ref, function, args,
            size_bytes if size_bytes is not None else self.message_bytes)

    def sleep(self, delay_ms: float) -> Waitable:
        """Suspend the current handler for ``delay_ms`` of virtual time."""
        return self._system._actor_sleep(delay_ms)

    # -- lifecycle hooks (override freely) -----------------------------------

    def on_start(self) -> None:
        """Called once after the actor is placed on its first server."""

    def on_migrated(self, old_server: Any, new_server: Any) -> None:
        """Called after a live migration completes."""

    # -- chaos surface (repro.chaos) -----------------------------------------

    def storm_tick(self, cpu_ms: float = 0.0):
        """Handler targeted by ``EventStorm``/``HotKeyFlood`` faults.

        Burns ``cpu_ms`` of CPU and returns nothing — a unit of junk
        load every actor type accepts.  Reserved (not part of the EPL
        schema) so injecting a storm cannot change rule validation.
        """
        if cpu_ms > 0.0:
            yield self.compute(cpu_ms)

    # -- durable state (repro.durability) ------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Capture this actor's durable state as a plain dict.

        The default captures every public instance field (runtime-
        injected ``actor_id``/``ref`` excluded), deep-copied so later
        handler mutations cannot reach into the checkpoint.  Subclasses
        with derived or non-copyable fields override this together with
        :meth:`restore_state`.
        """
        return {name: copy.deepcopy(value)
                for name, value in vars(self).items()
                if not name.startswith("_")
                and name not in ("actor_id", "ref")}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Install a previously captured snapshot.

        Called on a freshly constructed instance during recovery (and on
        the source instance during a migration rollback); the caller
        passes a private deep copy, so the default may install the
        values directly.
        """
        for name, value in state.items():
            setattr(self, name, value)

    # -- introspection used by the elasticity runtime ------------------------

    def property_refs(self, pname: str) -> Iterable[ActorRef]:
        """Resolve property ``pname`` to the actor refs it holds.

        Supports a single ref, or any iterable / dict of refs.  Missing or
        empty properties resolve to no refs (EPL ``in ref(...)``
        conditions then simply select nothing).
        """
        value = getattr(self, pname, None)
        if value is None:
            return ()
        if isinstance(value, ActorRef):
            return (value,)
        if isinstance(value, dict):
            value = value.values()
        refs = []
        try:
            for item in value:
                if isinstance(item, ActorRef):
                    refs.append(item)
        except TypeError:
            return ()
        return tuple(refs)
