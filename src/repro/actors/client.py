"""External clients.

A :class:`Client` models a request source outside the actor fleet (the
paper runs clients on separate m1.medium instances).  Client calls cross
the network to the target actor's server and the reply crosses back; the
client records end-to-end latency samples, which is the quantity most of
the paper's figures plot.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..cluster import GaugeSeries
from ..sim import Signal
from .refs import ActorRef
from .system import ActorSystem

__all__ = ["Client"]


class Client:
    """An external request source with latency recording."""

    def __init__(self, system: ActorSystem, name: str = "client",
                 request_bytes: float = 512.0) -> None:
        self.system = system
        self.name = name
        self.request_bytes = request_bytes
        self.latencies = GaugeSeries(name=f"{name}.latency")
        self.completed = 0
        self.failed = 0

    def call(self, ref: ActorRef, function: str, *args: Any,
             size_bytes: Optional[float] = None) -> Signal:
        """Send one request; returns the reply signal (yield it)."""
        return self.system.client_call(
            ref, function, *args,
            size_bytes=size_bytes if size_bytes is not None
            else self.request_bytes)

    def timed_call(self, ref: ActorRef, function: str, *args: Any,
                   size_bytes: Optional[float] = None):
        """Generator: perform one call, record and return (result, latency).

        Use with ``result, latency = yield from client.timed_call(...)``.
        """
        start = self.system.sim.now
        result = yield self.call(ref, function, *args, size_bytes=size_bytes)
        latency = self.system.sim.now - start
        self.latencies.record(self.system.sim.now, latency)
        if result is None:
            self.failed += 1
        else:
            self.completed += 1
        return result, latency

    def mean_latency(self) -> float:
        return self.latencies.mean()

    def latency_samples(self) -> List[Tuple[float, float]]:
        return list(self.latencies.samples)
