"""External clients.

A :class:`Client` models a request source outside the actor fleet (the
paper runs clients on separate m1.medium instances).  Client calls cross
the network to the target actor's server and the reply crosses back; the
client records end-to-end latency samples, which is the quantity most of
the paper's figures plot.

For runs with fault injection, :meth:`Client.reliable_call` adds a
request deadline and capped exponential-backoff retry: a reply that does
not arrive within ``timeout_ms`` (lost to a crashed server or a dropped
message) is retried up to ``max_retries`` times, and requests that
exhaust their retries land in :attr:`Client.dead_letters`.  Outcomes can
be recorded into an :class:`~repro.cluster.AvailabilityMeter` so
benchmarks report availability under faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..cluster import AvailabilityMeter, GaugeSeries
from ..sim import Signal, Timeout
from .refs import ActorRef
from .system import ActorSystem

__all__ = ["Client", "DeadLetter"]

#: Sentinel a request's reply signal is triggered with when the client's
#: deadline fires first.  A genuine (late) reply is then ignored because
#: signals trigger exactly once.
_TIMED_OUT = object()


@dataclass(frozen=True)
class DeadLetter:
    """A request abandoned after exhausting its retries."""

    time_ms: float
    ref: ActorRef
    function: str
    attempts: int
    last_outcome: str  # "failure" | "timeout"


class Client:
    """An external request source with latency recording.

    Parameters
    ----------
    timeout_ms:
        Default deadline for :meth:`reliable_call`; ``None`` disables
        timeouts (a lost request then blocks its caller forever, which
        is also the behavior of plain :meth:`call`).
    max_retries:
        Retries after the first attempt of a :meth:`reliable_call`.
    backoff_base_ms / backoff_cap_ms:
        First retry delay and its cap; the delay doubles per attempt
        (capped exponential backoff, no jitter — runs stay deterministic).
    meter:
        Optional :class:`AvailabilityMeter` receiving one outcome per
        attempt (success / failure / timeout).
    """

    def __init__(self, system: ActorSystem, name: str = "client",
                 request_bytes: float = 512.0,
                 timeout_ms: Optional[float] = None,
                 max_retries: int = 0,
                 backoff_base_ms: float = 100.0,
                 backoff_cap_ms: float = 5_000.0,
                 meter: Optional[AvailabilityMeter] = None) -> None:
        if timeout_ms is not None and timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base_ms <= 0 or backoff_cap_ms < backoff_base_ms:
            raise ValueError("need 0 < backoff_base_ms <= backoff_cap_ms")
        self.system = system
        self.name = name
        self.request_bytes = request_bytes
        self.timeout_ms = timeout_ms
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_cap_ms = backoff_cap_ms
        self.meter = meter
        self.latencies = GaugeSeries(name=f"{name}.latency")
        self.completed = 0
        self.failed = 0
        self.retries_used = 0
        self.dead_letters: List[DeadLetter] = []

    def call(self, ref: ActorRef, function: str, *args: Any,
             size_bytes: Optional[float] = None) -> Signal:
        """Send one request; returns the reply signal (yield it)."""
        return self.system.client_call(
            ref, function, *args,
            size_bytes=size_bytes if size_bytes is not None
            else self.request_bytes)

    def timed_call(self, ref: ActorRef, function: str, *args: Any,
                   size_bytes: Optional[float] = None):
        """Generator: perform one call, record and return (result, latency).

        Use with ``result, latency = yield from client.timed_call(...)``.
        """
        start = self.system.sim.now
        result = yield self.call(ref, function, *args, size_bytes=size_bytes)
        latency = self.system.sim.now - start
        self.latencies.record(self.system.sim.now, latency)
        if result is None:
            self.failed += 1
            if self.meter is not None:
                self.meter.record_failure()
        else:
            self.completed += 1
            if self.meter is not None:
                self.meter.record_success()
        return result, latency

    def reliable_call(self, ref: ActorRef, function: str, *args: Any,
                      size_bytes: Optional[float] = None,
                      timeout_ms: Optional[float] = None,
                      max_retries: Optional[int] = None):
        """Generator: call with deadline + capped exponential backoff.

        Use with ``result = yield from client.reliable_call(...)``.
        Returns the reply value on success, or ``None`` once retries are
        exhausted (the request is then appended to :attr:`dead_letters`).
        A ``None`` reply — the target actor is gone — counts as a failed
        attempt and is retried too, because a crashed actor may be
        resurrected by the elasticity runtime between attempts.
        """
        sim = self.system.sim
        deadline = self.timeout_ms if timeout_ms is None else timeout_ms
        retries = self.max_retries if max_retries is None else max_retries
        start = sim.now
        backoff = self.backoff_base_ms
        outcome = "failure"
        for attempt in range(1, retries + 2):
            reply = self.call(ref, function, *args, size_bytes=size_bytes)
            if deadline is not None:
                sim.schedule(deadline, reply.trigger, _TIMED_OUT)
            value = yield reply
            if value is _TIMED_OUT:
                outcome = "timeout"
            elif value is None:
                outcome = "failure"
            else:
                latency = sim.now - start
                self.latencies.record(sim.now, latency)
                self.completed += 1
                if self.meter is not None:
                    self.meter.record_success()
                return value
            if self.meter is not None:
                self.meter.record(outcome)
            if attempt >= retries + 1:
                break
            self.retries_used += 1
            yield Timeout(sim, backoff)
            backoff = min(backoff * 2.0, self.backoff_cap_ms)
        self.failed += 1
        self.dead_letters.append(DeadLetter(
            time_ms=sim.now, ref=ref, function=function,
            attempts=retries + 1, last_outcome=outcome))
        return None

    def mean_latency(self) -> float:
        return self.latencies.mean()

    def latency_samples(self) -> List[Tuple[float, float]]:
        return list(self.latencies.samples)
