"""External clients.

A :class:`Client` models a request source outside the actor fleet (the
paper runs clients on separate m1.medium instances).  Client calls cross
the network to the target actor's server and the reply crosses back; the
client records end-to-end latency samples, which is the quantity most of
the paper's figures plot.

For runs with fault injection, :meth:`Client.reliable_call` adds a
request deadline and capped exponential-backoff retry: a reply that does
not arrive within ``timeout_ms`` (lost to a crashed server or a dropped
message) is retried up to ``max_retries`` times, and requests that
exhaust their retries land in :attr:`Client.dead_letters`.  Outcomes can
be recorded into an :class:`~repro.cluster.AvailabilityMeter` so
benchmarks report availability under faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..cluster import AvailabilityMeter, GaugeSeries
from ..sim import Signal, Timeout
from .message import Overloaded
from .refs import ActorRef
from .system import ActorSystem

__all__ = ["Client", "DeadLetter"]

#: Sentinel a request's reply signal is triggered with when the client's
#: deadline fires first.  A genuine (late) reply is then ignored because
#: signals trigger exactly once.
_TIMED_OUT = object()


@dataclass(frozen=True)
class DeadLetter:
    """A request abandoned after exhausting its retries."""

    time_ms: float
    ref: ActorRef
    function: str
    attempts: int
    last_outcome: str  # "failure" | "timeout" | "rejected" | "shed"


class Client:
    """An external request source with latency recording.

    Parameters
    ----------
    timeout_ms:
        Default deadline for :meth:`reliable_call`; ``None`` disables
        timeouts (a lost request then blocks its caller forever, which
        is also the behavior of plain :meth:`call`).
    max_retries:
        Retries after the first attempt of a :meth:`reliable_call`.
    backoff_base_ms / backoff_cap_ms:
        First retry delay and its cap; the delay doubles per attempt
        (capped exponential backoff; deterministic unless ``jitter_frac``
        is set).
    jitter_frac:
        Fraction of each backoff delay randomized away (0.0 = none, the
        default, keeping existing traces bit-identical).  With jitter
        ``f`` the actual delay is uniform in ``[backoff * (1 - f),
        backoff]``, drawn from the dedicated ``client-retry-jitter``
        stream — seeded runs stay reproducible, but N clients that
        timed out together no longer retry in lockstep (no synchronized
        retry storm).
    max_dead_letters:
        Bound on :attr:`dead_letters`; beyond it the oldest entry is
        dropped and :attr:`dead_letters_dropped` incremented, so long
        fuzz campaigns cannot grow the list without limit.  0 keeps
        every dead letter.
    meter:
        Optional :class:`AvailabilityMeter` receiving one outcome per
        attempt (success / failure / timeout / rejected / shed).
    """

    def __init__(self, system: ActorSystem, name: str = "client",
                 request_bytes: float = 512.0,
                 timeout_ms: Optional[float] = None,
                 max_retries: int = 0,
                 backoff_base_ms: float = 100.0,
                 backoff_cap_ms: float = 5_000.0,
                 jitter_frac: float = 0.0,
                 max_dead_letters: int = 1_024,
                 meter: Optional[AvailabilityMeter] = None) -> None:
        if timeout_ms is not None and timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base_ms <= 0 or backoff_cap_ms < backoff_base_ms:
            raise ValueError("need 0 < backoff_base_ms <= backoff_cap_ms")
        if not 0.0 <= jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")
        if max_dead_letters < 0:
            raise ValueError("max_dead_letters must be >= 0")
        self.system = system
        self.name = name
        self.request_bytes = request_bytes
        self.timeout_ms = timeout_ms
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_cap_ms = backoff_cap_ms
        self.jitter_frac = jitter_frac
        self.max_dead_letters = max_dead_letters
        self.meter = meter
        self.latencies = GaugeSeries(name=f"{name}.latency")
        self.completed = 0
        self.failed = 0
        self.retries_used = 0
        self.attempts = 0
        self.dead_letters: List[DeadLetter] = []
        self.dead_letters_dropped = 0
        # One shared stream for all clients: mutually independent of
        # every other consumer, and never drawn from unless jitter is on.
        self._jitter_rng = None

    @property
    def dead_letters_total(self) -> int:
        """All dead letters ever, including ones the bound evicted."""
        return len(self.dead_letters) + self.dead_letters_dropped

    def call(self, ref: ActorRef, function: str, *args: Any,
             size_bytes: Optional[float] = None,
             deadline_ms: Optional[float] = None) -> Signal:
        """Send one request; returns the reply signal (yield it)."""
        return self.system.client_call(
            ref, function, *args,
            size_bytes=size_bytes if size_bytes is not None
            else self.request_bytes,
            deadline_ms=deadline_ms)

    def timed_call(self, ref: ActorRef, function: str, *args: Any,
                   size_bytes: Optional[float] = None):
        """Generator: perform one call, record and return (result, latency).

        Use with ``result, latency = yield from client.timed_call(...)``.
        """
        start = self.system.sim.now
        self.attempts += 1
        result = yield self.call(ref, function, *args, size_bytes=size_bytes)
        latency = self.system.sim.now - start
        self.latencies.record(self.system.sim.now, latency)
        if isinstance(result, Overloaded):
            self.failed += 1
            if self.meter is not None:
                self.meter.record(
                    "rejected" if result.reason == "admission" else "shed")
            result = None
        elif result is None:
            self.failed += 1
            if self.meter is not None:
                self.meter.record_failure()
        else:
            self.completed += 1
            if self.meter is not None:
                self.meter.record_success()
        return result, latency

    def reliable_call(self, ref: ActorRef, function: str, *args: Any,
                      size_bytes: Optional[float] = None,
                      timeout_ms: Optional[float] = None,
                      max_retries: Optional[int] = None):
        """Generator: call with deadline + capped exponential backoff.

        Use with ``result = yield from client.reliable_call(...)``.
        Returns the reply value on success, or ``None`` once retries are
        exhausted (the request is then appended to :attr:`dead_letters`).
        A ``None`` reply — the target actor is gone — counts as a failed
        attempt and is retried too, because a crashed actor may be
        resurrected by the elasticity runtime between attempts.  An
        :class:`~repro.actors.Overloaded` NACK (admission control or a
        shedding mailbox turned the request away) is likewise retried:
        the server said *try later*, and the backoff provides the later.
        """
        sim = self.system.sim
        deadline = self.timeout_ms if timeout_ms is None else timeout_ms
        retries = self.max_retries if max_retries is None else max_retries
        start = sim.now
        backoff = self.backoff_base_ms
        outcome = "failure"
        for attempt in range(1, retries + 2):
            absolute_deadline = (
                sim.now + deadline
                if deadline is not None and self.system.overload is not None
                else None)
            self.attempts += 1
            reply = self.call(ref, function, *args, size_bytes=size_bytes,
                              deadline_ms=absolute_deadline)
            if deadline is not None:
                sim.schedule(deadline, reply.trigger, _TIMED_OUT)
            value = yield reply
            if value is _TIMED_OUT:
                outcome = "timeout"
            elif isinstance(value, Overloaded):
                outcome = ("rejected" if value.reason == "admission"
                           else "shed")
            elif value is None:
                outcome = "failure"
            else:
                latency = sim.now - start
                self.latencies.record(sim.now, latency)
                self.completed += 1
                if self.meter is not None:
                    self.meter.record_success()
                return value
            if self.meter is not None:
                self.meter.record(outcome)
            if attempt >= retries + 1:
                break
            self.retries_used += 1
            yield Timeout(sim, self._backoff_delay(backoff))
            backoff = min(backoff * 2.0, self.backoff_cap_ms)
        self.failed += 1
        self.dead_letters.append(DeadLetter(
            time_ms=sim.now, ref=ref, function=function,
            attempts=retries + 1, last_outcome=outcome))
        if (self.max_dead_letters
                and len(self.dead_letters) > self.max_dead_letters):
            del self.dead_letters[0]
            self.dead_letters_dropped += 1
        return None

    def _backoff_delay(self, backoff: float) -> float:
        """Apply seeded jitter to one backoff delay (no-op at 0.0)."""
        if self.jitter_frac <= 0.0:
            return backoff
        if self._jitter_rng is None:
            self._jitter_rng = self.system.streams.stream(
                "client-retry-jitter")
        return backoff * (1.0 - self.jitter_frac
                          + self.jitter_frac * self._jitter_rng.random())

    def mean_latency(self) -> float:
        return self.latencies.mean()

    def latency_samples(self) -> List[Tuple[float, float]]:
        return list(self.latencies.samples)
