"""The actor system: creation, messaging, dispatch, and live migration.

This module is the AEON-runtime stand-in.  It owns the directory, one
unbounded mailbox and dispatcher process per actor, and the live-migration
protocol.  The elasticity runtime drives it exclusively through
:meth:`ActorSystem.migrate_actor`, :meth:`ActorSystem.create_actor`'s
placement hook, and the :class:`~repro.actors.hooks.RuntimeHooks`
observation interface — the same narrow surface PLASMA requires of its
host language runtime.

Semantics reproduced from the paper's substrate:

- actors process messages sequentially; handlers may await CPU, replies
  from other actors, or sleeps;
- messages to a migrating actor queue up and are processed after the
  migration (live migration: no loss, added delay only);
- messages routed to an actor's old server after it moved are forwarded,
  paying an extra network hop (the cost ``colocate``/placement rules
  exist to avoid);
- an actor's memory footprint moves with it and its state size determines
  migration transfer time.
"""

from __future__ import annotations

import copy
import itertools
import os
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..cluster import NetworkFabric, Provisioner, Server
from ..runtime import SimBackend
from ..sim import (Interrupted, Queue, RandomStreams, Signal, Simulator,
                   Timeout, Waitable, spawn)
from .actor import Actor
from .directory import ActorRecord, Directory
from .hooks import RuntimeHooks
from .message import CLIENT_KIND, DEFAULT_REPLY_BYTES, Message, Overloaded
from .refs import ActorRef

__all__ = ["ActorSystem", "PlacementPolicy"]

#: Signature of a pluggable new-actor placement policy: given the actor
#: class, the candidate servers, and an optional *related* actor ref
#: (application hint, e.g. "this Player belongs to that Session"),
#: return the chosen server (or ``None`` for uniform-random placement).
PlacementPolicy = Callable[[Type[Actor], List[Server], Optional[ActorRef]],
                           Optional[Server]]

_actor_ids = itertools.count(1)

_STOP = object()
_MAX_FORWARDS = 8


class ActorSystem:
    """Hosts actors on a fleet of simulated servers."""

    def __init__(self, sim: Simulator, provisioner: Provisioner,
                 fabric: Optional[NetworkFabric] = None,
                 streams: Optional[RandomStreams] = None,
                 directory: Optional[Directory] = None) -> None:
        self.sim = sim
        self.provisioner = provisioner
        self.fabric = fabric or NetworkFabric(sim)
        self.streams = streams or RandomStreams()
        #: ``directory`` lets a caller install a
        #: :class:`~repro.actors.sharded_directory.ShardedDirectory`;
        #: the default flat map reproduces the paper's single
        #: authoritative view.
        self.directory = directory if directory is not None else Directory()
        #: The :class:`~repro.runtime.RuntimeBackend` view of this
        #: system: the narrow clock + migrate/pin/place + profiling
        #: surface the elasticity layer drives.  Pure delegation — the
        #: module-level name is looked up (not bound) so equivalence
        #: tests can substitute a counting/bypassing shim.
        self.backend = SimBackend(self)
        self.hooks: List[RuntimeHooks] = []
        self.placement_policy: Optional[PlacementPolicy] = None

        self._mailboxes: Dict[int, Queue] = {}
        self._busy: Dict[int, bool] = {}
        self._idle_signals: Dict[int, Signal] = {}
        self._gates: Dict[int, Optional[Signal]] = {}
        self._current_message: Dict[int, Message] = {}
        self._placement_rng = self.streams.stream("actor-placement")
        #: Supplies the control-plane epoch stamped onto placement
        #: decisions (set by the elasticity manager; ``None`` stamps 0).
        self.epoch_source: Optional[Callable[[], int]] = None
        #: How long each phase of the migration protocol waits for an ack
        #: that cannot arrive (severed link) before rolling back.  The
        #: elasticity manager overrides this from its config.
        self.migration_phase_timeout_ms = 2_000.0
        #: Migrations holding a prepared (not yet committed) copy of
        #: state on their destination, by actor id: ``(record, target)``.
        #: Purely logical bookkeeping: memory is allocated only at
        #: commit, so a rollback leaves no trace on the destination.
        #: The owning record is kept so an aborted transfer's late
        #: cleanup can never prune the entry of a *superseding*
        #: migration (started for the same actor id after a
        #: resurrection).
        self._prepared: Dict[int, Tuple[ActorRecord, Server]] = {}
        #: Migrations rolled back by a partition or phase timeout.
        self.migrations_rolled_back = 0
        #: Durable-state subsystem (``repro.durability``), attached by an
        #: enabled ``DurabilityManager``; ``None`` keeps every durability
        #: call site in this module a single attribute check.
        self.durability = None
        #: Overload-protection subsystem (``repro.overload``), attached
        #: by the elasticity manager when its config enables it; ``None``
        #: keeps every overload call site a single attribute check and
        #: the delivery path byte-identical to an unprotected run.
        self.overload = None
        #: True only inside :meth:`crash_server`'s destroy loop, so the
        #: disposition ledger can tell "lost with its server" apart from
        #: "target destroyed under it".
        self._crashing = False
        #: Coalesce back-to-back local sends that land at the same
        #: instant on the same server into one engine event.  Provably
        #: order-preserving (see :meth:`_route`); the golden-trace
        #: refresh tests run every scenario with it off as well.
        self.batch_local_delivery = os.environ.get(
            "REPRO_BATCH_LOCAL_DELIVERY", "1").lower() not in (
                "0", "false", "off")
        #: The open delivery batch: ``[due, server, stamp, msg, ...]``.
        #: Never cleared — a stale batch can never match again because
        #: any later send's due time is strictly greater (delay > 0).
        self._local_batch: Optional[List[Any]] = None

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def add_hooks(self, hooks: RuntimeHooks) -> None:
        """Subscribe an observer (typically the profiling runtime)."""
        self.hooks.append(hooks)

    def remove_hooks(self, hooks: RuntimeHooks) -> None:
        """Unsubscribe a previously added observer."""
        self.hooks.remove(hooks)

    # ------------------------------------------------------------------
    # actor lifecycle
    # ------------------------------------------------------------------

    def create_actor(self, cls: Type[Actor], *args: Any,
                     server: Optional[Server] = None,
                     related: Optional[ActorRef] = None,
                     **kwargs: Any) -> ActorRef:
        """Instantiate ``cls`` and place it on a server.

        Placement precedence: explicit ``server`` argument, then the
        installed :attr:`placement_policy` (PLASMA's rule-aware new-actor
        placement), then uniform random — the default behaviour the paper
        ascribes to a GEM with no applicable rule.  ``related`` is an
        optional hint naming an existing actor this one belongs with
        (e.g. the Session a new Player joins); rule-aware placement uses
        it to honour colocate rules from the very first placement.
        """
        chosen = server
        candidates = list(self.provisioner.servers)
        if not candidates and chosen is None:
            raise RuntimeError("cannot create an actor with no servers")
        if chosen is None and self.placement_policy is not None:
            chosen = self.placement_policy(cls, candidates, related)
        if chosen is None:
            chosen = self._placement_rng.choice(candidates)

        instance = cls(*args, **kwargs)
        actor_id = next(_actor_ids)
        ref = ActorRef(actor_id=actor_id, type_name=cls.__name__)
        instance.actor_id = actor_id
        instance.ref = ref
        instance._system = self

        record = ActorRecord(
            instance=instance, ref=ref, server=chosen,
            created_at=self.sim.now, last_placed_at=self.sim.now,
            spawn_args=copy.deepcopy(tuple(args)),
            spawn_kwargs=copy.deepcopy(dict(kwargs)),
            placement_epoch=self._current_epoch())
        self.directory.register(record)
        chosen.allocate_memory(instance.state_size_mb)

        self._start_dispatch(record)
        instance.on_start()
        for hooks in self.hooks:
            hooks.on_actor_created(record)
        return ref

    def _current_epoch(self) -> int:
        return self.epoch_source() if self.epoch_source is not None else 0

    def _start_dispatch(self, record: ActorRecord) -> None:
        actor_id = record.ref.actor_id
        mailbox: Queue = Queue(self.sim)
        self._mailboxes[actor_id] = mailbox
        self._busy[actor_id] = False
        self._gates[actor_id] = None
        spawn(self.sim, self._dispatch_loop(record, mailbox),
              name=f"dispatch/{record.ref}")

    def destroy_actor(self, ref: ActorRef) -> None:
        """Remove an actor.  Queued messages are dropped; pending callers
        receive ``None`` replies."""
        record = self.directory.try_lookup(ref.actor_id)
        if record is None:
            return
        mailbox = self._mailboxes.pop(ref.actor_id, None)
        if mailbox is not None:
            for message in mailbox.clear():
                if message is _STOP:
                    continue
                if self.overload is not None:
                    if self._crashing:
                        self.overload.note_crashed(message)
                    else:
                        self.overload.note_dead_target(message)
                if message.reply is not None:
                    message.reply.trigger(None)
            mailbox.put(_STOP)
        # Fail the in-flight request too (its handler dies with the
        # actor; Signal.trigger is once-only, so a handler that was
        # already about to reply cannot double-deliver).
        inflight = self._current_message.pop(ref.actor_id, None)
        if inflight is not None and inflight.reply is not None:
            inflight.reply.trigger(None)
        record.server.free_memory(record.instance.state_size_mb)
        self.directory.unregister(ref.actor_id)
        self._busy.pop(ref.actor_id, None)
        self._gates.pop(ref.actor_id, None)
        # A migration proc draining the in-flight handler blocks on this
        # signal; trigger it so the proc wakes, sees the record is gone,
        # and runs its abort path — otherwise it leaks forever and its
        # bookkeeping (the migrating flag, a later _prepared entry) is
        # never cleaned up.
        idle = self._idle_signals.pop(ref.actor_id, None)
        if idle is not None:
            idle.trigger()
        for hooks in self.hooks:
            hooks.on_actor_destroyed(record)

    def actor_instance(self, ref: ActorRef) -> Actor:
        """The live instance behind ``ref`` (profiling/testing use)."""
        return self.directory.lookup(ref.actor_id).instance

    def crash_server(self, server: Server) -> List[ActorRef]:
        """Fail a server: its actors are lost, callers get None replies.

        Models an instance failure.  Fault tolerance for the lost
        *application state* is the host language runtime's job (paper
        §2.2 — PLASMA inherits it); what this exercises is that the
        elasticity runtime and surviving actors keep operating.  Returns
        the refs of the actors that were lost.

        Subscribed hooks receive ``on_server_crashed(server, lost)`` with
        the dead records as tombstones; the elasticity runtime uses them
        to cancel the server's LEM immediately (the LEM process dies with
        its host) and, once its failure detector confirms the silence, to
        resurrect the lost actors via :meth:`resurrect_actor`.
        """
        lost_records = list(self.directory.on_server(server))
        lost = [record.ref for record in lost_records]
        self._crashing = True
        try:
            for ref in lost:
                self.destroy_actor(ref)
        finally:
            self._crashing = False
        if self.overload is not None:
            self.overload.note_server_crashed(server.name)
        if server in self.provisioner.servers:
            self.provisioner.retire_server(server)
        else:
            server.shutdown()
        for hooks in self.hooks:
            hooks.on_server_crashed(server, lost_records)
        return lost

    def resurrect_actor(self, tombstone: ActorRecord,
                        server: Optional[Server] = None) -> Optional[ActorRef]:
        """Re-create an actor lost to a server crash.

        The new instance is built from the tombstone's recorded
        constructor arguments — application state carried in ``__init__``
        args survives; everything mutated afterwards is lost, matching
        the paper's §2.2 division of labour (durable-state recovery
        belongs to the host language runtime).  The original
        :class:`ActorRef` is reused so held refs, client handles, and
        EPL ref-joins keep working; placement goes through the installed
        placement policy (PLASMA's rule-aware path) unless ``server`` is
        given.  Returns ``None`` when the ref is already live again or no
        running server exists.
        """
        ref = tombstone.ref
        if self.directory.try_lookup(ref.actor_id) is not None:
            return None
        cls = type(tombstone.instance)
        candidates = [s for s in self.provisioner.servers if s.running]
        chosen = server
        if chosen is None and self.placement_policy is not None:
            chosen = self.placement_policy(cls, candidates, None)
        if chosen is None:
            if not candidates:
                return None
            chosen = self._placement_rng.choice(candidates)

        # Two independent deep copies of the recorded constructor
        # arguments: one consumed by the new instance, one stored on the
        # new record.  Without them, mutable arg elements would be
        # aliased between the instance, the new tombstone, and every
        # earlier generation's tombstone — a later in-place mutation
        # would silently rewrite "spawn-time" state across generations.
        instance = cls(*copy.deepcopy(tombstone.spawn_args),
                       **copy.deepcopy(tombstone.spawn_kwargs))
        instance.actor_id = ref.actor_id
        instance.ref = ref
        instance._system = self

        record = ActorRecord(
            instance=instance, ref=ref, server=chosen,
            created_at=self.sim.now, last_placed_at=self.sim.now,
            spawn_args=copy.deepcopy(tombstone.spawn_args),
            spawn_kwargs=copy.deepcopy(tombstone.spawn_kwargs),
            placement_epoch=self._current_epoch())
        self.directory.register(record)
        chosen.allocate_memory(instance.state_size_mb)

        self._start_dispatch(record)
        instance.on_start()
        if self.durability is not None:
            # State-preserving recovery: overwrite the fresh spawn-time
            # state with the last acknowledged checkpoint (if any replica
            # of one is readable from here) before anyone can observe or
            # message the actor — nothing interleaves inside this call.
            self.durability.on_restore(record)
        for hooks in self.hooks:
            hooks.on_actor_resurrected(record)
        return ref

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    def client_call(self, ref: ActorRef, function: str, *args: Any,
                    size_bytes: float = 512.0,
                    reply_bytes: float = DEFAULT_REPLY_BYTES,
                    deadline_ms: Optional[float] = None) -> Signal:
        """Invoke ``function`` on ``ref`` from an external client.

        Returns the reply signal; yield it from a client process.
        ``deadline_ms`` (absolute sim time) lets the ``deadline``
        shedding policy drop the message if it arrives too late.
        """
        reply = Signal(self.sim)
        message = Message(
            target_id=ref.actor_id, function=function, args=tuple(args),
            caller_kind=CLIENT_KIND, caller_id=None, size_bytes=size_bytes,
            reply=reply, reply_bytes=reply_bytes, sent_at=self.sim.now,
            deadline_ms=deadline_ms)
        if self.overload is not None:
            self.overload.note_issued(message)
        self._route(None, message)
        return reply

    def _actor_call(self, actor: Actor, ref: ActorRef, function: str,
                    args: Tuple[Any, ...], size_bytes: float) -> Signal:
        reply = Signal(self.sim)
        self._send_from_actor(actor, ref, function, args, size_bytes, reply)
        return reply

    def _actor_tell(self, actor: Actor, ref: ActorRef, function: str,
                    args: Tuple[Any, ...], size_bytes: float) -> None:
        self._send_from_actor(actor, ref, function, args, size_bytes, None)

    def _send_from_actor(self, actor: Actor, ref: ActorRef, function: str,
                         args: Tuple[Any, ...], size_bytes: float,
                         reply: Optional[Signal]) -> None:
        src_record = self.directory.try_lookup(actor.actor_id)
        message = Message(
            target_id=ref.actor_id, function=function, args=tuple(args),
            caller_kind=actor.type_name, caller_id=actor.actor_id,
            size_bytes=size_bytes, reply=reply, sent_at=self.sim.now)
        self._route(src_record, message)

    def _actor_sleep(self, delay_ms: float) -> Waitable:
        return Timeout(self.sim, delay_ms)

    def _actor_compute(self, actor: Actor, cpu_ms: float) -> Waitable:
        record = self.directory.try_lookup(actor.actor_id)
        if record is None:
            # The actor died (server crash) while this handler was mid
            # flight — e.g. between two chunks of a chunked compute.  Its
            # caller already received a None reply from destroy_actor, so
            # park the orphaned handler on a signal that never fires.
            return Signal(self.sim)
        job_done = record.server.execute(cpu_ms, owner=record)
        wrapped = Signal(self.sim)

        def charge(busy_ms: float) -> None:
            for hooks in self.hooks:
                hooks.on_compute(record, busy_ms)
            wrapped.trigger(busy_ms)

        job_done._subscribe(charge)
        return wrapped

    # -- routing -----------------------------------------------------------

    def _route(self, src_record: Optional[ActorRecord],
               message: Message) -> None:
        """First-hop routing from the sender's current server."""
        target = self.directory.try_lookup(message.target_id)
        if target is None:
            if self.overload is not None:
                self.overload.note_no_target(message)
            if message.reply is not None:
                message.reply.trigger(None)
            return
        src_server = src_record.server if src_record is not None else None
        message.remote = src_server is not target.server
        if message.remote and self.fabric.drop_message(src_server,
                                                       target.server):
            # Lost in transit (chaos fault): the message never arrives
            # and no reply fires — recovery is the caller's timeout/retry.
            if self.overload is not None:
                self.overload.note_fabric_lost(message)
            return
        delay = self.fabric.delivery_delay(
            src_server, target.server, message.size_bytes)
        if src_record is not None and message.remote:
            for hooks in self.hooks:
                hooks.on_bytes_sent(src_record, message.size_bytes)
        if message.remote or not self.batch_local_delivery or delay <= 0.0:
            self.sim.schedule(delay, self._deliver, message, target.server)
            return
        # Local fast path: co-located sends due at the same instant on
        # the same server ride one engine event.  Coalescing is valid
        # only while the scheduler's admission stamp is unchanged since
        # the batch was scheduled: the batched messages then hold
        # consecutive sequence numbers with nothing between them, so
        # delivering in append order at `due` is bit-identical to the
        # unbatched event order.  Any other schedule() closes the batch
        # (conservatively — correctness never depends on coalescing).
        due = self.sim.now + delay
        batch = self._local_batch
        if (batch is not None and batch[0] == due
                and batch[1] is target.server
                and batch[2] == self.sim.schedule_seq):
            batch.append(message)
            return
        batch = [due, target.server, 0, message]
        self.sim.schedule(delay, self._deliver_batch, batch)
        batch[2] = self.sim.schedule_seq
        self._local_batch = batch

    def _deliver_batch(self, batch: List[Any]) -> None:
        """Deliver a coalesced run of local messages in send order."""
        server = batch[1]
        for index in range(3, len(batch)):
            self._deliver(batch[index], server)

    def _deliver(self, message: Message, arrived_at: Server) -> None:
        """Message arrival at a server; forwards if the actor moved."""
        target = self.directory.try_lookup(message.target_id)
        if target is None:
            if self.overload is not None:
                self.overload.note_dead_target(message)
            if message.reply is not None:
                message.reply.trigger(None)
            return
        if target.server is not arrived_at and message.forwards < _MAX_FORWARDS:
            # The actor moved while the message was in flight: the old
            # host forwards it, paying one more network hop (which a
            # degraded or partitioned fabric may also lose).
            if self.fabric.drop_message(arrived_at, target.server):
                if self.overload is not None:
                    self.overload.note_fabric_lost(message)
                return
            message.forwards += 1
            delay = self.fabric.delivery_delay(
                arrived_at, target.server, message.size_bytes)
            self.sim.schedule(delay, self._deliver, message, target.server)
            return
        mailbox = self._mailboxes.get(message.target_id)
        if mailbox is None:
            if self.overload is not None:
                self.overload.note_dead_target(message)
            if message.reply is not None:
                message.reply.trigger(None)
            return
        if self.overload is not None and not self._admit(
                message, target, mailbox, arrived_at):
            return
        for hooks in self.hooks:
            hooks.on_message_delivered(target, message)
            if message.remote or message.forwards:
                hooks.on_bytes_received(target, message.size_bytes)
        mailbox.put(message)
        if self.overload is not None:
            self.overload.note_mailbox_depth(len(mailbox))

    def _admit(self, message: Message, target: ActorRecord, mailbox: Queue,
               arrived_at: Server) -> bool:
        """Overload-protection checkpoint at the mailbox door.

        Returns True when the message may enter the mailbox; otherwise
        the message's fate (NACK, drop, or backpressured retry) has
        already been settled here.  Ordering matters: expired work is
        waste regardless of queue depth, admission control protects the
        whole server, and the mailbox bound protects the one actor.
        """
        overload = self.overload
        config = overload.config
        now = self.sim.now
        if (config.policy == "deadline" and message.deadline_ms is not None
                and now >= message.deadline_ms):
            overload.note_shed(message, target.server.name,
                               target.ref.actor_id, reason="deadline")
            for hooks in self.hooks:
                hooks.on_message_shed(target, message, "deadline")
            if message.reply is not None:
                # The caller's timeout already fired; this trigger is a
                # no-op kept for symmetry with the shed path.
                message.reply.trigger(Overloaded("deadline"))
            return False
        if message.is_client_call() and (
                (config.admission_queue_depth
                 and len(mailbox) >= config.admission_queue_depth)
                or (config.admission_cpu_perc
                    and target.server.cpu_percent(
                        config.admission_cpu_window_ms)
                    >= config.admission_cpu_perc)):
            overload.note_rejected(message)
            for hooks in self.hooks:
                hooks.on_request_rejected(target, message)
            if message.reply is not None:
                message.reply.trigger(Overloaded("admission"))
            return False
        capacity = config.mailbox_capacity
        if capacity and len(mailbox) >= capacity:
            if config.policy == "block":
                # Credit-based backpressure: the message stays the
                # sender's problem until the receiver drains a slot.
                overload.note_backpressure(message)
                self.sim.schedule(config.block_retry_ms, self._deliver,
                                  message, arrived_at)
                return False
            # shed / deadline policies: deterministic drop-newest.
            overload.note_shed(message, target.server.name,
                               target.ref.actor_id)
            for hooks in self.hooks:
                hooks.on_message_shed(target, message, "shed")
            if message.reply is not None:
                message.reply.trigger(
                    Overloaded("shed") if message.is_client_call()
                    else None)
            return False
        return True

    # -- dispatch -------------------------------------------------------------

    def _dispatch_loop(self, record: ActorRecord, mailbox: Queue):
        actor_id = record.ref.actor_id
        while True:
            message = yield mailbox.get()
            if message is _STOP:
                return
            if self.overload is not None:
                self.overload.note_consumed(message)
            gate = self._gates.get(actor_id)
            if gate is not None:
                yield gate  # migration in progress: wait for it to finish
            self._busy[actor_id] = True
            self._current_message[actor_id] = message
            try:
                handler = getattr(record.instance, message.function, None)
                if handler is None:
                    raise AttributeError(
                        f"{record.ref} has no function {message.function!r}")
                result = handler(*message.args)
                if hasattr(result, "send"):  # generator handler
                    result = yield from result
            finally:
                self._busy[actor_id] = False
                self._current_message.pop(actor_id, None)
                idle = self._idle_signals.pop(actor_id, None)
                if idle is not None:
                    idle.trigger()
            if message.reply is not None:
                self._send_reply(record, message, result)

    def _send_reply(self, record: ActorRecord, message: Message,
                    result: Any) -> None:
        if message.caller_id is not None:
            caller = self.directory.try_lookup(message.caller_id)
            caller_server = caller.server if caller is not None else None
        else:
            caller_server = None  # external client
        delay = self.fabric.delivery_delay(
            record.server, caller_server, message.reply_bytes) \
            if caller_server is not None else \
            self.fabric.delivery_delay(None, record.server, message.reply_bytes)
        if caller_server is not None and caller_server is not record.server:
            for hooks in self.hooks:
                hooks.on_bytes_sent(record, message.reply_bytes)
        self.sim.schedule(delay, message.reply.trigger, result)

    # ------------------------------------------------------------------
    # live migration
    # ------------------------------------------------------------------

    def migrate_actor(self, ref: ActorRef, target: Server,
                      force: bool = False) -> Signal:
        """Live-migrate ``ref`` to ``target`` (prepare/transfer/commit).

        Returns a signal fired with ``True`` when the migration completed,
        or ``False`` if it was skipped (actor gone, already migrating,
        pinned, or already on ``target``) or rolled back.  The actor
        finishes its current message, its mailbox is gated, the
        destination prepares a landing record, state is transferred
        (delay grows with ``state_size_mb``), then the commit flips the
        directory record and processing resumes on the target.

        Each protocol phase tolerates a severed link: when the prepare or
        commit ack cannot cross a partition, the source waits one
        :attr:`migration_phase_timeout_ms`, re-probes, and on failure
        rolls back — the actor stays live on the source and the
        destination discards its prepared copy, so exactly one live copy
        exists under any partition schedule.  With no partition active
        the protocol's timing is identical to the fire-and-forget path
        (the prepare/commit round trip is the RTT already inside
        :meth:`NetworkFabric.transfer_delay`).

        ``force`` moves the actor even if pinned — used by elasticity
        behaviors that explicitly name the actor (``reserve`` outranks
        ``pin`` in PLASMA's priority order).
        """
        done = Signal(self.sim)
        record = self.directory.try_lookup(ref.actor_id)
        if (record is None or record.migrating
                or (record.pinned and not force)
                or record.server is target or not target.running):
            done.trigger(False)
            return done
        record.migrating = True
        gate = Signal(self.sim)
        self._gates[ref.actor_id] = gate
        spawn(self.sim, self._migration_proc(record, target, gate, done),
              name=f"migrate/{ref}")
        return done

    def _link_severed(self, src: Server, dst: Server) -> bool:
        """A migration phase needs a request *and* its ack to cross, so
        the link counts as severed when either direction is blocked."""
        return (self.fabric.link_blocked(src, dst)
                or self.fabric.link_blocked(dst, src))

    def _prune_prepared(self, record: ActorRecord) -> None:
        """Drop ``record``'s prepared-copy entry — and only its own.

        After a crash + resurrection, a *new* migration of the same
        actor id may have prepared its own copy by the time the old
        aborted transfer's proc wakes up; an unconditional pop here
        would prune the superseding migration's in-progress record.
        """
        actor_id = record.ref.actor_id
        entry = self._prepared.get(actor_id)
        if entry is not None and entry[0] is record:
            self._prepared.pop(actor_id, None)

    def _abort_lost(self, record: ActorRecord, gate: Signal, done: Signal,
                    source: Server, target: Server) -> None:
        # The actor died mid-protocol (its source server crashed):
        # destroy_actor already settled memory and mailbox state.
        self._prune_prepared(record)
        # Clear the tombstone's in-progress flag: resurrection copies
        # bookkeeping off the tombstone, and a stale migrating=True
        # would make the revived actor look permanently mid-migration.
        record.migrating = False
        gate.trigger()
        done.trigger(False)
        for hooks in self.hooks:
            hooks.on_migration_aborted(record, source, target, "actor-lost")

    def _rollback(self, record: ActorRecord, gate: Signal, done: Signal,
                  source: Server, target: Server, reason: str) -> None:
        # Source keeps the live actor; the destination discards its
        # prepared copy (nothing was ever allocated there).
        actor_id = record.ref.actor_id
        self._prune_prepared(record)
        self.migrations_rolled_back += 1
        record.migrating = False
        if (actor_id in self._gates
                and self.directory.try_lookup(actor_id) is record):
            self._gates[actor_id] = None
        gate.trigger()
        done.trigger(False)
        for hooks in self.hooks:
            hooks.on_migration_aborted(record, source, target, reason)

    def _migration_proc(self, record: ActorRecord, target: Server,
                        gate: Signal, done: Signal):
        actor_id = record.ref.actor_id
        # Wait for the in-flight handler (if any) to finish.
        if self._busy.get(actor_id):
            idle = self._idle_signals.get(actor_id)
            if idle is None:
                idle = Signal(self.sim)
                self._idle_signals[actor_id] = idle
            yield idle
            if self.directory.try_lookup(actor_id) is not record:
                # destroy_actor woke us: the actor died (or was
                # superseded by a resurrection) while we drained its
                # in-flight handler.
                self._abort_lost(record, gate, done, record.server, target)
                return
        source = record.server
        if not target.running:
            # The destination died while we drained the in-flight
            # handler.  This is a rollback like any other: hooks (the
            # invariant checker's single-flight tracking, durability's
            # journal, availability accounting) must see the abort, not
            # a migration that silently vanishes mid-protocol.
            self._rollback(record, gate, done, source, target,
                           "target-crashed")
            return
        # PREPARE: ask the destination to set up a landing record.  On a
        # severed link the ack never comes; wait one phase timeout for a
        # heal, then roll back with no bytes transferred.
        if self._link_severed(source, target):
            yield Timeout(self.sim, self.migration_phase_timeout_ms)
            if self.directory.try_lookup(actor_id) is not record:
                self._abort_lost(record, gate, done, source, target)
                return
            if not target.running or self._link_severed(source, target):
                self._rollback(record, gate, done, source, target,
                               "prepare-timeout")
                return
        self._prepared[actor_id] = (record, target)
        if self.durability is not None:
            self.durability.on_migration_prepared(record, source, target)
        # TRANSFER: full state over the slower NIC (plus the protocol's
        # control RTT, already part of transfer_delay).  With durability
        # on, the transfer ships a checkpoint whose sole replica is the
        # target: commit acknowledges it, rollback restores from it.
        if self.durability is not None:
            self.durability.on_migration_transfer(record, source, target)
        state_bytes = record.instance.state_size_mb * 1024.0 * 1024.0
        delay = self.fabric.transfer_delay(source, target, state_bytes)
        yield Timeout(self.sim, delay)
        if self.directory.try_lookup(actor_id) is not record:
            self._abort_lost(record, gate, done, source, target)
            return
        if not target.running:
            # The destination died mid-transfer: the actor stays live on
            # its source with nothing allocated on the target.
            self._rollback(record, gate, done, source, target,
                           "target-crashed")
            return
        # COMMIT: a partition that opened mid-transfer blocks the commit
        # ack.  Hold the prepared copy for one phase timeout in case the
        # partition heals (the migration then commits late); otherwise
        # roll back — never commit blind across a cut.
        if self._link_severed(source, target):
            yield Timeout(self.sim, self.migration_phase_timeout_ms)
            if self.directory.try_lookup(actor_id) is not record:
                self._abort_lost(record, gate, done, source, target)
                return
            if not target.running:
                self._rollback(record, gate, done, source, target,
                               "target-crashed")
                return
            if self._link_severed(source, target):
                self._rollback(record, gate, done, source, target,
                               "commit-timeout")
                return
        self._prune_prepared(record)
        source.free_memory(record.instance.state_size_mb)
        target.allocate_memory(record.instance.state_size_mb)
        record.server = target
        record.last_placed_at = self.sim.now
        record.placement_epoch = self._current_epoch()
        record.migrations += 1
        record.migrating = False
        # Epoch-fenced cache invalidation: a sharded directory drops
        # every cached entry for this actor at the commit point (no-op
        # on the flat map).
        self.directory.note_commit(actor_id, record.placement_epoch)
        self._gates[actor_id] = None
        gate.trigger()
        record.instance.on_migrated(source, target)
        for hooks in self.hooks:
            hooks.on_actor_migrated(record, source, target)
        done.trigger(True)

    # ------------------------------------------------------------------
    # queries used by elasticity management and tests
    # ------------------------------------------------------------------

    def server_of(self, ref: ActorRef) -> Server:
        """The server currently hosting ``ref``."""
        return self.directory.lookup(ref.actor_id).server

    def mailbox_depth(self, actor_id: int) -> int:
        """Messages currently queued for ``actor_id`` (0 if gone)."""
        mailbox = self._mailboxes.get(actor_id)
        return len(mailbox) if mailbox is not None else 0

    def actors_on(self, server: Server) -> List[ActorRecord]:
        """Directory records of all actors hosted on ``server``."""
        return self.directory.on_server(server)

    def pin(self, ref: ActorRef, pinned: bool = True) -> None:
        """Mark an actor immovable (EPL ``pin`` behaviour)."""
        self.directory.lookup(ref.actor_id).pinned = pinned
