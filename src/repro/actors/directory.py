"""Actor directory: the location service.

Maps actor ids to the server currently hosting them, plus per-actor
runtime bookkeeping the elasticity runtime needs (pinned flag, last
migration time for the placement-stability window, migration-in-progress
state).  In the paper this is part of AEON's distributed runtime; a
single authoritative map reproduces its observable behaviour (lookups may
be stale only during a migration, which we model with message forwarding
at the old host).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

from .refs import ActorRef

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Server
    from .actor import Actor

__all__ = ["ActorRecord", "Directory"]


@dataclass
class ActorRecord:
    """Directory entry for one live actor."""

    instance: "Actor"
    ref: ActorRef
    server: "Server"
    created_at: float
    pinned: bool = False
    migrating: bool = False
    last_placed_at: float = 0.0
    migrations: int = 0
    #: Control-plane epoch of the decision that last placed this actor
    #: (0 before any partition has ever bumped the epoch).  Anti-entropy
    #: after a partition heal reconciles placement views by this stamp:
    #: the highest epoch wins, so a stale minority-side view can never
    #: overwrite a newer placement.
    placement_epoch: int = 0
    #: Constructor arguments the actor was created with, kept so a crash
    #: tombstone can resurrect the actor (fresh state; §2.2 leaves state
    #: recovery to the host language runtime).
    spawn_args: tuple = ()
    spawn_kwargs: dict = field(default_factory=dict)

    @property
    def type_name(self) -> str:
        return self.ref.type_name


class Directory:
    """Authoritative actor → server map."""

    def __init__(self) -> None:
        self._records: Dict[int, ActorRecord] = {}

    def register(self, record: ActorRecord) -> None:
        if record.ref.actor_id in self._records:
            raise ValueError(f"actor {record.ref} already registered")
        self._records[record.ref.actor_id] = record

    def unregister(self, actor_id: int) -> None:
        self._records.pop(actor_id, None)

    def lookup(self, actor_id: int) -> ActorRecord:
        try:
            return self._records[actor_id]
        except KeyError:
            raise KeyError(f"no live actor with id {actor_id}")

    def try_lookup(self, actor_id: int) -> Optional[ActorRecord]:
        return self._records.get(actor_id)

    def note_commit(self, actor_id: int, epoch: int = 0) -> None:
        """A migration of ``actor_id`` committed.  The flat map has no
        caches to fence, so this is a no-op; the sharded directory
        overrides it with epoch-fenced cache invalidation."""

    def records(self) -> Iterable[ActorRecord]:
        return self._records.values()

    def on_server(self, server: "Server") -> List[ActorRecord]:
        """All actors currently hosted on ``server``."""
        return [rec for rec in self._records.values() if rec.server is server]

    def stale_records(self, epoch: int) -> List[ActorRecord]:
        """Records whose placement predates ``epoch`` — the candidates a
        post-heal anti-entropy pass re-examines (highest epoch wins)."""
        return [rec for rec in self._records.values()
                if rec.placement_epoch < epoch]

    def of_type(self, type_name: str) -> List[ActorRecord]:
        return [rec for rec in self._records.values()
                if rec.type_name == type_name]

    def count(self) -> int:
        return len(self._records)
