"""Experiment scaffolding shared by benchmarks and examples.

``build_cluster`` stands up a simulator + fleet + actor system in one
call; ``format_table``/``format_series`` print results in the shapes the
paper reports (table rows, figure series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..actors import ActorSystem
from ..cluster import NetworkFabric, Provisioner, Server
from ..sim import RandomStreams, Simulator

__all__ = ["TestBed", "build_cluster", "format_table", "format_series",
           "sparkline"]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render values as a unicode sparkline (down-sampled to ``width``).

    Constant series render as a flat mid-height line; empty series as an
    empty string.  Used by :func:`format_series` so the figure files are
    glanceable without plotting tools.
    """
    points = list(values)
    if not points:
        return ""
    if len(points) > width:
        step = len(points) / width
        points = [points[int(i * step)] for i in range(width)]
    low = min(points)
    high = max(points)
    if high == low:
        return _SPARK_BLOCKS[3] * len(points)
    scale = (len(_SPARK_BLOCKS) - 1) / (high - low)
    return "".join(_SPARK_BLOCKS[int((v - low) * scale)] for v in points)


@dataclass
class TestBed:
    """Everything an experiment needs, pre-wired."""

    __test__ = False  # not a pytest class, despite the name

    sim: Simulator
    provisioner: Provisioner
    system: ActorSystem
    streams: RandomStreams
    servers: List[Server] = field(default_factory=list)

    def run(self, until_ms: float) -> float:
        return self.sim.run(until=until_ms)


def build_cluster(num_servers: int, instance_type: str = "m5.large",
                  seed: int = 0, boot_delay_ms: float = 30_000.0,
                  max_servers: int = 1024,
                  local_latency_ms: float = 0.05,
                  remote_rtt_ms: float = 1.0) -> TestBed:
    """Create a simulator, boot ``num_servers`` immediately, and wire an
    actor system over them."""
    sim = Simulator()
    streams = RandomStreams(seed)
    provisioner = Provisioner(sim, default_type=instance_type,
                              boot_delay_ms=boot_delay_ms,
                              max_servers=max_servers)
    for _ in range(num_servers):
        provisioner.boot_server(immediate=True)
    sim.run(until=0.0)
    fabric = NetworkFabric(sim, local_latency_ms=local_latency_ms,
                           remote_rtt_ms=remote_rtt_ms)
    system = ActorSystem(sim, provisioner, fabric=fabric, streams=streams)
    return TestBed(sim=sim, provisioner=provisioner, system=system,
                   streams=streams, servers=list(provisioner.servers))


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table (the benches print paper tables)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, series: Sequence[Tuple[float, float]],
                  x_label: str = "t(ms)", y_label: str = "value",
                  max_points: int = 24) -> str:
    """Render a (downsampled) time series as text — one figure line."""
    points = list(series)
    spark = sparkline([y for _x, y in points])
    if len(points) > max_points:
        step = len(points) / max_points
        points = [points[int(i * step)] for i in range(max_points)]
    body = "  ".join(f"{x:.0f}:{y:.2f}" for x, y in points)
    return f"{name} [{x_label} -> {y_label}]  {spark}\n  {body}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
