"""Benchmark harness: test beds, recorders, table/series formatting."""

from .harness import (TestBed, build_cluster, format_series, format_table,
                      sparkline)
from .perf import (Timing, check_regression, default_bench_path, load_bench,
                   record_metrics, time_ops)
from .recorder import ClusterRecorder, latency_curve, mean

__all__ = [
    "TestBed", "build_cluster", "format_series", "format_table",
    "sparkline",
    "ClusterRecorder", "latency_curve", "mean",
    "Timing", "time_ops", "default_bench_path", "load_bench",
    "record_metrics", "check_regression",
]
