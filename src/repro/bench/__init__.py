"""Benchmark harness: test beds, recorders, table/series formatting."""

from .harness import (TestBed, build_cluster, format_series, format_table,
                      sparkline)
from .recorder import ClusterRecorder, latency_curve, mean

__all__ = [
    "TestBed", "build_cluster", "format_series", "format_table",
    "sparkline",
    "ClusterRecorder", "latency_curve", "mean",
]
