"""Time-series recording for experiments.

The paper's figures plot per-server CPU%, per-server actor counts, fleet
size, and client latency over time.  :class:`ClusterRecorder` samples the
first three on a fixed cadence; latency curves come from bucketing the
clients' raw samples with :func:`latency_curve`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..actors import ActorSystem, Client
from ..cluster import GaugeSeries
from ..sim import Timeout, spawn

__all__ = ["ClusterRecorder", "latency_curve", "mean"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence (silent zeros hide
    broken experiments)."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


class ClusterRecorder:
    """Samples cluster state every ``sample_ms`` of virtual time.

    Per-server series are keyed by server name; servers that join later
    begin their series at their first sample.
    """

    def __init__(self, system: ActorSystem, sample_ms: float = 5_000.0,
                 window_ms: float = 10_000.0) -> None:
        self.system = system
        self.sample_ms = sample_ms
        self.window_ms = window_ms
        self.cpu: Dict[str, GaugeSeries] = {}
        self.net: Dict[str, GaugeSeries] = {}
        self.actor_counts: Dict[str, GaugeSeries] = {}
        self.fleet_size = GaugeSeries("fleet_size")
        self._running = False

    def start(self) -> None:
        self._running = True
        spawn(self.system.sim, self._sample_loop(), name="recorder")

    def stop(self) -> None:
        self._running = False

    def _sample_loop(self):
        sim = self.system.sim
        while self._running:
            yield Timeout(sim, self.sample_ms)
            self.sample()

    def sample(self) -> None:
        now = self.system.sim.now
        servers = self.system.provisioner.servers
        self.fleet_size.record(now, len(servers))
        for server in servers:
            cpu = self.cpu.setdefault(
                server.name, GaugeSeries(f"cpu/{server.name}"))
            cpu.record(now, server.cpu_percent(self.window_ms))
            net = self.net.setdefault(
                server.name, GaugeSeries(f"net/{server.name}"))
            net.record(now, server.net_percent(self.window_ms))
            count = self.actor_counts.setdefault(
                server.name, GaugeSeries(f"actors/{server.name}"))
            count.record(now, len(self.system.actors_on(server)))

    # -- summaries -------------------------------------------------------------

    def cpu_spread_at_end(self) -> float:
        """Max-min CPU% across servers at the final sample (how balanced
        the cluster ended up)."""
        finals = [series.last() for series in self.cpu.values()
                  if len(series)]
        if not finals:
            return 0.0
        return max(finals) - min(finals)

    def actor_count_table(self) -> List[Tuple[str, float]]:
        return sorted((name, series.last())
                      for name, series in self.actor_counts.items()
                      if len(series))


def latency_curve(clients: Iterable[Client], bucket_ms: float
                  ) -> List[Tuple[float, float]]:
    """Aggregate client latency samples into time buckets.

    Returns (bucket start ms, mean latency ms) pairs, sorted — the series
    behind the paper's latency-over-time figures.
    """
    buckets: Dict[int, List[float]] = {}
    for client in clients:
        for when, value in client.latencies.samples:
            buckets.setdefault(int(when // bucket_ms), []).append(value)
    return [(index * bucket_ms, mean(values))
            for index, values in sorted(buckets.items())]
