"""Micro-benchmark timing and the ``BENCH_perf.json`` trajectory file.

The perf suite (``benchmarks/test_perf_hotpath.py``) measures the
elasticity hot paths — profiling ingest, actor snapshotting, GEM rule
evaluation, and the simulation kernel — and records the numbers into
``BENCH_perf.json`` at the repository root so successive PRs accumulate
a performance trajectory.

Two kinds of metrics are recorded per benchmark:

* **absolute** numbers (``*_ms``, ``*_ops_per_sec``) — machine-dependent,
  useful locally for before/after comparison on one machine;
* **ratios** (``*_ratio``: incremental cost / full-recompute cost,
  measured in the same process on the same machine; lower is better) —
  machine-independent, which is what CI gates on.  A PR that makes the
  incremental path relatively slower than the committed baseline by more
  than the tolerance fails the benchmark-smoke job.

A few absolute metrics are additionally **floor-gated**
(:func:`check_floors`): CI passes ``--floor bench.metric`` for numbers
that must not collapse below a fraction of the committed baseline —
e.g. ``sim_kernel.engine_events_per_sec``, where a silent fallback off
the calendar kernel's fast paths would otherwise only show up as an
untracked trajectory dip.

``python -m repro.bench.perf baseline.json current.json`` runs the
regression check standalone (exit code 1 on regression).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["Timing", "time_ops", "default_bench_path", "load_bench",
           "record_metrics", "check_regression", "check_floors"]

#: Tolerated relative growth of a ``*_ratio`` metric vs. the baseline.
DEFAULT_MAX_REGRESSION = 0.20

#: Fraction of the committed baseline a floor-gated absolute metric must
#: still reach.  Generous because absolute numbers are machine-dependent;
#: the floor exists to catch order-of-magnitude collapses (an accidental
#: fallback to a slow path), not few-percent drift.
DEFAULT_FLOOR_FRACTION = 0.90


@dataclass
class Timing:
    """Result of :func:`time_ops`: best-of-``repeats`` wall time."""

    best_s: float
    ops: int

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.best_s if self.best_s > 0 else float("inf")

    @property
    def ms_per_op(self) -> float:
        return 1000.0 * self.best_s / self.ops if self.ops else 0.0


def time_ops(fn: Callable[[], object], ops: int = 1,
             repeats: int = 3) -> Timing:
    """Time ``fn()`` (which performs ``ops`` operations), best of
    ``repeats`` runs — the standard way to suppress scheduler noise in a
    shared-runner environment."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return Timing(best_s=best, ops=ops)


def default_bench_path() -> str:
    """``$BENCH_PERF_PATH`` if set, else ``BENCH_perf.json`` at the repo
    root (three levels above this module in a source checkout)."""
    override = os.environ.get("BENCH_PERF_PATH")
    if override:
        return override
    root = os.path.abspath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "..", ".."))
    return os.path.join(root, "BENCH_perf.json")


def load_bench(path: Optional[str] = None) -> dict:
    """Load a bench file, or an empty document if none exists yet."""
    path = path or default_bench_path()
    if not os.path.exists(path):
        return {"schema": 1, "benchmarks": {}}
    with open(path) as handle:
        data = json.load(handle)
    data.setdefault("benchmarks", {})
    return data


def record_metrics(name: str, metrics: Dict[str, float],
                   path: Optional[str] = None) -> str:
    """Merge ``metrics`` for benchmark ``name`` into the trajectory file.

    Values are rounded to keep the committed file diff-friendly; ratios
    get more digits than wall times because they are the gated metrics.
    """
    path = path or default_bench_path()
    data = load_bench(path)
    rounded = {}
    for key, value in sorted(metrics.items()):
        digits = 4 if key.endswith("_ratio") else 2
        rounded[key] = round(float(value), digits)
    data["benchmarks"][name] = rounded
    data["benchmarks"] = dict(sorted(data["benchmarks"].items()))
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def check_regression(baseline: dict, current: dict,
                     max_regression: float = DEFAULT_MAX_REGRESSION
                     ) -> List[str]:
    """Compare ``*_ratio`` metrics of ``current`` against ``baseline``.

    Returns human-readable failure messages for every ratio that grew by
    more than ``max_regression`` (e.g. decision latency of the
    incremental path regressing relative to the full-recompute path).
    Benchmarks or metrics missing on either side are skipped — a new
    benchmark cannot fail its own introduction.
    """
    failures: List[str] = []
    base_benches = baseline.get("benchmarks", {})
    for name, metrics in current.get("benchmarks", {}).items():
        base_metrics = base_benches.get(name)
        if not base_metrics:
            continue
        for key, value in metrics.items():
            if not key.endswith("_ratio"):
                continue
            base_value = base_metrics.get(key)
            if base_value is None or base_value <= 0:
                continue
            if value > base_value * (1.0 + max_regression):
                failures.append(
                    f"{name}.{key}: {value:.4f} vs baseline "
                    f"{base_value:.4f} (>{100 * max_regression:.0f}% "
                    f"regression)")
    return failures


def check_floors(baseline: dict, current: dict, floors: List[str],
                 floor_fraction: float = DEFAULT_FLOOR_FRACTION
                 ) -> List[str]:
    """Hold selected absolute metrics to a floor against the baseline.

    ``floors`` is a list of ``benchmark.metric`` paths (higher-is-better
    throughput numbers, e.g. ``sim_kernel.engine_events_per_sec``).  A
    metric fails when the current value drops below ``floor_fraction``
    of the committed baseline value.  A floor naming a metric absent
    from ``current`` also fails — silently dropping the gated number
    must not pass the gate — while one absent from the *baseline* is
    skipped, so a new metric can introduce its own floor.
    """
    failures: List[str] = []
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    for path in floors:
        name, _, key = path.partition(".")
        if not key:
            failures.append(f"{path}: floor must be benchmark.metric")
            continue
        base_value = base_benches.get(name, {}).get(key)
        if base_value is None or base_value <= 0:
            continue
        value = cur_benches.get(name, {}).get(key)
        floor = base_value * floor_fraction
        if value is None:
            failures.append(
                f"{name}.{key}: metric missing from current run "
                f"(floor {floor:,.2f})")
        elif value < floor:
            failures.append(
                f"{name}.{key}: {value:,.2f} below floor {floor:,.2f} "
                f"({100 * floor_fraction:.0f}% of baseline "
                f"{base_value:,.2f})")
    return failures


def _main(argv: List[str]) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="Check BENCH_perf.json ratio metrics for regressions")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regress", type=float,
                        default=DEFAULT_MAX_REGRESSION)
    parser.add_argument(
        "--floor", action="append", default=[], metavar="BENCH.METRIC",
        help="absolute metric that must stay above --floor-frac of the "
             "baseline value (repeatable)")
    parser.add_argument("--floor-frac", type=float,
                        default=DEFAULT_FLOOR_FRACTION)
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)
    failures = check_regression(baseline, current, args.max_regress)
    failures += check_floors(baseline, current, args.floor,
                             args.floor_frac)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if not failures:
        print("perf ratios within tolerance")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(_main(sys.argv[1:]))
