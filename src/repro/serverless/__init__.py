"""Serverless + storage-tier substrate (paper §2.1's motivation).

The architecture PLASMA argues against for stateful applications:
stateless functions (:class:`FunctionPlatform`) that must externalize
all state to a storage tier (:class:`StorageTier`), reproduced so the
motivation benchmark can measure the gap against the actor runtime.
"""

from .functions import FunctionPlatform, InvocationStats
from .pagerank_serverless import (ServerlessPageRank, upload_graph,
                                  BYTES_PER_EDGE, BYTES_PER_NODE)
from .store import StorageStats, StorageTier

__all__ = [
    "FunctionPlatform", "InvocationStats",
    "StorageTier", "StorageStats",
    "ServerlessPageRank", "upload_graph",
    "BYTES_PER_NODE", "BYTES_PER_EDGE",
]
