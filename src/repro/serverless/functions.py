"""Serverless function platform (the AWS Lambda stand-in).

Functions are stateless: each invocation may land on a warm container
(fast) or trigger a cold start (slow); any state must come from and go
back to the storage tier.  The platform auto-scales containers with
demand — exactly the elasticity model whose limits for *stateful*
applications motivate PLASMA (paper §1-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..sim import Queue, Signal, Simulator, Timeout, spawn

__all__ = ["FunctionPlatform", "InvocationStats"]

#: A function body: a generator taking (platform, payload) that yields
#: simulation waitables (storage calls, timeouts) and returns a value.
FunctionBody = Callable[["FunctionPlatform", Any],
                        Generator[Any, Any, Any]]


@dataclass
class InvocationStats:
    invocations: int = 0
    cold_starts: int = 0
    total_latency_ms: float = 0.0

    def mean_latency_ms(self) -> float:
        return (self.total_latency_ms / self.invocations
                if self.invocations else 0.0)


class FunctionPlatform:
    """Auto-scaling stateless function executor.

    - warm containers serve one invocation at a time;
    - an invocation with no idle warm container triggers a cold start
      (``cold_start_ms``), after which the new container stays warm;
    - warm containers idle longer than ``keep_alive_ms`` are reclaimed —
      the provider's scale-to-zero behaviour.
    """

    def __init__(self, sim: Simulator, cold_start_ms: float = 250.0,
                 keep_alive_ms: float = 300_000.0,
                 max_containers: int = 256) -> None:
        self.sim = sim
        self.cold_start_ms = cold_start_ms
        self.keep_alive_ms = keep_alive_ms
        self.max_containers = max_containers
        self.stats = InvocationStats()
        self._functions: Dict[str, FunctionBody] = {}
        self._idle_since: Dict[int, float] = {}
        self._next_container = 1
        self._warm_pool: List[int] = []
        self._busy: int = 0

    def register(self, name: str, body: FunctionBody) -> None:
        """Deploy a function under ``name``."""
        self._functions[name] = body

    def container_count(self) -> int:
        """Warm + currently executing containers."""
        return len(self._warm_pool) + self._busy

    def invoke(self, name: str, payload: Any = None) -> Signal:
        """Invoke ``name``; returns a signal resolving to its result."""
        body = self._functions.get(name)
        if body is None:
            raise KeyError(f"no function registered as {name!r}")
        done = Signal(self.sim)
        spawn(self.sim, self._run(body, payload, done),
              name=f"lambda/{name}")
        return done

    def _acquire_container(self):
        self._reclaim_idle()
        if self._warm_pool:
            container = self._warm_pool.pop()
            self._busy += 1
            return container, False
        if self.container_count() >= self.max_containers:
            # Throttled: behave like a cold start worth of backoff.
            return None, True
        container = self._next_container
        self._next_container += 1
        self._busy += 1
        return container, True

    def _release_container(self, container: int) -> None:
        self._busy -= 1
        self._warm_pool.append(container)
        self._idle_since[container] = self.sim.now

    def _reclaim_idle(self) -> None:
        alive = []
        for container in self._warm_pool:
            idle_for = self.sim.now - self._idle_since.get(container, 0.0)
            if idle_for <= self.keep_alive_ms:
                alive.append(container)
        self._warm_pool = alive

    def _run(self, body: FunctionBody, payload: Any, done: Signal):
        started = self.sim.now
        container, cold = self._acquire_container()
        while container is None:
            yield Timeout(self.sim, self.cold_start_ms)
            container, cold = self._acquire_container()
        if cold:
            self.stats.cold_starts += 1
            yield Timeout(self.sim, self.cold_start_ms)
        try:
            result = yield from body(self, payload)
        finally:
            self._release_container(container)
        self.stats.invocations += 1
        self.stats.total_latency_ms += self.sim.now - started
        done.trigger(result)
