"""PageRank on the serverless + storage-tier substrate (paper §2.1).

The paper's motivating measurement: implementing stateful computations
as stateless functions over a storage tier is "currently impractical"
— ~25 ms per DynamoDB write, >70 s to load a small 22 MB graph, and the
distributed PageRank "needs to update ≈1.2 GB data at each round".

This module implements exactly that architecture: each iteration, one
function per partition *loads* its partition state from the store,
computes contributions, *writes* them back, and a reduce function folds
them — every byte of state crossing the storage tier twice per round.
The motivation benchmark compares it against the actor-based PageRank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graphs import Graph, partition_graph
from ..sim import Simulator, Timeout, spawn
from .functions import FunctionPlatform
from .store import StorageTier

__all__ = ["ServerlessPageRank", "upload_graph", "BYTES_PER_NODE",
           "BYTES_PER_EDGE"]

#: Serialized sizes (id + rank / id pair), matching "22 MB graph" scale.
BYTES_PER_NODE = 16.0
BYTES_PER_EDGE = 8.0
COMPUTE_MS_PER_UNIT = 0.4  # same per-unit kernel cost as the actor app


def upload_graph(sim: Simulator, store: StorageTier, graph: Graph,
                 num_partitions: int, partition_seed: int = 5,
                 bytes_per_node: float = BYTES_PER_NODE,
                 bytes_per_edge: float = BYTES_PER_EDGE) -> Dict:
    """Write vertices, edges and partitions into the storage tier
    (the paper's ">70 s to write ... a small 22 MB graph" step).

    Returns a manifest with the partition layout and upload time.
    """
    import random
    result = partition_graph(graph, num_partitions,
                             random.Random(partition_seed))
    nodes_of: List[List[int]] = [[] for _ in range(num_partitions)]
    for node, part in enumerate(result.assignment):
        nodes_of[part].append(node)

    started = sim.now
    finished = []

    def uploader():
        for part in range(num_partitions):
            nodes = nodes_of[part]
            edges = sum(graph.out_degree(n) for n in nodes)
            size = (len(nodes) * bytes_per_node
                    + edges * bytes_per_edge)
            state = {
                "nodes": nodes,
                "out_edges": {n: list(graph.out_edges(n)) for n in nodes},
                "rank": {n: 1.0 / graph.num_nodes for n in nodes},
            }
            yield store.put(f"partition/{part}", state, size)
        yield store.put("manifest",
                        {"partitions": num_partitions,
                         "assignment": list(result.assignment)},
                        graph.num_nodes * 4.0)
        finished.append(sim.now - started)

    spawn(sim, uploader(), name="graph-upload")
    while not finished:
        if sim.peek() is None:
            raise RuntimeError("upload stalled")
        sim.run(until=sim.now + 10_000.0)
    return {"upload_ms": finished[0], "assignment": result.assignment,
            "nodes_of": nodes_of}


@dataclass
class IterationOutcome:
    iteration_ms: List[float]
    storage_ops: int
    bytes_moved: float


class ServerlessPageRank:
    """The stateless-function PageRank the paper's §2.1 argues against."""

    def __init__(self, sim: Simulator, store: StorageTier,
                 platform: FunctionPlatform, num_partitions: int,
                 total_nodes: int, damping: float = 0.85,
                 bytes_per_node: float = BYTES_PER_NODE,
                 bytes_per_edge: float = BYTES_PER_EDGE) -> None:
        self.sim = sim
        self.store = store
        self.platform = platform
        self.num_partitions = num_partitions
        self.total_nodes = total_nodes
        self.damping = damping
        self.bytes_per_node = bytes_per_node
        self.bytes_per_edge = bytes_per_edge
        platform.register("compute_partition", self._compute_partition)
        platform.register("apply_partition", self._apply_partition)

    # -- function bodies (stateless: all state via the store) -------------------

    def _compute_partition(self, platform: FunctionPlatform, part: int):
        state = yield self.store.get(f"partition/{part}")
        manifest = yield self.store.get("manifest")
        assignment = manifest["assignment"]
        units = (len(state["nodes"])
                 + sum(len(t) for t in state["out_edges"].values()))
        yield Timeout(self.sim, COMPUTE_MS_PER_UNIT * units)
        contribs: Dict[int, Dict[int, float]] = {}
        dangling = 0.0
        for node in state["nodes"]:
            targets = state["out_edges"].get(node, [])
            if not targets:
                dangling += state["rank"][node]
                continue
            share = state["rank"][node] / len(targets)
            for target in targets:
                bucket = contribs.setdefault(assignment[target], {})
                bucket[target] = bucket.get(target, 0.0) + share
        for target_part, bucket in contribs.items():
            size = len(bucket) * self.bytes_per_node
            yield self.store.put(
                f"contrib/{part}/{target_part}", bucket, size)
        return dangling

    def _apply_partition(self, platform: FunctionPlatform, payload):
        part, dangling_total = payload
        state = yield self.store.get(f"partition/{part}")
        incoming: Dict[int, float] = {}
        for source in range(self.num_partitions):
            bucket = yield self.store.get(f"contrib/{source}/{part}")
            if bucket:
                for node, share in bucket.items():
                    incoming[node] = incoming.get(node, 0.0) + share
        base = ((1.0 - self.damping) / self.total_nodes
                + self.damping * dangling_total / self.total_nodes)
        for node in state["nodes"]:
            state["rank"][node] = (base + self.damping
                                   * incoming.get(node, 0.0))
        units = len(state["nodes"])
        size = (units * self.bytes_per_node
                + sum(len(t) for t in state["out_edges"].values())
                * self.bytes_per_edge)
        yield self.store.put(f"partition/{part}", state, size)
        return True

    # -- driver --------------------------------------------------------------------

    def run(self, iterations: int) -> IterationOutcome:
        times: List[float] = []
        finished = []

        def driver():
            for _ in range(iterations):
                started = self.sim.now
                computes = [self.platform.invoke("compute_partition", p)
                            for p in range(self.num_partitions)]
                danglings = []
                for signal in computes:
                    value = yield signal
                    danglings.append(value)
                total_dangling = sum(danglings)
                applies = [self.platform.invoke(
                    "apply_partition", (p, total_dangling))
                    for p in range(self.num_partitions)]
                for signal in applies:
                    yield signal
                times.append(self.sim.now - started)
            finished.append(True)

        spawn(self.sim, driver(), name="serverless-pagerank")
        while not finished:
            if self.sim.peek() is None:
                raise RuntimeError("serverless driver stalled")
            self.sim.run(until=self.sim.now + 60_000.0)
        return IterationOutcome(
            iteration_ms=times,
            storage_ops=self.store.stats.operations(),
            bytes_moved=(self.store.stats.bytes_read
                         + self.store.stats.bytes_written))

    def collect_ranks(self) -> List[float]:
        """Read back the final ranks (test use; pays storage reads)."""
        ranks = [0.0] * self.total_nodes
        done = []

        def reader():
            for part in range(self.num_partitions):
                state = yield self.store.get(f"partition/{part}")
                for node, value in state["rank"].items():
                    ranks[node] = value
            done.append(True)

        spawn(self.sim, reader(), name="rank-reader")
        while not done:
            self.sim.run(until=self.sim.now + 10_000.0)
        return ranks
