"""Cloud storage tier (the DynamoDB stand-in).

Stateless serverless functions must externalize state to a storage tier
between invocations.  The paper's §2.1 measures why that's untenable for
stateful applications: ~25 ms per DynamoDB write and >70 s to persist a
22 MB graph.  This model reproduces those characteristics: per-request
base latency, size-dependent transfer time, and a concurrency limit
(provisioned throughput) that queues excess requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim import Queue, Signal, Simulator, Timeout, spawn

__all__ = ["StorageTier", "StorageStats"]


@dataclass
class StorageStats:
    reads: int = 0
    writes: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    total_latency_ms: float = 0.0

    def operations(self) -> int:
        return self.reads + self.writes


class StorageTier:
    """A remote key-value storage service with realistic latency.

    Parameters mirror the paper's measurements: ``write_latency_ms=25``
    is the DynamoDB average the authors report; reads are cheaper;
    ``bytes_per_ms`` models the item-size-dependent transfer cost that
    turns a 22 MB graph into a >70 s upload; ``concurrency`` is the
    provisioned-throughput limit beyond which requests queue.
    """

    def __init__(self, sim: Simulator,
                 read_latency_ms: float = 10.0,
                 write_latency_ms: float = 25.0,
                 bytes_per_ms: float = 300.0 * 1024.0 / 1000.0,
                 concurrency: int = 32) -> None:
        self.sim = sim
        self.read_latency_ms = read_latency_ms
        self.write_latency_ms = write_latency_ms
        self.bytes_per_ms = bytes_per_ms
        self.concurrency = concurrency
        self.stats = StorageStats()
        self._data: Dict[str, Tuple[Any, float]] = {}
        self._queue: Queue = Queue(sim)
        for _ in range(concurrency):
            spawn(sim, self._worker(), name="storage-worker")

    # -- client API (yield the returned signal) ---------------------------------

    def get(self, key: str) -> Signal:
        """Read ``key``; the signal resolves to the stored value or None."""
        done = Signal(self.sim)
        self._queue.put(("get", key, None, 0.0, done, self.sim.now))
        return done

    def put(self, key: str, value: Any, size_bytes: float) -> Signal:
        """Write ``key``; the signal resolves to True when durable."""
        done = Signal(self.sim)
        self._queue.put(("put", key, value, size_bytes, done, self.sim.now))
        return done

    # -- service loop -----------------------------------------------------------

    def _worker(self):
        while True:
            op, key, value, size, done, enqueued = yield self._queue.get()
            if op == "get":
                stored = self._data.get(key)
                payload_size = stored[1] if stored else 0.0
                delay = self.read_latency_ms + payload_size / self.bytes_per_ms
                yield Timeout(self.sim, delay)
                self.stats.reads += 1
                self.stats.bytes_read += payload_size
                self.stats.total_latency_ms += self.sim.now - enqueued
                done.trigger(stored[0] if stored else None)
            else:
                delay = self.write_latency_ms + size / self.bytes_per_ms
                yield Timeout(self.sim, delay)
                self._data[key] = (value, size)
                self.stats.writes += 1
                self.stats.bytes_written += size
                self.stats.total_latency_ms += self.sim.now - enqueued
                done.trigger(True)

    # -- inspection ---------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether ``key`` is durably stored (no latency; test use)."""
        return key in self._data

    def mean_latency_ms(self) -> float:
        """Mean request latency including queueing, over all requests."""
        ops = self.stats.operations()
        return self.stats.total_latency_ms / ops if ops else 0.0
