"""Request-skew distributions used by the paper's workloads."""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

__all__ = ["hot_one_split", "cascade_split", "zipf_weights",
           "WeightedChoice"]

T = TypeVar("T")


def hot_one_split(n: int, hot_share: float) -> List[float]:
    """One hot item takes ``hot_share``; the rest split the remainder
    evenly.  (Metadata Server: 1 of 4 folders receives 50% of requests.)
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= hot_share <= 1.0:
        raise ValueError("hot_share must be in [0, 1]")
    if n == 1:
        return [1.0]
    cold = (1.0 - hot_share) / (n - 1)
    return [hot_share] + [cold] * (n - 1)


def cascade_split(n: int, fraction: float = 0.35) -> List[float]:
    """E-Store's skew: the first partition receives ``fraction`` of all
    requests, the second ``fraction`` of the remainder, and so on; the
    tail gets whatever is left."""
    if n <= 0:
        raise ValueError("n must be positive")
    weights: List[float] = []
    remaining = 1.0
    for _ in range(n - 1):
        weights.append(remaining * fraction)
        remaining *= (1.0 - fraction)
    weights.append(remaining)
    return weights


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Normalized Zipf weights: weight(i) ∝ 1 / (i+1)^exponent."""
    raw = [1.0 / (i + 1) ** exponent for i in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


class WeightedChoice:
    """Reproducible weighted sampling with O(n) setup, O(log n) draws."""

    def __init__(self, items: Sequence[T], weights: Sequence[float],
                 rng: random.Random) -> None:
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        if not items:
            raise ValueError("need at least one item")
        self._items = list(items)
        self._rng = rng
        self._cumulative: List[float] = []
        total = 0.0
        for weight in weights:
            if weight < 0:
                raise ValueError("weights must be non-negative")
            total += weight
            self._cumulative.append(total)
        if total <= 0:
            raise ValueError("total weight must be positive")
        self._total = total

    def pick(self) -> T:
        import bisect
        point = self._rng.random() * self._total
        index = bisect.bisect_right(self._cumulative, point)
        return self._items[min(index, len(self._items) - 1)]
