"""Workload generation: request skews, arrival schedules, client loops."""

from .clients import closed_loop, start_closed_loop
from .distributions import (WeightedChoice, cascade_split, hot_one_split,
                            zipf_weights)
from .schedules import (burst_windows, constant_schedule,
                        flash_crowd_schedule, normal_wave_schedule,
                        round_join_schedule)

__all__ = [
    "closed_loop", "start_closed_loop",
    "WeightedChoice", "cascade_split", "hot_one_split", "zipf_weights",
    "burst_windows", "constant_schedule", "flash_crowd_schedule",
    "normal_wave_schedule", "round_join_schedule",
]
