"""Client arrival/departure schedules from the paper's experiments."""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = ["normal_wave_schedule", "round_join_schedule",
           "constant_schedule"]


def normal_wave_schedule(num_clients: int, join_mean_ms: float,
                         join_sigma_ms: float, leave_mean_ms: float,
                         leave_sigma_ms: float,
                         rng: random.Random) -> List[Tuple[float, float]]:
    """Media Service schedule: clients join and leave at normally
    distributed times (paper: join N(2 min, 90 s), leave N(19 min, 90 s)).

    Returns one (join_ms, leave_ms) pair per client, clamped so joins are
    non-negative and every client leaves after it joined.
    """
    schedule = []
    for _ in range(num_clients):
        join = max(0.0, rng.gauss(join_mean_ms, join_sigma_ms))
        leave = max(join + 1_000.0, rng.gauss(leave_mean_ms, leave_sigma_ms))
        schedule.append((join, leave))
    return schedule


def round_join_schedule(num_clients: int, rounds: int, round_ms: float,
                        rng: random.Random) -> List[float]:
    """Halo schedule: clients join in ``rounds`` equal batches, each client
    at a uniformly random time inside its round (paper: 32 clients in 4
    rounds of 180 s)."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    per_round, remainder = divmod(num_clients, rounds)
    joins: List[float] = []
    for round_index in range(rounds):
        count = per_round + (1 if round_index < remainder else 0)
        start = round_index * round_ms
        joins.extend(start + rng.random() * round_ms for _ in range(count))
    joins.sort()
    return joins


def constant_schedule(num_clients: int) -> List[float]:
    """All clients present from time zero."""
    return [0.0] * num_clients
