"""Client arrival/departure schedules from the paper's experiments."""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = ["normal_wave_schedule", "round_join_schedule",
           "constant_schedule", "flash_crowd_schedule",
           "burst_windows"]


def normal_wave_schedule(num_clients: int, join_mean_ms: float,
                         join_sigma_ms: float, leave_mean_ms: float,
                         leave_sigma_ms: float,
                         rng: random.Random) -> List[Tuple[float, float]]:
    """Media Service schedule: clients join and leave at normally
    distributed times (paper: join N(2 min, 90 s), leave N(19 min, 90 s)).

    Returns one (join_ms, leave_ms) pair per client, clamped so joins are
    non-negative and every client leaves after it joined.
    """
    schedule = []
    for _ in range(num_clients):
        join = max(0.0, rng.gauss(join_mean_ms, join_sigma_ms))
        leave = max(join + 1_000.0, rng.gauss(leave_mean_ms, leave_sigma_ms))
        schedule.append((join, leave))
    return schedule


def round_join_schedule(num_clients: int, rounds: int, round_ms: float,
                        rng: random.Random) -> List[float]:
    """Halo schedule: clients join in ``rounds`` equal batches, each client
    at a uniformly random time inside its round (paper: 32 clients in 4
    rounds of 180 s)."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    per_round, remainder = divmod(num_clients, rounds)
    joins: List[float] = []
    for round_index in range(rounds):
        count = per_round + (1 if round_index < remainder else 0)
        start = round_index * round_ms
        joins.extend(start + rng.random() * round_ms for _ in range(count))
    joins.sort()
    return joins


def constant_schedule(num_clients: int) -> List[float]:
    """All clients present from time zero."""
    return [0.0] * num_clients


def flash_crowd_schedule(num_clients: int, at_ms: float, spread_ms: float,
                         rng: random.Random) -> List[float]:
    """Overload schedule: the whole population joins in one burst.

    Every client joins at a uniformly random instant inside the
    ``[at_ms, at_ms + spread_ms)`` window — the flash-crowd arrival that
    admission control and load shedding exist for.  ``spread_ms == 0``
    degenerates to a perfectly synchronized thundering herd.
    """
    if at_ms < 0:
        raise ValueError("at_ms must be non-negative")
    if spread_ms < 0:
        raise ValueError("spread_ms must be non-negative")
    joins = [at_ms + rng.random() * spread_ms for _ in range(num_clients)]
    joins.sort()
    return joins


def burst_windows(duration_ms: float, burst_ms: float, idle_ms: float,
                  think_ms: float,
                  burst_think_ms: float) -> List[Tuple[float, float, float]]:
    """A square-wave load profile: alternating burst and idle windows.

    Returns ``(start_ms, end_ms, think_ms)`` triples covering
    ``[0, duration_ms)``, alternating the idle think time with the (much
    smaller) burst think time.  Drive a client loop by picking the think
    time for the current window; the bursty arrival pattern is what the
    AvailabilityMeter conservation property tests run under.
    """
    if burst_ms <= 0 or idle_ms <= 0:
        raise ValueError("burst_ms and idle_ms must be positive")
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    windows: List[Tuple[float, float, float]] = []
    now, bursting = 0.0, False
    while now < duration_ms:
        span = burst_ms if bursting else idle_ms
        end = min(now + span, duration_ms)
        windows.append((now, end,
                        burst_think_ms if bursting else think_ms))
        now, bursting = end, not bursting
    return windows
