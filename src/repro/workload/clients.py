"""Reusable closed-loop client drivers.

A closed-loop client issues one request, waits for the reply, thinks,
and repeats — the model behind every latency figure in the paper.  The
driver is a plain simulation process so applications can also write their
own loops when they need richer behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from ..actors import ActorRef, Client
from ..sim import Process, Simulator, Timeout, spawn

__all__ = ["closed_loop", "start_closed_loop"]

#: Returns (target ref, function name, args tuple) for the next request.
RequestPicker = Callable[[], Tuple[ActorRef, str, Tuple[Any, ...]]]


def closed_loop(client: Client, pick: RequestPicker, think_ms: float,
                until_ms: float,
                start_delay_ms: float = 0.0):
    """Generator body of a closed-loop client.

    Runs until the virtual clock passes ``until_ms``.  Latencies are
    recorded on the client's latency series by ``timed_call``.
    """
    sim = client.system.sim
    if start_delay_ms > 0:
        yield Timeout(sim, start_delay_ms)
    while sim.now < until_ms:
        ref, function, args = pick()
        yield from client.timed_call(ref, function, *args)
        if think_ms > 0:
            yield Timeout(sim, think_ms)


def start_closed_loop(client: Client, pick: RequestPicker, think_ms: float,
                      until_ms: float,
                      start_delay_ms: float = 0.0) -> Process:
    """Spawn a closed-loop client process; returns the process handle."""
    return spawn(client.system.sim,
                 closed_loop(client, pick, think_ms, until_ms,
                             start_delay_ms),
                 name=f"client/{client.name}")
