"""Configuration for the durable-state subsystem.

``DurabilityConfig`` is carried on ``EmrConfig.durability``.  The
default is **off**: with ``enabled=False`` (or the field left ``None``)
the runtime schedules nothing, charges nothing, and consumes no
randomness, so fault-free golden traces stay bit-identical to a build
without the subsystem.  The subsystem itself never draws from an RNG
even when enabled — replica placement and checkpoint timing are fully
deterministic functions of the simulation state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DurabilityConfig"]


@dataclass
class DurabilityConfig:
    """Knobs for checkpointing, replication, and journaling.

    enabled:
        Master switch.  ``False`` makes the whole subsystem inert.
    checkpoint_interval_ms:
        Period of the background checkpoint sweep.  Each sweep
        checkpoints every actor that processed at least one message
        since its last checkpoint.
    dirty_message_threshold:
        If set, an actor that processes this many messages since its
        last checkpoint is checkpointed immediately instead of waiting
        for the sweep.  ``None`` disables dirty-triggered writes.
    replication_factor:
        Number of peer servers each checkpoint is copied to.  Peers are
        chosen deterministically among running servers reachable from
        the actor's host (partition-side-aware: severed links are
        skipped).  When no peer is reachable the write degrades to a
        host-local copy — which a host crash then destroys, exactly the
        exposure the replication factor is meant to buy down.
    serialize_cpu_ms:
        CPU time charged to the host server for serializing one
        snapshot, through the same ``Server.execute`` path EPR profiling
        overhead uses, so checkpointing contends with application work.
    snapshot_fraction:
        Fraction of the actor's ``state_size_mb`` actually written per
        checkpoint (models incremental/delta snapshots).  The byte count
        is charged to NIC meters via the network fabric's transfer cost
        model.
    journal:
        Keep a write-ahead journal of directory mutations and
        two-phase-migration phase transitions, replayed (counted and
        reported) on recovery.
    ship_transfer_checkpoint:
        During two-phase migration, take a checkpoint at transfer start
        whose sole replica is the migration target; commit acknowledges
        it, rollback restores the instance from it.
    max_checkpoints_per_actor:
        Retention cap per actor; older acknowledged checkpoints beyond
        the cap are pruned.
    """

    enabled: bool = False
    checkpoint_interval_ms: float = 10_000.0
    dirty_message_threshold: Optional[int] = None
    replication_factor: int = 2
    serialize_cpu_ms: float = 0.2
    snapshot_fraction: float = 1.0
    journal: bool = True
    ship_transfer_checkpoint: bool = True
    max_checkpoints_per_actor: int = 4

    def __post_init__(self) -> None:
        if self.checkpoint_interval_ms <= 0:
            raise ValueError("checkpoint_interval_ms must be positive, "
                             f"got {self.checkpoint_interval_ms!r}")
        if (self.dirty_message_threshold is not None
                and self.dirty_message_threshold < 1):
            raise ValueError("dirty_message_threshold must be >= 1 or None, "
                             f"got {self.dirty_message_threshold!r}")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1, "
                             f"got {self.replication_factor!r}")
        if self.serialize_cpu_ms < 0:
            raise ValueError("serialize_cpu_ms must be >= 0, "
                             f"got {self.serialize_cpu_ms!r}")
        if not 0.0 < self.snapshot_fraction <= 1.0:
            raise ValueError("snapshot_fraction must be in (0, 1], "
                             f"got {self.snapshot_fraction!r}")
        if self.max_checkpoints_per_actor < 1:
            raise ValueError("max_checkpoints_per_actor must be >= 1, "
                             f"got {self.max_checkpoints_per_actor!r}")
