"""The durability runtime: checkpoint protocol and state-preserving recovery.

``DurabilityManager`` attaches to the actor runtime through the same
:class:`~repro.actors.hooks.RuntimeHooks` observation interface the
profiler uses, plus two explicit call sites inside the migration
protocol (prepare and transfer — there is no hook at those points).  It
owns a :class:`~repro.durability.store.StateStore` and drives the
checkpoint protocol:

* every actor gets a checkpoint at creation (and a baseline one at
  subsystem start, for actors deployed earlier);
* a periodic sweep checkpoints every actor that processed at least one
  message since its last checkpoint ("dirty"), in actor-id order;
* optionally, an actor crossing ``dirty_message_threshold`` messages is
  checkpointed immediately;
* the two-phase migration transfer ships a checkpoint whose sole replica
  is the target: commit acknowledges it, rollback restores the source
  instance from it.

Each write snapshots the instance synchronously (charging serialize CPU
to the host through ``Server.execute``, like EPR overhead), then
replicates asynchronously: the payload travels to ``replication_factor``
deterministically chosen peers over the network fabric's transfer-cost
model (NIC meters are charged, so durability traffic is visible to
``net`` rules), and the checkpoint is **acknowledged** only when the
slowest copy lands.  A host crash before the ack aborts the write —
that un-acknowledged tail is the state-loss window the checkpoint
interval bounds.

Recovery: ``ActorSystem.resurrect_actor`` calls :meth:`on_restore`
(through ``system.durability``) after constructing the fresh instance.
The newest *acknowledged* checkpoint with a readable replica — running,
not quorum-less, link to the new host not severed — is deep-copied into
the instance via ``restore_state``, and the write-ahead journal entries
recorded after that snapshot are replayed (surfaced as the
``journal-replayed`` event; the entries record directory/migration
transitions, which the runtime has already re-derived, so replay is
accounting rather than mutation).

Determinism: the subsystem draws no randomness anywhere — replica
placement is a deterministic function of server ids, and all timing
comes from the fabric's cost model.  When disabled it attaches no hooks
and schedules nothing, so fault-free golden traces are bit-identical.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..actors import ActorRecord, RuntimeHooks
from ..cluster import Server
from ..sim import Timeout, spawn
from .config import DurabilityConfig
from .store import Checkpoint, StateStore, state_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..actors.message import Message
    from ..core.emr.manager import ElasticityManager

__all__ = ["DurabilityManager"]

_BYTES_PER_MB = 1024.0 * 1024.0


class _DurabilityHooks(RuntimeHooks):
    """Runtime-hook adapter feeding the durability manager."""

    def __init__(self, manager: "DurabilityManager") -> None:
        self.manager = manager

    def on_actor_created(self, record: ActorRecord) -> None:
        self.manager._on_created(record)

    def on_actor_destroyed(self, record: ActorRecord) -> None:
        self.manager._on_destroyed(record)

    def on_message_delivered(self, record: ActorRecord,
                             message: "Message") -> None:
        self.manager._on_message(record)

    def on_actor_migrated(self, record: ActorRecord, src: Server,
                          dst: Server) -> None:
        self.manager._on_migrated(record, src, dst)

    def on_migration_aborted(self, record: ActorRecord, src: Server,
                             dst: Server, reason: str) -> None:
        self.manager._on_migration_aborted(record, src, dst, reason)

    def on_server_crashed(self, server: Server,
                          lost: List[ActorRecord]) -> None:
        self.manager._on_server_crashed(server, lost)

    def on_actor_resurrected(self, record: ActorRecord) -> None:
        self.manager._on_resurrected(record)


class DurabilityManager:
    """Checkpointing, replication, journaling, and restore."""

    def __init__(self, emr: "ElasticityManager") -> None:
        self.emr = emr
        self.system = emr.system
        config = emr.config.durability
        if config is None or not config.enabled:
            raise ValueError("DurabilityManager requires an enabled "
                             "DurabilityConfig")
        self.config: DurabilityConfig = config
        self.store = StateStore(
            max_per_actor=config.max_checkpoints_per_actor,
            journal_enabled=config.journal)
        self.running = False
        self.restores = 0
        self.restore_misses = 0
        self.journal_replays = 0
        self._hooks = _DurabilityHooks(self)
        self._dirty: Dict[int, int] = {}
        self._writing: set = set()
        #: In-flight (snapshotted, not yet acknowledged) writes by source
        #: server id — a source crash aborts them: the copies never all
        #: landed, so the checkpoint must never become restorable.
        self._inflight: Dict[int, List[Checkpoint]] = {}
        #: Checkpoint shipped by an in-progress migration transfer, by
        #: actor id; acknowledged at commit, restored from on rollback.
        self._transfer_cps: Dict[int, Checkpoint] = {}

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.system.add_hooks(self._hooks)
        self.system.durability = self
        # Baseline: actors deployed before the subsystem started still
        # need a durable copy of their spawn-time state.
        for record in self._sorted_records():
            self._write_checkpoint(record, "baseline")
        spawn(self.system.sim, self._checkpoint_loop(),
              name="durability/checkpointer")

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        if self._hooks in self.system.hooks:
            self.system.remove_hooks(self._hooks)
        if self.system.durability is self:
            self.system.durability = None

    def _sorted_records(self) -> List[ActorRecord]:
        return sorted(self.system.directory.records(),
                      key=lambda r: r.ref.actor_id)

    # ------------------------------------------------------------------
    # checkpoint protocol

    def _checkpoint_loop(self):
        sim = self.system.sim
        while self.running:
            yield Timeout(sim, self.config.checkpoint_interval_ms)
            if not self.running:
                return
            for record in self._sorted_records():
                if self._dirty.get(record.ref.actor_id, 0) > 0:
                    self._write_checkpoint(record, "periodic")

    def _write_checkpoint(self, record: ActorRecord,
                          trigger: str) -> Optional[Checkpoint]:
        """Snapshot ``record`` and replicate the payload asynchronously."""
        actor_id = record.ref.actor_id
        if (not self.running or record.migrating
                or actor_id in self._writing
                or self.system.directory.try_lookup(actor_id) is not record):
            return None
        sim = self.system.sim
        host = record.server
        state = record.instance.snapshot_state()
        size_bytes = (record.instance.state_size_mb
                      * self.config.snapshot_fraction * _BYTES_PER_MB)
        replicas = self._choose_replicas(host)
        checkpoint = Checkpoint(
            actor_id=actor_id, type_name=record.ref.type_name,
            seq=self.store.next_seq(actor_id), taken_at=sim.now,
            state=state, size_bytes=size_bytes, trigger=trigger,
            journal_mark=self.store.journal_mark,
            digest=state_digest(state), replicas=replicas)
        self.store.add(checkpoint)
        self._dirty[actor_id] = 0
        self._writing.add(actor_id)
        self._inflight.setdefault(host.server_id, []).append(checkpoint)
        if self.config.serialize_cpu_ms > 0.0:
            host.execute(self.config.serialize_cpu_ms, owner=record)
        self.emr.emit("checkpoint-written", actor=str(record.ref),
                      actor_id=actor_id, seq=checkpoint.seq,
                      trigger=trigger, size_bytes=size_bytes,
                      replicas=checkpoint.replica_names,
                      digest=checkpoint.digest)
        spawn(sim, self._replicate(checkpoint, host),
              name=f"durability/write/{record.ref}#{checkpoint.seq}")
        return checkpoint

    def _choose_replicas(self, host: Server) -> Tuple[Server, ...]:
        """Deterministic, partition-side-aware replica placement.

        Running peers whose links to/from the host are not severed,
        sorted by server id; the start offset spreads different hosts'
        copies across the fleet without randomness.  With no reachable
        peer the write degrades to a host-local copy.
        """
        fabric = self.system.fabric
        peers = [s for s in self.system.provisioner.servers
                 if s.running and s is not host
                 and not fabric.link_blocked(host, s)
                 and not fabric.link_blocked(s, host)]
        if not peers:
            return (host,)
        peers.sort(key=lambda s: s.server_id)
        count = min(self.config.replication_factor, len(peers))
        start = host.server_id % len(peers)
        return tuple(peers[(start + i) % len(peers)] for i in range(count))

    def _replicate(self, checkpoint: Checkpoint, host: Server):
        """Ship one checkpoint to its replicas; ack when the slowest
        copy lands.  ``transfer_delay`` charges both NIC meters, so the
        durability traffic shows up in ``net`` rules and percentages."""
        sim = self.system.sim
        fabric = self.system.fabric
        delay = max(fabric.transfer_delay(host, replica,
                                          checkpoint.size_bytes)
                    for replica in checkpoint.replicas)
        yield Timeout(sim, delay)
        self._writing.discard(checkpoint.actor_id)
        inflight = self._inflight.get(host.server_id)
        if inflight is not None and checkpoint in inflight:
            inflight.remove(checkpoint)
        if checkpoint.aborted or not self.running:
            return
        survivors = tuple(s for s in checkpoint.replicas if s.running)
        if not survivors:
            checkpoint.aborted = True
            self.store.checkpoints_lost += 1
            return
        checkpoint.replicas = survivors
        self.store.ack(checkpoint, sim.now)
        self.emr.emit("checkpoint-replicated", actor_id=checkpoint.actor_id,
                      actor=f"<{checkpoint.type_name}#{checkpoint.actor_id}>",
                      seq=checkpoint.seq, trigger=checkpoint.trigger,
                      replicas=checkpoint.replica_names,
                      digest=checkpoint.digest, latency_ms=delay)

    # ------------------------------------------------------------------
    # recovery

    def on_restore(self, record: ActorRecord) -> bool:
        """Restore a resurrected actor from its newest readable
        acknowledged checkpoint.  Called by ``resurrect_actor`` after the
        fresh instance is built and started.  Returns whether any state
        was restored."""
        if not self.running:
            return False
        sim = self.system.sim
        fabric = self.system.fabric
        host = record.server
        actor_id = record.ref.actor_id

        def usable(server: Server) -> bool:
            return (server.running
                    and not self.emr.server_quorumless(server)
                    and not fabric.link_blocked(host, server)
                    and not fabric.link_blocked(server, host))

        checkpoint = self.store.latest_acked(actor_id, usable)
        if checkpoint is None:
            self.restore_misses += 1
            return False
        source = self.store.readable_replicas(checkpoint, usable)[0]
        record.instance.restore_state(copy.deepcopy(checkpoint.state))
        self.restores += 1
        replayed = self.store.journal_since(actor_id, checkpoint.journal_mark)
        self.emr.emit("state-restored", actor=str(record.ref),
                      actor_id=actor_id, seq=checkpoint.seq,
                      digest=state_digest(record.instance.snapshot_state()),
                      replica=source.name, server=host.name,
                      age_ms=sim.now - checkpoint.taken_at,
                      journal_entries=len(replayed))
        if replayed:
            kinds: Dict[str, int] = {}
            for entry in replayed:
                kinds[entry.kind] = kinds.get(entry.kind, 0) + 1
            self.journal_replays += 1
            self.emr.emit("journal-replayed", actor=str(record.ref),
                          actor_id=actor_id, entries=len(replayed),
                          kinds=dict(sorted(kinds.items())))
        return True

    # ------------------------------------------------------------------
    # migration protocol call sites (no hooks exist at these points)

    def on_migration_prepared(self, record: ActorRecord, source: Server,
                              target: Server) -> None:
        self._journal("migration-prepare", record.ref.actor_id,
                      src=source.name, dst=target.name)

    def on_migration_transfer(self, record: ActorRecord, source: Server,
                              target: Server) -> None:
        """Transfer phase starts: ship a checkpoint with the payload.

        Its sole replica is the migration target — the bytes ride the
        migration transfer itself, so no extra cost is charged here.
        The commit acknowledges it; a rollback restores the source
        instance from it; a source crash abandons it un-acknowledged.
        """
        actor_id = record.ref.actor_id
        self._journal("migration-transfer", actor_id,
                      src=source.name, dst=target.name)
        if not self.config.ship_transfer_checkpoint:
            return
        state = record.instance.snapshot_state()
        checkpoint = Checkpoint(
            actor_id=actor_id, type_name=record.ref.type_name,
            seq=self.store.next_seq(actor_id),
            taken_at=self.system.sim.now, state=state,
            size_bytes=record.instance.state_size_mb * _BYTES_PER_MB,
            trigger="transfer", journal_mark=self.store.journal_mark,
            digest=state_digest(state), replicas=(target,))
        self.store.add(checkpoint)
        self._dirty[actor_id] = 0
        self._transfer_cps[actor_id] = checkpoint
        self.emr.emit("checkpoint-written", actor=str(record.ref),
                      actor_id=actor_id, seq=checkpoint.seq,
                      trigger="transfer", size_bytes=checkpoint.size_bytes,
                      replicas=checkpoint.replica_names,
                      digest=checkpoint.digest)

    # ------------------------------------------------------------------
    # hook reactions

    def _on_created(self, record: ActorRecord) -> None:
        self._journal("actor-created", record.ref.actor_id,
                      server=record.server.name)
        self._write_checkpoint(record, "create")

    def _on_destroyed(self, record: ActorRecord) -> None:
        self._dirty.pop(record.ref.actor_id, None)
        self._journal("actor-destroyed", record.ref.actor_id,
                      server=record.server.name)

    def _on_message(self, record: ActorRecord) -> None:
        if record.migrating:
            return
        actor_id = record.ref.actor_id
        dirty = self._dirty.get(actor_id, 0) + 1
        self._dirty[actor_id] = dirty
        threshold = self.config.dirty_message_threshold
        if (threshold is not None and dirty >= threshold
                and actor_id not in self._writing):
            self._write_checkpoint(record, "dirty")

    def _on_migrated(self, record: ActorRecord, src: Server,
                     dst: Server) -> None:
        self._journal("migration-commit", record.ref.actor_id,
                      src=src.name, dst=dst.name)
        checkpoint = self._transfer_cps.pop(record.ref.actor_id, None)
        if checkpoint is None or not dst.running:
            return
        self.store.ack(checkpoint, self.system.sim.now)
        self.emr.emit("checkpoint-replicated", actor=str(record.ref),
                      actor_id=record.ref.actor_id, seq=checkpoint.seq,
                      trigger="transfer", replicas=checkpoint.replica_names,
                      digest=checkpoint.digest,
                      latency_ms=self.system.sim.now - checkpoint.taken_at)

    def _on_migration_aborted(self, record: ActorRecord, src: Server,
                              dst: Server, reason: str) -> None:
        self._journal("migration-rollback", record.ref.actor_id,
                      src=src.name, dst=dst.name, reason=reason)
        checkpoint = self._transfer_cps.pop(record.ref.actor_id, None)
        if checkpoint is None:
            return
        checkpoint.aborted = True
        if reason == "actor-lost":
            # The source died mid-protocol; the prepared copy is
            # discarded with the rollback.  Recovery goes through the
            # last acknowledged checkpoint instead.
            return
        # The actor stays live on the source: restore it from the
        # checkpoint the transfer shipped, as the protocol promises.
        record.instance.restore_state(copy.deepcopy(checkpoint.state))

    def _on_server_crashed(self, server: Server,
                           lost: List[ActorRecord]) -> None:
        discarded = self.store.discard_replicas_on(server)
        aborted = self._inflight.pop(server.server_id, [])
        for checkpoint in aborted:
            checkpoint.aborted = True
            self._writing.discard(checkpoint.actor_id)
            self.store.checkpoints_lost += 1
        self._journal("server-crashed", -1, server=server.name,
                      lost_actors=len(lost), replicas_discarded=discarded,
                      writes_aborted=len(aborted))

    def _on_resurrected(self, record: ActorRecord) -> None:
        self._journal("actor-resurrected", record.ref.actor_id,
                      server=record.server.name)
        self._write_checkpoint(record, "resurrect")

    # ------------------------------------------------------------------

    def _journal(self, kind: str, actor_id: int, **detail) -> None:
        self.store.append_journal(kind, actor_id, self.system.sim.now,
                                  **detail)

    def summary(self) -> Dict:
        """Store summary plus recovery counters (CLI ``store`` command)."""
        summary = self.store.summary()
        summary["totals"].update({
            "restores": self.restores,
            "restore_misses": self.restore_misses,
            "journal_replays": self.journal_replays,
        })
        return summary
