"""In-memory replicated state store.

The store is the bookkeeping half of the durability subsystem: it holds
checkpoints (with their replica sets), hands out per-actor sequence
numbers, and keeps the write-ahead journal.  It is deliberately passive
— all timing, cost charging, and replica placement lives in
``DurabilityManager``; the store never touches the simulation clock.

A checkpoint's replica set is a tuple of live ``Server`` objects.  When
a server crashes the manager calls :meth:`StateStore.discard_replicas_on`
and every copy hosted there is gone — a checkpoint whose replica set
empties out is unrecoverable, which is exactly the state-loss the
replication factor exists to buy down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.server import Server

__all__ = ["Checkpoint", "JournalEntry", "StateStore", "state_digest"]

#: Journal retention cap; entries are trimmed from the front beyond it.
#: Sequence numbers are global and survive trimming, so replay marks
#: stay valid.
_JOURNAL_CAP = 50_000


def state_digest(state: Dict[str, Any]) -> str:
    """Deterministic content digest of a snapshot payload.

    Stable within a run (and across identical runs): the payload is a
    plain dict of deep-copied state fields whose reprs are themselves
    deterministic under the simulator's determinism contract.
    """
    text = repr(sorted(state.items(), key=lambda kv: kv[0]))
    return hashlib.sha1(text.encode("utf-8", "backslashreplace")).hexdigest()[:16]


@dataclass
class Checkpoint:
    """One acknowledged-or-in-flight snapshot of one actor's state."""

    actor_id: int
    type_name: str
    seq: int
    taken_at: float
    state: Dict[str, Any]
    size_bytes: float
    trigger: str                      # "create"|"periodic"|"dirty"|"resurrect"|"transfer"
    journal_mark: int                 # global journal seq at snapshot time
    digest: str
    replicas: Tuple["Server", ...] = ()
    acked_at: Optional[float] = None
    aborted: bool = False

    @property
    def acked(self) -> bool:
        return self.acked_at is not None

    @property
    def replica_names(self) -> Tuple[str, ...]:
        return tuple(server.name for server in self.replicas)


@dataclass(frozen=True)
class JournalEntry:
    """One write-ahead record of a directory or migration transition."""

    seq: int
    time_ms: float
    kind: str
    actor_id: int
    detail: Dict[str, Any] = field(default_factory=dict)


class StateStore:
    """Checkpoints plus write-ahead journal, indexed by actor id."""

    def __init__(self, max_per_actor: int = 4,
                 journal_enabled: bool = True) -> None:
        self.max_per_actor = max_per_actor
        self.journal_enabled = journal_enabled
        self.journal: List[JournalEntry] = []
        self._checkpoints: Dict[int, List[Checkpoint]] = {}
        self._seq: Dict[int, int] = {}
        self._journal_seq = 0
        self._journal_trimmed = 0
        # Counters (monotonic; surfaced through summary()).
        self.checkpoints_written = 0
        self.checkpoints_acked = 0
        self.checkpoints_lost = 0     # aborted mid-write or all replicas dead at ack
        self.bytes_replicated = 0.0
        self.replicas_discarded = 0

    # ------------------------------------------------------------------
    # checkpoints

    def next_seq(self, actor_id: int) -> int:
        seq = self._seq.get(actor_id, 0) + 1
        self._seq[actor_id] = seq
        return seq

    def add(self, checkpoint: Checkpoint) -> None:
        history = self._checkpoints.setdefault(checkpoint.actor_id, [])
        if history and checkpoint.seq <= history[-1].seq:
            raise ValueError(
                f"checkpoint seq regression for actor {checkpoint.actor_id}: "
                f"{checkpoint.seq} after {history[-1].seq}")
        history.append(checkpoint)
        self.checkpoints_written += 1

    def ack(self, checkpoint: Checkpoint, now: float) -> None:
        checkpoint.acked_at = now
        self.checkpoints_acked += 1
        self.bytes_replicated += checkpoint.size_bytes * len(checkpoint.replicas)
        self._prune(checkpoint.actor_id)

    def latest_acked(self, actor_id: int,
                     usable: Optional[Callable[["Server"], bool]] = None
                     ) -> Optional[Checkpoint]:
        """Newest acknowledged checkpoint with at least one usable replica.

        ``usable`` filters replicas (running, reachable, quorate —
        policy belongs to the caller); without it any surviving replica
        qualifies.
        """
        for checkpoint in reversed(self._checkpoints.get(actor_id, ())):
            if not checkpoint.acked or checkpoint.aborted:
                continue
            replicas = checkpoint.replicas
            if usable is not None:
                replicas = tuple(s for s in replicas if usable(s))
            if replicas:
                return checkpoint
        return None

    def readable_replicas(self, checkpoint: Checkpoint,
                          usable: Optional[Callable[["Server"], bool]] = None
                          ) -> Tuple["Server", ...]:
        if usable is None:
            return checkpoint.replicas
        return tuple(s for s in checkpoint.replicas if usable(s))

    def checkpoints(self, actor_id: int) -> Tuple[Checkpoint, ...]:
        return tuple(self._checkpoints.get(actor_id, ()))

    def last_seq(self, actor_id: int) -> int:
        return self._seq.get(actor_id, 0)

    def discard_replicas_on(self, server: "Server") -> int:
        """A server crashed: every checkpoint copy it hosted is gone."""
        discarded = 0
        for history in self._checkpoints.values():
            for checkpoint in history:
                if server in checkpoint.replicas:
                    checkpoint.replicas = tuple(
                        s for s in checkpoint.replicas if s is not server)
                    discarded += 1
        self.replicas_discarded += discarded
        return discarded

    def _prune(self, actor_id: int) -> None:
        history = self._checkpoints.get(actor_id)
        if history is None:
            return
        acked = [cp for cp in history if cp.acked]
        if len(acked) <= self.max_per_actor:
            return
        drop = set(id(cp) for cp in acked[:-self.max_per_actor])
        self._checkpoints[actor_id] = [
            cp for cp in history if id(cp) not in drop]

    # ------------------------------------------------------------------
    # journal

    def append_journal(self, kind: str, actor_id: int, time_ms: float,
                       **detail: Any) -> Optional[JournalEntry]:
        if not self.journal_enabled:
            return None
        self._journal_seq += 1
        entry = JournalEntry(seq=self._journal_seq, time_ms=time_ms,
                             kind=kind, actor_id=actor_id, detail=detail)
        self.journal.append(entry)
        if len(self.journal) > _JOURNAL_CAP:
            trim = len(self.journal) - _JOURNAL_CAP
            del self.journal[:trim]
            self._journal_trimmed += trim
        return entry

    @property
    def journal_mark(self) -> int:
        """Current global journal sequence (snapshot position marker)."""
        return self._journal_seq

    def journal_since(self, actor_id: int, mark: int) -> List[JournalEntry]:
        """Entries for ``actor_id`` written after journal position ``mark``."""
        return [entry for entry in self.journal
                if entry.actor_id == actor_id and entry.seq > mark]

    # ------------------------------------------------------------------
    # inspection

    def summary(self) -> Dict[str, Any]:
        """JSON-able view for the CLI ``store`` command and tests."""
        actors = []
        for actor_id in sorted(self._checkpoints):
            history = self._checkpoints[actor_id]
            last_acked = None
            for checkpoint in reversed(history):
                if checkpoint.acked and not checkpoint.aborted:
                    last_acked = checkpoint
                    break
            actors.append({
                "actor_id": actor_id,
                "type": history[-1].type_name if history else "?",
                "written": self._seq.get(actor_id, 0),
                "kept": len(history),
                "acked_seq": last_acked.seq if last_acked else None,
                "acked_at_ms": last_acked.acked_at if last_acked else None,
                "size_bytes": last_acked.size_bytes if last_acked else 0.0,
                "replicas": list(last_acked.replica_names) if last_acked else [],
            })
        journal_kinds: Dict[str, int] = {}
        for entry in self.journal:
            journal_kinds[entry.kind] = journal_kinds.get(entry.kind, 0) + 1
        return {
            "actors": actors,
            "journal": {
                "entries": len(self.journal),
                "trimmed": self._journal_trimmed,
                "kinds": dict(sorted(journal_kinds.items())),
            },
            "totals": {
                "checkpoints_written": self.checkpoints_written,
                "checkpoints_acked": self.checkpoints_acked,
                "checkpoints_lost": self.checkpoints_lost,
                "bytes_replicated": self.bytes_replicated,
                "replicas_discarded": self.replicas_discarded,
            },
        }
