"""Durable actor state: checkpoints, write-ahead journal, recovery.

PLASMA itself (§2.2) assumes reliable infrastructure and leaves state
recovery to the host language runtime; this package is that runtime's
durability half for the reproduction.  See ``docs/durability.md`` for
the state model and protocol.
"""

from .config import DurabilityConfig
from .manager import DurabilityManager
from .store import Checkpoint, JournalEntry, StateStore, state_digest

__all__ = ["Checkpoint", "DurabilityConfig", "DurabilityManager",
           "JournalEntry", "StateStore", "state_digest"]
