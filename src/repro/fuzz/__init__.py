"""Deterministic scenario fuzzing for the elasticity stack.

FoundationDB-style simulation testing, sized for this reproduction: a
seeded generator (:mod:`repro.fuzz.generator`) composes random-but-valid
scenarios — app topology, EPL rule set, workload, fault schedule — a
runner (:mod:`repro.fuzz.runner`) executes them under the runtime
invariant checker (:mod:`repro.check`), and a shrinker
(:mod:`repro.fuzz.shrink`) minimizes any failure to a small JSON
artifact that replays bit-for-bit.

Entry points: ``python -m repro.cli fuzz`` for campaigns and replay;
``tests/fuzz/`` replays the checked-in corpus as regressions.
"""

from .generator import generate_scenario
from .runner import FuzzResult, run_scenario
from .scenario import SCENARIO_FORMAT, Scenario
from .shrink import failure_signature, same_failure, shrink

__all__ = [
    "FuzzResult",
    "SCENARIO_FORMAT",
    "Scenario",
    "failure_signature",
    "generate_scenario",
    "run_scenario",
    "same_failure",
    "shrink",
]
