"""Seeded random scenario generation.

``generate_scenario(seed)`` derives every choice from one
``random.Random(seed)`` stream, so the mapping seed → scenario is a pure
function: the fuzzer only ever needs to store seeds (fresh exploration)
or full scenarios (shrunk corpus artifacts).

Rules are composed from per-app template families covering the whole EPL
behavior grammar — balance, reserve (with client-call interaction
features), ref-join colocate/separate where the app's schema has
annotated reference properties, and pin — with randomized thresholds,
resources, and optional explicit ``priority N:`` overrides.  Every
template is kept *schema-valid* for its app so generated policies always
compile; the compiler's negative paths are covered separately by the
diagnostics tests, not by the fuzzer.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List

from .scenario import Scenario

__all__ = ["generate_scenario", "rule_pool_for"]

_RESOURCES = ("cpu", "mem", "net")
_INSTANCE_TYPES = ("m1.small", "m1.medium", "m5.large")


def _band(rng: random.Random) -> tuple:
    """A (high, low) threshold pair with high > low.

    Thresholds sit deliberately low: fuzz clusters are small and their
    packed-placement CPU plateaus around 30–60%, so paper-style 80/60
    bands would leave the balance machinery idle in most runs.
    """
    low = rng.choice((15, 25, 35, 45))
    high = low + rng.choice((5, 10, 20))
    return high, low


def _prio(rng: random.Random) -> str:
    """Sometimes prefix an explicit priority override."""
    if rng.random() < 0.25:
        return f"priority {rng.randrange(0, 100)}: "
    return ""


# -- per-app rule template families ---------------------------------------
# Each template takes the rng and returns one EPL rule string.

def _balance(type_name: str) -> Callable[[random.Random], str]:
    def make(rng: random.Random) -> str:
        res = rng.choice(_RESOURCES)
        high, low = _band(rng)
        if rng.random() < 0.5:
            cond = (f"server.{res}.perc > {high} "
                    f"or server.{res}.perc < {low}")
        else:
            cond = f"server.{res}.perc > {high}"
        return f"{_prio(rng)}{cond} => balance({{{type_name}}}, {res});"
    return make


def _reserve(type_name: str, method: str) -> Callable[[random.Random], str]:
    def make(rng: random.Random) -> str:
        high, _low = _band(rng)
        share = rng.choice((5, 10, 20))
        res = rng.choice(("cpu", "mem"))
        return (f"{_prio(rng)}server.cpu.perc > {high} and "
                f"client.call({type_name}(v).{method}).perc > {share} "
                f"=> reserve(v, {res});")
    return make


def _ref_join(owner: str, prop: str, member: str,
              behavior: str) -> Callable[[random.Random], str]:
    def make(rng: random.Random) -> str:
        return (f"{_prio(rng)}{member}(m) in ref({owner}(o).{prop}) "
                f"=> {behavior}(o, m);")
    return make


def _pin(type_name: str) -> Callable[[random.Random], str]:
    def make(rng: random.Random) -> str:
        return f"{_prio(rng)}true => pin({type_name}(p));"
    return make


_RULE_POOLS: Dict[str, List[Callable[[random.Random], str]]] = {
    "pagerank": [
        _balance("PageRankWorker"),
        _reserve("PageRankWorker", "compute_contribs"),
        _pin("PageRankWorker"),
    ],
    "estore": [
        _balance("Partition"),
        _reserve("Partition", "read"),
        _ref_join("Partition", "children", "Partition", "colocate"),
        _ref_join("Partition", "children", "Partition", "separate"),
        _pin("Partition"),
    ],
    "chatroom": [
        _balance("ChatUser"),
        _balance("ChatRoom"),
        _reserve("ChatRoom", "post"),
        _ref_join("ChatRoom", "members", "ChatUser", "colocate"),
        _pin("ChatRoom"),
    ],
}


def rule_pool_for(app: str) -> List[Callable[[random.Random], str]]:
    """The rule template family for one app (exposed for tests)."""
    return list(_RULE_POOLS[app])


# -- faults ----------------------------------------------------------------

def _gen_partition(rng: random.Random,
                   scenario: Dict[str, Any]) -> Dict[str, Any]:
    """One random partition-network fault for the scenario's fleet."""
    duration = scenario["duration_ms"]
    servers = scenario["servers"]
    group_size = rng.randrange(1, servers) if servers > 1 else 1
    group = tuple(sorted(rng.sample(range(servers), group_size)))
    fault: Dict[str, Any] = {
        "fault": "partition-network",
        "at_ms": round(rng.uniform(0.15, 0.6) * duration, 1),
        "duration_ms": round(rng.uniform(0.15, 0.4) * duration, 1),
        "group": group,
        "symmetric": rng.random() < 0.75}
    if scenario["gem_count"] > 1 and rng.random() < 0.5:
        fault["gems"] = (rng.randrange(scenario["gem_count"]),)
    if rng.random() < 0.25:
        # A lossy (rather than absolute) cut.
        fault["loss"] = round(rng.uniform(0.5, 0.95), 2)
    return fault


def _gen_faults(rng: random.Random, scenario: Dict[str, Any],
                profile: str = "default") -> List[dict]:
    if profile == "partition":
        # Partition-focused campaigns always inject at least one cut,
        # optionally stacked with one fault from the regular pool.
        faults = [_gen_partition(rng, scenario)]
        if rng.random() < 0.4:
            faults.extend(_gen_faults(rng, scenario))
        return faults
    if profile == "durability":
        # Durability campaigns always crash a server mid-run — the one
        # event that makes checkpoint-restore observable — landing with
        # 60% odds inside the checkpoint/transfer window of an active
        # run, optionally stacked with a partition (minority-replica
        # restores) or regular faults.
        duration = scenario["duration_ms"]
        crash: Dict[str, Any] = {
            "fault": "crash-server",
            "at_ms": round(rng.uniform(0.25, 0.7) * duration, 1),
            "server_index": rng.randrange(scenario["servers"])}
        if rng.random() < 0.6:
            crash["replace_after_ms"] = round(
                rng.uniform(0.05, 0.3) * duration, 1)
        faults = [crash]
        if rng.random() < 0.3:
            faults.append(_gen_partition(rng, scenario))
        if rng.random() < 0.3:
            faults.extend(_gen_faults(rng, scenario))
        return faults
    if profile == "overload":
        # Overload campaigns always inject at least one load storm, so
        # mailbox bounds, admission control, and the disposition ledger
        # are under pressure on every seed; optionally stacked with a
        # second storm or faults from the regular pool (a storm during a
        # partition or crash is where accounting bugs hide).
        faults = [_gen_storm(rng, scenario)]
        if rng.random() < 0.3:
            faults.append(_gen_storm(rng, scenario))
        if rng.random() < 0.3:
            faults.extend(_gen_faults(rng, scenario))
        return faults
    if profile == "scale-chaos":
        # Control-plane chaos on the hierarchical topology: every seed
        # kills at least one tier of the GEM tree (root, a leaf, or a
        # shard-hosting server) so failover, group adoption, aggregate
        # resync, and shard handoff are exercised on every run.  Same
        # branch confinement as the other profiles.
        duration = scenario["duration_ms"]
        leaf_pool = (-(-scenario["servers"] //
                       scenario["server_group_size"])
                     * scenario["gem_count"])
        faults = []
        for _ in range(rng.choice((1, 2))):
            kind = rng.choice(("kill-root", "kill-gem",
                               "crash-server", "partition-network"))
            at = round(rng.uniform(0.15, 0.6) * duration, 1)
            if kind == "kill-root":
                fault: Dict[str, Any] = {"fault": kind, "at_ms": at}
                if rng.random() < 0.5:
                    fault["recover_after_ms"] = round(
                        rng.uniform(0.1, 0.4) * duration, 1)
                faults.append(fault)
            elif kind == "kill-gem":
                fault = {"fault": kind, "at_ms": at,
                         "gem_id": rng.randrange(leaf_pool)}
                if rng.random() < 0.6:
                    fault["recover_after_ms"] = round(
                        rng.uniform(0.1, 0.4) * duration, 1)
                faults.append(fault)
            elif kind == "crash-server":
                fault = {"fault": kind, "at_ms": at,
                         "server_index":
                             rng.randrange(scenario["servers"])}
                if rng.random() < 0.5:
                    fault["replace_after_ms"] = round(
                        rng.uniform(0.05, 0.3) * duration, 1)
                faults.append(fault)
            else:
                faults.append(_gen_partition(rng, scenario))
        return faults
    if rng.random() < 0.5:
        return []
    duration = scenario["duration_ms"]
    servers = scenario["servers"]
    faults: List[dict] = []
    for _ in range(rng.choice((1, 1, 2))):
        at = round(rng.uniform(0.15, 0.7) * duration, 1)
        kind = rng.choice(("crash-server", "slow-server",
                           "degrade-network", "kill-gem"))
        if kind == "crash-server" and servers > 1:
            fault = {"fault": kind, "at_ms": at,
                     "server_index": rng.randrange(servers)}
            if rng.random() < 0.5:
                fault["replace_after_ms"] = round(
                    rng.uniform(0.05, 0.3) * duration, 1)
            faults.append(fault)
        elif kind == "slow-server":
            faults.append({
                "fault": kind, "at_ms": at,
                "duration_ms": round(rng.uniform(0.1, 0.4) * duration, 1),
                "server_index": rng.randrange(servers),
                "speed_factor": round(rng.uniform(0.25, 0.75), 2)})
        elif kind == "degrade-network":
            faults.append({
                "fault": kind, "at_ms": at,
                "duration_ms": round(rng.uniform(0.1, 0.4) * duration, 1),
                "latency_multiplier": round(rng.uniform(1.5, 5.0), 1),
                "drop_probability": round(rng.uniform(0.0, 0.2), 2)})
        elif kind == "kill-gem":
            faults.append({
                "fault": kind, "at_ms": at,
                "gem_id": rng.randrange(scenario["gem_count"]),
                "recover_after_ms": round(
                    rng.uniform(0.1, 0.4) * duration, 1)})
    return faults


def _gen_storm(rng: random.Random,
               scenario: Dict[str, Any]) -> Dict[str, Any]:
    """One random load-storm fault (event-storm or hot-key-flood)."""
    duration = scenario["duration_ms"]
    fault: Dict[str, Any] = {
        "at_ms": round(rng.uniform(0.15, 0.5) * duration, 1),
        "duration_ms": round(rng.uniform(0.15, 0.4) * duration, 1),
        "rate_per_ms": rng.choice((0.25, 0.5, 1.0, 2.0)),
        "cpu_ms": rng.choice((0.5, 1.0, 2.0))}
    if rng.random() < 0.7:
        fault["fault"] = "event-storm"
        if rng.random() < 0.4:
            fault["server_index"] = rng.randrange(scenario["servers"])
    else:
        fault["fault"] = "hot-key-flood"
        fault["actor_rank"] = rng.randrange(8)
    return fault


# -- durable state ---------------------------------------------------------

def _gen_durability(rng: random.Random,
                    period_ms: float) -> Dict[str, Any]:
    """A random enabled ``DurabilityConfig`` kwargs dict.

    Intervals are drawn relative to the elasticity period so checkpoints
    interleave with LEM/GEM rounds and migrations rather than straddling
    whole runs.
    """
    config: Dict[str, Any] = {
        "enabled": True,
        "checkpoint_interval_ms": round(
            period_ms * rng.choice((0.25, 0.5, 1.0)), 1),
        "replication_factor": rng.choice((1, 2)),
        "serialize_cpu_ms": rng.choice((0.0, 0.2, 1.0)),
    }
    if rng.random() < 0.5:
        config["dirty_message_threshold"] = rng.choice((25, 50, 100))
    if rng.random() < 0.25:
        config["snapshot_fraction"] = rng.choice((0.25, 0.5))
    if rng.random() < 0.25:
        config["ship_transfer_checkpoint"] = False
    return config


# -- overload protection ---------------------------------------------------

def _gen_overload(rng: random.Random) -> Dict[str, Any]:
    """A random enabled ``OverloadConfig`` kwargs dict (plus the
    runner-level ``client_jitter_frac`` key).

    Capacities sit deliberately low so fuzz-sized storms actually fill
    mailboxes; brownout watermarks sit low for the same reason the rule
    thresholds do (small fleets plateau well under paper-scale load).
    """
    capacity = rng.choice((8, 16, 32, 64))
    config: Dict[str, Any] = {
        "mailbox_capacity": capacity,
        "policy": rng.choice(("shed", "shed", "block", "deadline")),
    }
    if config["policy"] == "block":
        config["block_retry_ms"] = rng.choice((0.25, 0.5, 1.0))
    if rng.random() < 0.5:
        config["admission_queue_depth"] = max(2, capacity // 2)
    if rng.random() < 0.3:
        config["admission_cpu_perc"] = rng.choice((85.0, 95.0))
    enter = rng.choice((50.0, 70.0, 90.0))
    config["brownout_enter_cpu_perc"] = enter
    config["brownout_exit_cpu_perc"] = enter - rng.choice((20.0, 30.0))
    config["brownout_enter_rounds"] = rng.choice((1, 2))
    config["brownout_exit_rounds"] = rng.choice((1, 2))
    config["brownout_stretch"] = rng.choice((2, 3))
    config["brownout_top_k"] = rng.choice((4, 8))
    if rng.random() < 0.5:
        config["client_jitter_frac"] = rng.choice((0.1, 0.25, 0.5))
    return config


# -- app topology parameters ----------------------------------------------

def _gen_app_params(rng: random.Random, app: str) -> Dict[str, Any]:
    # "pack" deploys the whole topology onto the first server, the
    # skewed starting point that makes balance/reserve rules actually
    # fire (a perfectly even initial spread leaves nothing to migrate).
    pack = rng.random() < 0.5
    if app == "pagerank":
        return {"nodes": rng.randrange(40, 121),
                "edges_per_node": rng.choice((2, 3, 4)),
                "partitions": rng.randrange(4, 9),
                "alpha_ms": round(rng.uniform(0.2, 0.8), 2),
                "pack": pack}
    if app == "estore":
        return {"roots": rng.randrange(6, 17),
                "children_per_root": rng.randrange(1, 4),
                "skew_fraction": round(rng.uniform(0.2, 0.6), 2),
                "pack": pack}
    return {"rooms": rng.randrange(1, 4),
            "users_per_room": rng.randrange(3, 9),
            "message_bytes": rng.choice((128, 512, 2048)),
            "pack": pack}


# -- top level -------------------------------------------------------------

def generate_scenario(seed: int, profile: str = "default") -> Scenario:
    """Pure function (seed, profile) → scenario.

    ``profile`` selects a generator emphasis without touching the
    default mapping (existing seeds keep reproducing bit-identically):

    - ``"default"``: the full mixed input space.
    - ``"partition"``: every scenario gets at least one
      ``partition-network`` fault and at least three servers, so a cut
      always leaves both a majority and a minority side to exercise
      the epoch/quorum machinery.
    - ``"durability"``: every scenario runs with checkpointing enabled
      (random interval/replication), at least three servers (so replica
      placement has real choices), suspicion always armed (crashed
      actors actually resurrect), and at least one mid-run
      ``crash-server`` fault to force checkpoint-restore.
    - ``"overload"``: every scenario runs with overload protection
      enabled (bounded mailboxes with a random policy, sometimes
      admission control, brownout armed) and at least one load storm
      (``event-storm`` / ``hot-key-flood``), so shedding, backpressure,
      and the disposition ledger are exercised on every seed.
    - ``"scale"``: every scenario runs the hierarchical control plane
      over a consistent-hash-sharded directory, with a randomized group
      topology (fleet large enough for several groups) and shard count,
      so the GEM tree, root arbitration, and shard/cache invariants are
      exercised on every seed.
    - ``"scale-chaos"``: the ``scale`` topology (same draws — a seed's
      cluster shape is identical across the two profiles) plus
      control-plane chaos: every scenario injects at least one
      root/leaf/server kill or partition, with suspicion always armed
      so failover and adoption actually trigger.
    """
    if profile not in ("default", "partition", "durability", "overload",
                       "scale", "scale-chaos"):
        raise ValueError(f"unknown generator profile {profile!r}")
    rng = random.Random(seed)
    app = rng.choice(("pagerank", "estore", "chatroom"))
    servers = (rng.randrange(3, 6)
               if profile in ("partition", "durability")
               else rng.randrange(2, 5))
    period_ms = float(rng.choice((2_000, 3_000, 5_000)))
    duration_ms = period_ms * rng.randrange(3, 7)
    stability_choice = rng.random()
    if stability_choice < 0.5:
        stability_ms = None                      # one period (default)
    elif stability_choice < 0.8:
        stability_ms = period_ms * rng.choice((2, 3))
    else:
        stability_ms = period_ms * 0.5           # shorter than a period
    gem_count = 1 if rng.random() < 0.7 else 2

    pool = _RULE_POOLS[app]
    rule_count = rng.randrange(1, min(4, len(pool)) + 1)
    templates = rng.sample(pool, rule_count)
    rules = tuple(template(rng) for template in templates)

    allow_scale = rng.random() < 0.25
    fields: Dict[str, Any] = dict(
        seed=seed, app=app, servers=servers,
        instance_type=rng.choice(_INSTANCE_TYPES),
        boot_delay_ms=float(rng.choice((500, 1_000, 2_000))),
        duration_ms=duration_ms, rules=rules, period_ms=period_ms,
        stability_ms=stability_ms, gem_count=gem_count,
        gem_wait_ms=float(rng.choice((200, 300, 500))),
        lem_stagger_ms=float(rng.choice((5, 10, 25))),
        max_moves_per_server=rng.choice((1, 2, 3)),
        allow_scale_out=allow_scale,
        allow_scale_in=allow_scale and rng.random() < 0.5,
        min_servers=1,
        suspicion_timeout_ms=(period_ms + 1_000.0
                              if rng.random() < 0.5 else None),
        clients=rng.randrange(4, 13),
        think_ms=float(rng.choice((2, 5, 10, 20))),
        app_params=_gen_app_params(rng, app),
    )
    if profile == "durability":
        # Without suspicion nothing ever resurrects, and without
        # resurrection a checkpoint is never read back.  The extra RNG
        # draws live only on this branch, so the default and partition
        # seed mappings stay bit-identical.
        if fields["suspicion_timeout_ms"] is None:
            fields["suspicion_timeout_ms"] = period_ms + 1_000.0
        fields["durability"] = _gen_durability(rng, period_ms)
    if profile == "overload":
        # Same branch-confinement rule as durability: the extra draws
        # only happen for overload campaigns, so every other profile's
        # seed mapping stays bit-identical.
        fields["overload"] = _gen_overload(rng)
    if profile in ("scale", "scale-chaos"):
        # Same branch-confinement rule again.  The fleet is regrown to
        # several groups' worth of servers (the small draw above is
        # overridden; fault server indices are drawn later, against the
        # final count) and the whole cluster-scale machinery is armed.
        # scale-chaos shares these draws exactly, so a seed's topology
        # is identical across the two profiles — only the fault plan
        # (drawn last) and the no-draw suspicion override differ.
        fields["servers"] = rng.randrange(6, 13)
        fields["control_plane"] = "hierarchical"
        fields["server_group_size"] = rng.choice((2, 3, 4))
        fields["directory_shards"] = rng.choice((2, 3, 5))
        fields["directory_virtual_nodes"] = rng.choice((8, 16))
    if profile == "scale-chaos" and fields["suspicion_timeout_ms"] is None:
        # No RNG draw: without suspicion a killed leaf is never
        # detected, so promotion/adoption would never run.
        fields["suspicion_timeout_ms"] = period_ms + 1_000.0
    fields["faults"] = tuple(_gen_faults(rng, fields, profile))
    return Scenario(**fields)
