"""Scenario interpreter: build, run, and check one fuzz scenario.

``run_scenario`` is the deterministic bridge between a :class:`Scenario`
and a verdict: it stands up the cluster, deploys the scenario's app
topology, compiles its EPL policy, starts the elasticity manager with
the :class:`~repro.check.InvariantChecker` attached, injects the fault
plan, drives the workload, and reports every invariant violation (or
crash) found.

Determinism contract: two calls with an equal scenario produce identical
runs.  The process-global id counters (actor/server/message) are reset
at the start of every run — the same trick the golden-trace equivalence
tests use — so replayed corpus artifacts reproduce bit-for-bit even
after other simulations ran in the same process.
"""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..actors import Client, Overloaded
from ..bench import TestBed, build_cluster
from ..chaos import ChaosEngine, FaultPlan, fault_from_dict
from ..check import InvariantChecker, Violation
from ..cluster import AvailabilityMeter
from ..core import ElasticityManager, EmrConfig, compile_source
from ..core.tracing import ElasticityTracer
from ..durability import DurabilityConfig
from ..overload import OverloadConfig
from ..sim import Timeout, spawn
from .scenario import Scenario

__all__ = ["FuzzResult", "run_scenario", "actor_classes_for"]


@dataclass
class FuzzResult:
    """Verdict of one scenario run."""

    scenario: Scenario
    violations: List[Violation] = field(default_factory=list)
    #: Traceback text when the run itself crashed (also a finding).
    error: Optional[str] = None
    migrations: int = 0
    sim_time_ms: float = 0.0
    checks_run: int = 0
    messages_dropped: int = 0
    partition_drops: int = 0
    checkpoints_written: int = 0
    checkpoints_acked: int = 0
    state_restores: int = 0
    messages_shed: int = 0
    requests_rejected: int = 0
    dead_letters: int = 0
    root_failovers: int = 0
    leaf_failovers: int = 0
    #: Full ``DurabilityManager.summary()`` (empty when durability off).
    store_summary: Dict = field(default_factory=dict)
    trace_tail: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations

    def summary(self) -> str:
        if self.ok:
            dropped = (f", {self.messages_dropped} msg(s) dropped"
                       if self.messages_dropped else "")
            shed = (f", {self.messages_shed} shed"
                    if self.messages_shed else "")
            return (f"ok ({self.migrations} migration(s), "
                    f"{self.checks_run} check(s){dropped}{shed})")
        if self.error is not None:
            last = self.error.strip().splitlines()[-1]
            return f"CRASH: {last}"
        head = self.violations[0]
        extra = (f" (+{len(self.violations) - 1} more)"
                 if len(self.violations) > 1 else "")
        return f"VIOLATION: {head}{extra}"


def _reset_id_counters() -> None:
    """Reset process-global id counters for cross-run determinism."""
    from ..actors import message as message_module
    from ..actors import system as system_module
    from ..cluster import server as server_module
    server_module._server_ids = itertools.count(1)
    system_module._actor_ids = itertools.count(1)
    message_module._message_ids = itertools.count(1)


def actor_classes_for(app: str) -> list:
    """The actor program a scenario's EPL policy compiles against."""
    if app == "pagerank":
        from ..apps.pagerank import PageRankWorker
        return [PageRankWorker]
    if app == "estore":
        from ..apps.estore import Partition
        return [Partition]
    if app == "chatroom":
        from ..apps.chatroom import ChatRoom, ChatUser
        return [ChatRoom, ChatUser]
    raise ValueError(f"unknown app {app!r}")


# -- app deployments -------------------------------------------------------

def _deploy_pagerank(bed: TestBed, scenario: Scenario,
                     clients: List[Client]) -> None:
    from ..apps.pagerank import EXCHANGE_GRACE_MS, build_pagerank
    from ..graphs import powerlaw_graph
    params = scenario.app_params
    graph_rng = bed.streams.stream("fuzz-graph")
    graph = powerlaw_graph(params.get("nodes", 80),
                           params.get("edges_per_node", 3), graph_rng)
    partitions = params.get("partitions", 6)
    placement = [0] * partitions if params.get("pack") else None
    deployment = build_pagerank(
        bed, graph, partitions, placement=placement,
        alpha_ms=params.get("alpha_ms", 0.5))
    driver = clients[0] if clients else Client(bed.system, name="driver")

    def call_all(function, *args):
        signals = [driver.call(ref, function, *args)
                   for ref in deployment.workers]
        results = []
        for signal in signals:
            value = yield signal
            # Under overload protection a raw call can come back as a
            # shed/rejected NACK; the BSP driver treats that round's
            # contribution as lost (found by the overload fuzz profile:
            # summing an Overloaded NACK crashed the loop).
            results.append(None if isinstance(value, Overloaded)
                           else value)
        return results

    def bsp_loop():
        yield from call_all("load_data")
        while bed.sim.now < scenario.duration_ms:
            dangling = yield from call_all(
                "compute_contribs", deployment.damping)
            yield from call_all("send_updates")
            yield Timeout(bed.sim, EXCHANGE_GRACE_MS)
            total = sum(d for d in dangling if d is not None)
            yield from call_all("apply_update", deployment.damping, total)

    spawn(bed.sim, bsp_loop())


def _deploy_estore(bed: TestBed, scenario: Scenario,
                   clients: List[Client]) -> None:
    from ..apps.estore import build_estore
    params = scenario.app_params
    setup = build_estore(
        bed, num_roots=params.get("roots", 10),
        children_per_root=params.get("children_per_root", 2),
        skew_fraction=params.get("skew_fraction", 0.35),
        num_home_servers=1 if params.get("pack") else None)
    key_rng = bed.streams.stream("fuzz-keys")

    def loop(client: Client):
        while bed.sim.now < scenario.duration_ms:
            root = setup.picker.pick()
            key = key_rng.randrange(10_000)
            if scenario.faults:
                yield from client.reliable_call(root, "read", key)
            else:
                yield from client.timed_call(root, "read", key)
            yield Timeout(bed.sim, scenario.think_ms)

    for client in clients:
        spawn(bed.sim, loop(client))


def _deploy_chatroom(bed: TestBed, scenario: Scenario,
                     clients: List[Client]) -> None:
    from ..apps.chatroom import ChatRoom, ChatUser
    params = scenario.app_params
    rooms = []
    users = []
    pack = params.get("pack", False)
    for index in range(params.get("rooms", 2)):
        server = bed.servers[0 if pack else index % len(bed.servers)]
        room = bed.system.create_actor(ChatRoom, server=server)
        rooms.append(room)
        for _ in range(params.get("users_per_room", 4)):
            users.append((room, bed.system.create_actor(
                ChatUser, room, server=server)))
    message_bytes = params.get("message_bytes", 512)
    pick_rng = bed.streams.stream("fuzz-chat-pick")

    def loop(client: Client):
        room, user = users[pick_rng.randrange(len(users))]
        yield client.call(room, "join", user)
        while bed.sim.now < scenario.duration_ms:
            if scenario.faults:
                yield from client.reliable_call(
                    room, "post", user.actor_id, message_bytes)
            else:
                yield from client.timed_call(
                    room, "post", user.actor_id, message_bytes)
            yield Timeout(bed.sim, scenario.think_ms)

    for client in clients:
        spawn(bed.sim, loop(client))


_DEPLOYERS = {
    "pagerank": _deploy_pagerank,
    "estore": _deploy_estore,
    "chatroom": _deploy_chatroom,
}


# -- top level -------------------------------------------------------------

def run_scenario(scenario: Scenario, strict: bool = False,
                 with_trace: bool = False) -> FuzzResult:
    """Execute one scenario under the invariant checker.

    Never raises for in-run failures (unless ``strict``): crashes are
    captured in :attr:`FuzzResult.error` so the shrinker can minimize
    crashing scenarios exactly like violating ones.
    """
    _reset_id_counters()
    result = FuzzResult(scenario=scenario)
    try:
        bed = build_cluster(scenario.servers,
                            instance_type=scenario.instance_type,
                            seed=scenario.seed,
                            boot_delay_ms=scenario.boot_delay_ms)
        if scenario.directory_shards is not None:
            # Swap in the sharded directory before any actor exists, so
            # every record of the run lives under ring ownership.
            from ..actors import ShardedDirectory
            bed.system.directory = ShardedDirectory(
                shards=scenario.directory_shards,
                virtual_nodes=scenario.directory_virtual_nodes)
        policy = compile_source(scenario.policy_source(),
                                actor_classes_for(scenario.app))
        jitter_frac = 0.0
        overload_config = None
        if scenario.overload is not None:
            overload_kwargs = dict(scenario.overload)
            # client_jitter_frac is a runner-level knob (it configures
            # the Clients, not the OverloadConfig).
            jitter_frac = overload_kwargs.pop("client_jitter_frac", 0.0)
            overload_config = OverloadConfig(**overload_kwargs)
        config = EmrConfig(
            period_ms=scenario.period_ms,
            stability_ms=scenario.stability_ms,
            gem_count=scenario.gem_count,
            gem_wait_ms=scenario.gem_wait_ms,
            lem_stagger_ms=scenario.lem_stagger_ms,
            max_moves_per_server=scenario.max_moves_per_server,
            allow_scale_out=scenario.allow_scale_out,
            allow_scale_in=scenario.allow_scale_in,
            min_servers=scenario.min_servers,
            suspicion_timeout_ms=scenario.suspicion_timeout_ms,
            durability=(DurabilityConfig(**scenario.durability)
                        if scenario.durability is not None else None),
            overload=overload_config,
            control_plane=scenario.control_plane,
            server_group_size=scenario.server_group_size,
            directory_shards=scenario.directory_shards,
            directory_virtual_nodes=scenario.directory_virtual_nodes)
        manager = ElasticityManager(bed.system, policy, config)
        tracer = None
        if with_trace:
            tracer = ElasticityTracer(manager)
            tracer.attach()
        meter = AvailabilityMeter(bed.sim,
                                  window_ms=scenario.period_ms)
        checker = InvariantChecker(manager, meters=[meter],
                                   tracer=tracer, strict=strict)
        checker.attach()

        clients = [
            Client(bed.system, name=f"fuzz-client{i}",
                   timeout_ms=2_000.0 if scenario.faults else None,
                   max_retries=3, backoff_base_ms=100.0,
                   backoff_cap_ms=2_000.0, meter=meter,
                   jitter_frac=jitter_frac)
            for i in range(scenario.clients)]
        _DEPLOYERS[scenario.app](bed, scenario, clients)

        manager.start()
        if scenario.faults:
            plan = FaultPlan(faults=tuple(
                fault_from_dict(f) for f in scenario.faults))
            ChaosEngine(bed.system, plan, manager=manager).start()

        bed.run(until_ms=scenario.duration_ms)
        checker.final_check()
        result.violations = list(checker.violations)
        result.migrations = len(manager.migration_log)
        result.sim_time_ms = bed.sim.now
        result.checks_run = checker.checks_run
        result.messages_dropped = bed.system.fabric.messages_dropped
        result.partition_drops = bed.system.fabric.partition_drops
        if manager.durability is not None:
            result.store_summary = manager.durability.summary()
            totals = result.store_summary["totals"]
            result.checkpoints_written = totals["checkpoints_written"]
            result.checkpoints_acked = totals["checkpoints_acked"]
            result.state_restores = totals["restores"]
        if manager.overload is not None:
            result.messages_shed = manager.overload.total_shed()
            result.requests_rejected = \
                manager.overload.counts["rejected"]
        result.dead_letters = sum(client.dead_letters_total
                                  for client in clients)
        result.root_failovers = manager.root_failovers
        result.leaf_failovers = manager.leaf_failovers
        if tracer is not None and not result.ok:
            result.trace_tail = [str(event) for event in tracer.tail(20)]
    except Exception:
        if strict:
            raise
        result.error = traceback.format_exc()
    return result
