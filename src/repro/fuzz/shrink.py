"""Greedy scenario shrinking.

Given a failing scenario and a predicate, the shrinker searches for a
smaller scenario that *still fails the same way*, so checked-in corpus
artifacts point at the bug, not at the noise the random generator
wrapped around it.  The reduction passes, in order:

1. drop EPL rules one at a time,
2. drop faults one at a time,
3. neutralize toggles (autoscale off, durability off, suspicion off,
   default stability),
4. shed clients (to zero, then halving),
5. halve app topology parameters toward per-app minimums,
6. bisect the duration down (snapped to whole elasticity periods).

Each accepted reduction restarts the pass list, giving the classic
greedy fixpoint; the total number of re-runs is capped.  "Fails the same
way" means: a crash shrinks against crashes, a violation shrinks against
runs violating at least one of the *same* invariants — without this, a
shrink step can tunnel from the bug under investigation into a
different, noisier one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Set, Tuple

from .runner import FuzzResult, run_scenario
from .scenario import Scenario

__all__ = ["shrink", "failure_signature", "same_failure"]

#: Lower bounds for app topology parameters (below these the scenario
#: stops being the app it claims to be).
_PARAM_FLOORS = {
    "pagerank": {"nodes": 10, "edges_per_node": 1, "partitions": 2,
                 "alpha_ms": 0.1},
    "estore": {"roots": 2, "children_per_root": 1, "skew_fraction": 0.1},
    "chatroom": {"rooms": 1, "users_per_room": 2, "message_bytes": 64},
}


def failure_signature(result: FuzzResult) -> Tuple[str, frozenset]:
    """What kind of failure this is: ("crash", …) or ("violation", names)."""
    if result.error is not None:
        return ("crash", frozenset())
    return ("violation",
            frozenset(v.invariant for v in result.violations))


def same_failure(signature: Tuple[str, frozenset],
                 result: FuzzResult) -> bool:
    """Does ``result`` fail the same way as the original failure?"""
    kind, invariants = signature
    if kind == "crash":
        return result.error is not None
    if result.error is not None:
        return False
    seen = {v.invariant for v in result.violations}
    return bool(seen & invariants)


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Smaller variants of ``scenario``, most aggressive first."""
    # 1. drop one rule at a time (keep at least zero rules — an empty
    #    policy is a legal, maximally-shrunk input for runtime crashes).
    for index in range(len(scenario.rules)):
        rules = scenario.rules[:index] + scenario.rules[index + 1:]
        yield replace(scenario, rules=rules)
    # 2. drop one fault at a time.
    for index in range(len(scenario.faults)):
        faults = scenario.faults[:index] + scenario.faults[index + 1:]
        yield replace(scenario, faults=faults)
    # 3. neutralize toggles.
    if scenario.allow_scale_out or scenario.allow_scale_in:
        yield replace(scenario, allow_scale_out=False,
                      allow_scale_in=False)
    if scenario.durability is not None:
        yield replace(scenario, durability=None)
    if scenario.suspicion_timeout_ms is not None:
        yield replace(scenario, suspicion_timeout_ms=None)
    if scenario.stability_ms is not None:
        yield replace(scenario, stability_ms=None)
    if scenario.gem_count > 1:
        yield replace(scenario, gem_count=1)
    # 4. shed clients.
    if scenario.clients > 0:
        yield replace(scenario, clients=0)
        if scenario.clients > 1:
            yield replace(scenario, clients=scenario.clients // 2)
    # 5. halve app params toward their floors.
    floors = _PARAM_FLOORS.get(scenario.app, {})
    for key, value in scenario.app_params.items():
        floor = floors.get(key)
        if floor is None or not isinstance(value, (int, float)):
            continue
        smaller = max(floor, value // 2 if isinstance(value, int)
                      else value / 2.0)
        if smaller < value:
            params = dict(scenario.app_params)
            params[key] = smaller
            yield replace(scenario, app_params=params)
    # 6. shrink the fleet.
    if scenario.servers > 2:
        yield replace(scenario, servers=scenario.servers - 1)
    # 7. bisect duration down to one period.
    periods = int(scenario.duration_ms / scenario.period_ms)
    if periods > 1:
        half = max(1, periods // 2)
        yield replace(scenario,
                      duration_ms=scenario.period_ms * half)


def shrink(scenario: Scenario, result: FuzzResult,
           max_runs: int = 120,
           log: Optional[Callable[[str], None]] = None
           ) -> Tuple[Scenario, FuzzResult, int]:
    """Greedily minimize a failing scenario.

    Returns ``(smallest scenario, its result, runs used)``.  The
    returned scenario is guaranteed to still fail with the same
    signature as ``result``.
    """
    signature = failure_signature(result)
    best, best_result = scenario, result
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for candidate in _candidates(best):
            if runs >= max_runs:
                break
            candidate_result = run_scenario(candidate)
            runs += 1
            if same_failure(signature, candidate_result):
                best, best_result = candidate, candidate_result
                if log is not None:
                    log(f"shrunk to: {best.describe()}")
                progress = True
                break
    return best, best_result, runs
