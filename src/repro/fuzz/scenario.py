"""The fuzz scenario: a complete, serializable run description.

A :class:`Scenario` captures *everything* a run depends on — topology,
EPL rules, workload, elasticity knobs, fault schedule, and the seed —
so a failing input can be written to a small JSON artifact, checked into
``tests/fuzz/corpus/`` as a regression, and replayed bit-for-bit with
``python -m repro.cli fuzz --replay FILE``.

Scenarios are data, never code: the runner interprets them.  The format
is versioned (:data:`SCENARIO_FORMAT`) so stale corpus artifacts fail
loudly rather than silently meaning something else.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Scenario", "SCENARIO_FORMAT", "APPS"]

SCENARIO_FORMAT = "repro-fuzz-scenario/1"

#: Application topologies the generator knows how to build.
APPS = ("pagerank", "estore", "chatroom")


@dataclass(frozen=True)
class Scenario:
    """One deterministic elasticity-stack run, as data."""

    seed: int
    app: str
    #: -- cluster ----------------------------------------------------
    servers: int = 3
    instance_type: str = "m5.large"
    boot_delay_ms: float = 1_000.0
    #: -- schedule ---------------------------------------------------
    duration_ms: float = 30_000.0
    #: -- elasticity policy (EPL source, one rule per entry) ---------
    rules: Tuple[str, ...] = ()
    #: -- EMR knobs --------------------------------------------------
    period_ms: float = 5_000.0
    stability_ms: Optional[float] = None
    gem_count: int = 1
    gem_wait_ms: float = 300.0
    lem_stagger_ms: float = 10.0
    max_moves_per_server: int = 3
    allow_scale_out: bool = False
    allow_scale_in: bool = False
    min_servers: int = 1
    suspicion_timeout_ms: Optional[float] = None
    #: -- workload ---------------------------------------------------
    clients: int = 4
    think_ms: float = 20.0
    #: -- faults (``fault_to_dict`` form) ----------------------------
    faults: Tuple[Dict[str, Any], ...] = ()
    #: -- app topology parameters ------------------------------------
    app_params: Dict[str, Any] = field(default_factory=dict)
    #: -- durable state (``DurabilityConfig`` kwargs; ``None`` = off) --
    #: Absent from older corpus artifacts, which therefore keep
    #: replaying with durability off.
    durability: Optional[Dict[str, Any]] = None
    #: -- overload protection (``OverloadConfig`` kwargs plus the
    #: runner-level ``client_jitter_frac`` key; ``None`` = off).  Like
    #: ``durability``, absent from older corpus artifacts.
    overload: Optional[Dict[str, Any]] = None
    #: -- cluster-scale control plane.  All default to the flat control
    #: plane / flat directory, so older corpus artifacts (where these
    #: fields are absent) keep replaying bit-identically.
    control_plane: str = "flat"
    server_group_size: Optional[int] = None
    directory_shards: Optional[int] = None
    directory_virtual_nodes: int = 16

    def __post_init__(self) -> None:
        if self.app not in APPS:
            raise ValueError(f"unknown app {self.app!r}; "
                             f"expected one of {APPS}")
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if self.clients < 0:
            raise ValueError("clients must be >= 0")
        if self.control_plane not in ("flat", "hierarchical"):
            raise ValueError(
                f"unknown control_plane {self.control_plane!r}")
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "faults",
                           tuple(dict(f) for f in self.faults))
        if self.durability is not None:
            object.__setattr__(self, "durability", dict(self.durability))
        if self.overload is not None:
            object.__setattr__(self, "overload", dict(self.overload))

    # -- serialization -------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        data = asdict(self)
        data["format"] = SCENARIO_FORMAT
        data["rules"] = list(self.rules)
        data["faults"] = [dict(f) for f in self.faults]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent,
                          sort_keys=True)

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "Scenario":
        payload = dict(data)
        found = payload.pop("format", None)
        if found != SCENARIO_FORMAT:
            raise ValueError(
                f"not a fuzz scenario: format {found!r} "
                f"(expected {SCENARIO_FORMAT!r})")
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        payload["rules"] = tuple(payload.get("rules", ()))
        payload["faults"] = tuple(payload.get("faults", ()))
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_jsonable(json.loads(text))

    # -- convenience ---------------------------------------------------

    def policy_source(self) -> str:
        """The scenario's EPL policy as one source string."""
        return "\n".join(self.rules) + ("\n" if self.rules else "")

    def describe(self) -> str:
        parts = [f"seed={self.seed}", self.app,
                 f"{self.servers}x{self.instance_type}",
                 f"{self.duration_ms / 1000.0:.0f}s",
                 f"{len(self.rules)} rule(s)"]
        if self.faults:
            parts.append(f"{len(self.faults)} fault(s)")
        if self.allow_scale_out or self.allow_scale_in:
            parts.append("autoscale")
        if self.durability is not None:
            parts.append("durable")
        if self.overload is not None:
            parts.append("overload")
        if self.control_plane != "flat":
            parts.append(f"{self.control_plane}"
                         f"(groups of {self.server_group_size})")
        if self.directory_shards is not None:
            parts.append(f"{self.directory_shards} dir shard(s)")
        return " ".join(parts)
