"""Deterministic named random streams.

Every stochastic component of the simulation draws from its own named
stream derived from a single root seed.  Adding a new consumer therefore
never perturbs the draws seen by existing ones, which keeps regression
baselines stable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, reproducible ``random.Random`` streams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("clients")
    >>> b = streams.stream("placement")
    >>> a is streams.stream("clients")   # streams are cached by name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self.seed}:{name}".encode("utf-8")).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RandomStreams":
        """Derive a new independent family of streams (e.g. per repetition)."""
        digest = hashlib.sha256(
            f"{self.seed}:fork:{salt}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
