"""Discrete-event simulation engine.

The engine executes callbacks at virtual timestamps in timestamp order,
with ties broken by insertion order so runs are fully deterministic.  All
timestamps are floats in *milliseconds* of virtual time; the unit is a
convention shared by the rest of the library (the cluster and actor layers
document their costs in the same unit).

Two interchangeable scheduler kernels implement the event queue:

``heap``
    The classic binary-heap simulator (:class:`HeapSimulator`).  One
    ``heapq`` ordered by ``(timestamp, seq)``.  This is the reference
    kernel: it is kept byte-for-byte at the behaviour the golden traces
    were recorded against.

``calendar``
    A calendar-queue kernel (:class:`CalendarSimulator`) that partitions
    future events into fixed-width time buckets, sorts each bucket once on
    activation, and drains same-timestamp runs with a single ``bisect``
    instead of per-event heap pops.  Zero-delay events — the dominant
    class in the actor runtime, where every process resume and mailbox
    wake-up is ``schedule(0.0, ...)`` — skip the priority queue entirely
    and go through a plain FIFO.  Sparse epochs fall back to a lean heap
    loop over the spill heap (the ladder fallback), with the fallback
    horizon adapting upward whenever bucket occupancy is too low to
    amortize activation.

Both kernels produce *identical* event order for identical schedules; the
differential harness in ``tests/sim/test_scheduler_differential.py`` and
the golden-trace refresh tests enforce this.  Select a kernel with
``Simulator(scheduler="heap")`` / ``Simulator(scheduler="calendar")`` or
the ``REPRO_SIM_SCHEDULER`` environment variable.  The default is
``calendar``.

Most users never schedule raw callbacks.  They start generator-based
processes (see :mod:`repro.sim.process`) and let those block on timeouts,
signals and queues.
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_right
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Simulator",
    "HeapSimulator",
    "CalendarSimulator",
    "SimulationError",
    "StopSimulation",
    "DEFAULT_SCHEDULER",
]

_INF = float("inf")

#: Kernel used when ``Simulator()`` is constructed without an explicit
#: ``scheduler=``.  Overridable via the environment so whole test runs can
#: be pinned to one kernel (the differential harness does this per-case
#: instead, passing ``scheduler=`` explicitly).
DEFAULT_SCHEDULER = os.environ.get("REPRO_SIM_SCHEDULER", "calendar")


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Simulator.run` immediately."""


class Simulator:
    """A deterministic discrete-event simulator.

    ``Simulator(...)`` is a factory: it returns one of the concrete kernel
    classes depending on ``scheduler=`` (``"heap"`` or ``"calendar"``),
    defaulting to :data:`DEFAULT_SCHEDULER`.  Both kernels share the same
    API and produce identical event order.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.schedule(5.0, seen.append, "later")
    >>> sim.schedule(1.0, seen.append, "sooner")
    >>> sim.run()
    5.0
    >>> seen
    ['sooner', 'later']
    >>> sim.now
    5.0
    """

    __slots__ = ("_counter", "_now", "_running", "_stopped")

    #: Name of the scheduler kernel; overridden by subclasses.
    scheduler_name = "abstract"

    def __new__(cls, scheduler: Optional[str] = None, **kwargs: Any):
        if cls is Simulator:
            name = scheduler if scheduler is not None else DEFAULT_SCHEDULER
            impl = _SCHEDULERS.get(name)
            if impl is None:
                raise SimulationError(
                    f"unknown scheduler {name!r}; expected one of "
                    f"{sorted(_SCHEDULERS)}")
            return object.__new__(impl)
        return object.__new__(cls)

    def __init__(self, scheduler: Optional[str] = None, **kwargs: Any) -> None:
        if scheduler is not None and scheduler != self.scheduler_name:
            raise SimulationError(
                f"scheduler mismatch: requested {scheduler!r} on "
                f"{type(self).__name__}")
        self._counter = 0
        self._now = 0.0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def schedule_seq(self) -> int:
        """Monotone admission stamp for future (``delay > 0``) events.

        Two reads returning the same value bracket a window in which no
        strictly-future event entered the queue.  The actor runtime's
        local-delivery batching uses this as its coalescing witness: a
        batch whose stamp is unchanged occupies consecutive sequence
        numbers, so delivering its messages in append order is exactly
        the order the unbatched events would have fired in.  Zero-delay
        admissions may or may not bump the stamp (kernel-dependent), but
        they can never land at a pending batch's strictly-future
        timestamp, so they never need to close one.
        """
        return self._counter

    def stop(self) -> None:
        """Halt the simulation after the current callback returns."""
        self._stopped = True

    def every(self, interval_ms: float,
              callback: Callable[[], Any]) -> Callable[[], None]:
        """Run ``callback()`` every ``interval_ms`` until cancelled.

        Returns a zero-argument cancel function.  The first call fires one
        interval from now.  Unlike a generator process, a periodic callback
        cannot block, which makes it the right shape for observers (the
        invariant checker's sweep) that must never perturb process
        scheduling order.
        """
        if interval_ms <= 0:
            raise SimulationError(
                f"periodic interval must be positive: {interval_ms!r}")
        state = {"cancelled": False}

        def tick() -> None:
            if state["cancelled"]:
                return
            callback()
            if not state["cancelled"]:
                self.schedule(interval_ms, tick)

        def cancel() -> None:
            state["cancelled"] = True

        self.schedule(interval_ms, tick)
        return cancel

    # Concrete kernels implement the queue operations.

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> None:
        raise NotImplementedError

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any) -> None:
        raise NotImplementedError

    def run(self, until: Optional[float] = None) -> float:
        raise NotImplementedError

    def peek(self) -> Optional[float]:
        raise NotImplementedError

    def pending_events(self) -> int:
        raise NotImplementedError


class HeapSimulator(Simulator):
    """Reference kernel: a single binary heap ordered by ``(when, seq)``.

    This is the original engine implementation, preserved unchanged as the
    baseline the differential harness and golden-trace refresh tests diff
    the calendar kernel against.
    """

    __slots__ = ("_heap",)

    scheduler_name = "heap"

    def __init__(self, scheduler: Optional[str] = None, **kwargs: Any) -> None:
        super().__init__(scheduler)
        self._heap: List[Tuple[float, int, Callable[..., Any], tuple]] = []

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        ``delay`` must be non-negative; a zero delay runs the callback at
        the current timestamp, after all callbacks already scheduled for
        that timestamp.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        self._counter = seq = self._counter + 1
        heapq.heappush(self._heap, (self._now + delay, seq, callback, args))

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r}, current time is {self._now!r}")
        self._counter = seq = self._counter + 1
        heapq.heappush(self._heap, (when, seq, callback, args))

    def run(self, until: Optional[float] = None) -> float:
        """Run scheduled events in order.

        Without ``until``, runs until the event heap is empty.  With
        ``until``, runs every event with timestamp <= ``until`` and then
        advances the clock to exactly ``until``.  Returns the final clock.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        # Hot loop: hoist attribute lookups; an infinite limit folds the
        # bounded and unbounded variants into a single comparison.
        heap = self._heap
        heappop = heapq.heappop
        limit = float("inf") if until is None else until
        try:
            while heap and not self._stopped:
                when = heap[0][0]
                if when > limit:
                    break
                _when, _seq, callback, args = heappop(heap)
                self._now = when
                try:
                    callback(*args)
                except StopSimulation:
                    self._stopped = True
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled event, or ``None`` if idle."""
        return self._heap[0][0] if self._heap else None

    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        return len(self._heap)


class CalendarSimulator(Simulator):
    """Calendar-queue kernel with a zero-delay FIFO and a ladder fallback.

    Event storage, in drain order for any single timestamp ``t``:

    ``_active`` / ``_active_pos``
        The current bucket, sorted on activation.  Events scheduled before
        the bucket was activated live here; same-timestamp runs are
        located with one ``bisect_right`` and drained by index.  Bucket
        lists are recycled through ``_free_lists`` (the slab) so steady
        state allocates no new containers per epoch.
    ``_spill``
        A ``(when, seq, callback, args)`` heap for events scheduled inside
        the ladder horizon — into the active bucket after activation, or
        into near-future buckets during sparse epochs.  Spill entries for
        a timestamp always carry higher ``seq`` than active-bucket entries
        for the same timestamp (they were scheduled later), so draining
        active before spill preserves global FIFO.
    ``_nowq``
        Plain FIFO of ``(callback, args)`` for events scheduled *at* the
        current timestamp (``delay == 0.0``).  These are always the
        youngest events of the timestamp, so they run last, in insertion
        order, with no ordering key at all.

    ``_horizon`` is the ladder fallback: future events within ``horizon``
    buckets of the active epoch bypass bucket storage and go straight to
    the spill heap.  Every activation that finds a nearly-empty bucket
    doubles the horizon, so persistently sparse schedules degenerate to a
    plain heap (which is optimal for them) instead of paying per-event
    bucket bookkeeping; dense schedules keep ``horizon == 1`` and get
    batched sort-and-scan drains.
    """

    __slots__ = ("_nowq", "_buckets", "_bucket_heap", "_active",
                 "_active_pos", "_active_index", "_spill", "_width",
                 "_inv_width", "_horizon", "_free_lists")

    scheduler_name = "calendar"

    #: Bucket width in virtual milliseconds.
    BUCKET_WIDTH_MS = 1.0
    #: Activations holding fewer events than this double the horizon.
    SPARSE_BUCKET_MIN = 16
    #: Upper bound on the ladder horizon, in buckets.
    MAX_HORIZON = 1 << 20

    def __init__(self, scheduler: Optional[str] = None, *,
                 bucket_width_ms: Optional[float] = None) -> None:
        super().__init__(scheduler)
        width = self.BUCKET_WIDTH_MS if bucket_width_ms is None \
            else bucket_width_ms
        if width <= 0:
            raise SimulationError(
                f"bucket width must be positive: {width!r}")
        self._nowq: deque = deque()
        self._buckets: Dict[int, list] = {}
        self._bucket_heap: List[int] = []
        self._active: list = []
        self._active_pos = 0
        self._active_index = -1
        self._spill: list = []
        self._width = width
        self._inv_width = 1.0 / width
        self._horizon = 1
        self._free_lists: List[list] = []

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        ``delay`` must be non-negative; a zero delay runs the callback at
        the current timestamp, after all callbacks already scheduled for
        that timestamp.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        now = self._now
        when = now + delay
        if when == now:
            # Youngest event of the current timestamp: plain FIFO, no key.
            self._nowq.append((callback, args))
            return
        self._counter = seq = self._counter + 1
        index = int(when * self._inv_width)
        if index - self._active_index < self._horizon:
            heapq.heappush(self._spill, (when, seq, callback, args))
            return
        bucket = self._buckets.get(index)
        if bucket is None:
            lists = self._free_lists
            if lists:
                bucket = lists.pop()
                bucket.append((when, seq, callback, args))
                self._buckets[index] = bucket
            else:
                self._buckets[index] = [(when, seq, callback, args)]
            heapq.heappush(self._bucket_heap, index)
        else:
            bucket.append((when, seq, callback, args))

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        now = self._now
        if when < now:
            raise SimulationError(
                f"cannot schedule at {when!r}, current time is {self._now!r}")
        if when == now:
            self._nowq.append((callback, args))
            return
        self._counter = seq = self._counter + 1
        index = int(when * self._inv_width)
        if index - self._active_index < self._horizon:
            heapq.heappush(self._spill, (when, seq, callback, args))
            return
        bucket = self._buckets.get(index)
        if bucket is None:
            lists = self._free_lists
            if lists:
                bucket = lists.pop()
                bucket.append((when, seq, callback, args))
                self._buckets[index] = bucket
            else:
                self._buckets[index] = [(when, seq, callback, args)]
            heapq.heappush(self._bucket_heap, index)
        else:
            bucket.append((when, seq, callback, args))

    def _activate(self) -> None:
        """Swap the lowest pending bucket in as the sorted active list."""
        old = self._active
        if old and len(self._free_lists) < 32:
            old.clear()
            self._free_lists.append(old)
        index = heapq.heappop(self._bucket_heap)
        lst = self._buckets.pop(index)
        if len(lst) < self.SPARSE_BUCKET_MIN and \
                self._horizon < self.MAX_HORIZON:
            self._horizon <<= 1
        # Appends are made in seq order, so same-timestamp runs are
        # already sorted and Timsort's run detection makes this pass
        # nearly linear for the common monotone patterns.
        lst.sort()
        self._active = lst
        self._active_pos = 0
        self._active_index = index

    def run(self, until: Optional[float] = None) -> float:
        """Run scheduled events in order.

        Without ``until``, runs until no events remain.  With ``until``,
        runs every event with timestamp <= ``until`` and then advances the
        clock to exactly ``until``.  Returns the final clock.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        limit = _INF if until is None else until
        nowq = self._nowq
        nowq_popleft = nowq.popleft
        heappop = heapq.heappop
        width = self._width
        bheap = self._bucket_heap
        spill = self._spill
        try:
            while True:
                when = self._now
                if when > limit:
                    break
                # 1. Active-bucket events at exactly `when` (oldest seqs).
                active = self._active
                pos = self._active_pos
                if pos < len(active) and active[pos][0] == when:
                    end = bisect_right(active, (when, _INF), pos)
                    while pos < end:
                        rec = active[pos]
                        self._active_pos = pos = pos + 1
                        try:
                            rec[2](*rec[3])
                        except StopSimulation:
                            self._stopped = True
                        if self._stopped:
                            break
                    if self._stopped:
                        break
                # 2. Spill events at exactly `when` (scheduled later than
                #    any active-bucket event at `when`).
                if spill and spill[0][0] == when:
                    while spill and spill[0][0] == when:
                        rec = heappop(spill)
                        try:
                            rec[2](*rec[3])
                        except StopSimulation:
                            self._stopped = True
                        if self._stopped:
                            break
                    if self._stopped:
                        break
                # 3. Zero-delay events queued at `when` (youngest seqs).
                if nowq:
                    while nowq:
                        callback, args = nowq_popleft()
                        try:
                            callback(*args)
                        except StopSimulation:
                            self._stopped = True
                        if self._stopped:
                            break
                    if self._stopped:
                        break
                    continue
                # 4. Advance the clock to the next event.
                if pos < len(active):
                    head = active[pos]
                    if spill and spill[0] < head:
                        head = spill[0]
                    when = head[0]
                    if when > limit:
                        break
                    self._now = when
                    continue
                # Sparse epoch: the active bucket is exhausted and stays
                # exhausted until the next activation, so run a lean heap
                # loop over spill + nowq.  Preconditions from steps 2/3:
                # nowq is empty and the spill head is in the future.
                stop_run = False
                while spill:
                    head = spill[0]
                    when = head[0]
                    # A pending bucket may hold older events for this
                    # timestamp range; activate it first.  Fresh read of
                    # bheap[0] because callbacks create buckets.
                    if bheap and when >= bheap[0] * width:
                        break
                    if when > limit:
                        stop_run = True
                        break
                    heappop(spill)
                    self._now = when
                    try:
                        head[2](*head[3])
                    except StopSimulation:
                        self._stopped = True
                    if self._stopped:
                        stop_run = True
                        break
                    while spill and spill[0][0] == when:
                        rec = heappop(spill)
                        try:
                            rec[2](*rec[3])
                        except StopSimulation:
                            self._stopped = True
                        if self._stopped:
                            break
                    if self._stopped:
                        stop_run = True
                        break
                    if nowq:
                        while nowq:
                            callback, args = nowq_popleft()
                            try:
                                callback(*args)
                            except StopSimulation:
                                self._stopped = True
                            if self._stopped:
                                break
                        if self._stopped:
                            stop_run = True
                            break
                if stop_run:
                    break
                if not bheap:
                    if not spill and not nowq:
                        break
                    continue
                self._activate()
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled event, or ``None`` if idle."""
        if self._nowq:
            return self._now
        best: Optional[float] = None
        active = self._active
        pos = self._active_pos
        if pos < len(active):
            best = active[pos][0]
        spill = self._spill
        if spill and (best is None or spill[0][0] < best):
            best = spill[0][0]
        bheap = self._bucket_heap
        if bheap:
            # The lowest-index bucket bounds every other bucket's minimum.
            low = min(self._buckets[bheap[0]])[0]
            if best is None or low < best:
                best = low
        return best

    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        total = len(self._nowq) + len(self._spill)
        total += len(self._active) - self._active_pos
        for bucket in self._buckets.values():
            total += len(bucket)
        return total


_SCHEDULERS: Dict[str, type] = {
    "heap": HeapSimulator,
    "calendar": CalendarSimulator,
}
