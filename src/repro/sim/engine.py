"""Discrete-event simulation engine.

The engine is a classic event-heap simulator: callbacks are scheduled at
virtual timestamps and executed in timestamp order.  Ties are broken by
insertion order so runs are fully deterministic.  All timestamps are floats
in *milliseconds* of virtual time; the unit is a convention shared by the
rest of the library (the cluster and actor layers document their costs in
the same unit).

Most users never schedule raw callbacks.  They start generator-based
processes (see :mod:`repro.sim.process`) and let those block on timeouts,
signals and queues.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimulationError", "StopSimulation"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Simulator.run` immediately."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.schedule(5.0, seen.append, "later")
    >>> sim.schedule(1.0, seen.append, "sooner")
    >>> sim.run()
    >>> seen
    ['sooner', 'later']
    >>> sim.now
    5.0
    """

    __slots__ = ("_heap", "_counter", "_now", "_running", "_stopped")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[..., Any], tuple]] = []
        self._counter = 0
        self._now = 0.0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        ``delay`` must be non-negative; a zero delay runs the callback at
        the current timestamp, after all callbacks already scheduled for
        that timestamp.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        self._counter = seq = self._counter + 1
        heapq.heappush(self._heap, (self._now + delay, seq, callback, args))

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r}, current time is {self._now!r}")
        self._counter = seq = self._counter + 1
        heapq.heappush(self._heap, (when, seq, callback, args))

    def stop(self) -> None:
        """Halt the simulation after the current callback returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Run scheduled events in order.

        Without ``until``, runs until the event heap is empty.  With
        ``until``, runs every event with timestamp <= ``until`` and then
        advances the clock to exactly ``until``.  Returns the final clock.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        # Hot loop: hoist attribute lookups; an infinite limit folds the
        # bounded and unbounded variants into a single comparison.
        heap = self._heap
        heappop = heapq.heappop
        limit = float("inf") if until is None else until
        try:
            while heap and not self._stopped:
                when = heap[0][0]
                if when > limit:
                    break
                _when, _seq, callback, args = heappop(heap)
                self._now = when
                try:
                    callback(*args)
                except StopSimulation:
                    self._stopped = True
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def every(self, interval_ms: float,
              callback: Callable[[], Any]) -> Callable[[], None]:
        """Run ``callback()`` every ``interval_ms`` until cancelled.

        Returns a zero-argument cancel function.  The first call fires one
        interval from now.  Unlike a generator process, a periodic callback
        cannot block, which makes it the right shape for observers (the
        invariant checker's sweep) that must never perturb process
        scheduling order.
        """
        if interval_ms <= 0:
            raise SimulationError(
                f"periodic interval must be positive: {interval_ms!r}")
        state = {"cancelled": False}

        def tick() -> None:
            if state["cancelled"]:
                return
            callback()
            if not state["cancelled"]:
                self.schedule(interval_ms, tick)

        def cancel() -> None:
            state["cancelled"] = True

        self.schedule(interval_ms, tick)
        return cancel

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled event, or ``None`` if idle."""
        return self._heap[0][0] if self._heap else None

    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        return len(self._heap)
