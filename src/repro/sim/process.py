"""Generator-based processes on top of the event engine.

A *process* is a Python generator driven by the simulator.  The generator
yields *waitables* — objects describing what the process blocks on — and is
resumed with the waitable's result once it fires:

    def worker(sim):
        yield Timeout(sim, 10.0)          # sleep 10 ms
        item = yield queue.get()          # block on a queue
        yield signal.wait()               # block on a broadcast signal

Waitables
---------
:class:`Timeout`  fires after a fixed delay.
:class:`Signal`   broadcast event; every waiter resumes when triggered.
:class:`Process`  (itself) — waiting on a process resumes when it finishes
                  and yields its return value.

Processes may be interrupted: :meth:`Process.interrupt` raises
:class:`Interrupted` inside the generator at its current yield point, which
the process may catch to clean up or re-wait.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from .engine import SimulationError, Simulator

__all__ = ["Process", "Timeout", "Signal", "Interrupted", "Waitable",
           "AllOf"]


class Interrupted(Exception):
    """Raised inside a process generator when it is interrupted.

    The optional ``cause`` carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Waitable:
    """Base class for things a process can block on.

    Subclasses implement :meth:`_subscribe`, registering a resume callback
    invoked exactly once with the waitable's result, and
    :meth:`_unsubscribe`, used when a waiting process is interrupted.
    """

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        raise NotImplementedError

    def _unsubscribe(self, callback: Callable[[Any], None]) -> None:
        """Best-effort removal of a previously subscribed callback."""


class Timeout(Waitable):
    """Fires ``delay`` ms after creation; resumes with ``value``."""

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        self._sim = sim
        self._delay = delay
        self._value = value
        self._cancelled = False

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        def fire() -> None:
            if not self._cancelled:
                callback(self._value)

        self._sim.schedule(self._delay, fire)

    def _unsubscribe(self, callback: Callable[[Any], None]) -> None:
        self._cancelled = True


class Signal(Waitable):
    """A broadcast event.

    Processes wait on the signal by yielding it; :meth:`trigger` resumes
    every current waiter with the given value.  A signal stays triggered:
    waiting on an already-triggered signal resumes immediately (at the next
    event-loop step).  Call :meth:`reset` to rearm.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._waiters: List[Callable[[Any], None]] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, resuming all waiters with ``value``."""
        if self._triggered:
            return
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self._sim.schedule(0.0, callback, value)

    def reset(self) -> None:
        """Rearm a triggered signal so it can fire again."""
        self._triggered = False
        self._value = None

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        if self._triggered:
            self._sim.schedule(0.0, callback, self._value)
        else:
            self._waiters.append(callback)

    def _unsubscribe(self, callback: Callable[[Any], None]) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass


class AllOf(Waitable):
    """Fires once every child waitable has fired; resumes with their results
    in order."""

    def __init__(self, sim: Simulator, waitables: List[Waitable]) -> None:
        self._sim = sim
        self._waitables = list(waitables)

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        remaining = len(self._waitables)
        results: List[Any] = [None] * len(self._waitables)
        if remaining == 0:
            self._sim.schedule(0.0, callback, [])
            return

        def make_child(index: int) -> Callable[[Any], None]:
            def child_done(value: Any) -> None:
                nonlocal remaining
                results[index] = value
                remaining -= 1
                if remaining == 0:
                    callback(results)

            return child_done

        for i, waitable in enumerate(self._waitables):
            waitable._subscribe(make_child(i))


class Process(Waitable):
    """A running generator process.

    Created via :func:`spawn` (or directly).  The generator starts at the
    next event-loop step.  A finished process exposes :attr:`result` (the
    generator's return value) and :attr:`exception`.  Unhandled exceptions
    other than :class:`Interrupted` propagate out of the event loop —
    silent process death hides bugs.
    """

    def __init__(self, sim: Simulator,
                 generator: Generator[Waitable, Any, Any],
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}")
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._finished = False
        self._done_signal = Signal(sim)
        self._current_wait: Optional[Tuple[Waitable,
                                           Callable[[Any], None]]] = None
        self._interrupt_pending: Optional[Interrupted] = None
        sim.schedule(0.0, self._step, None, None)

    # -- public API ------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its yield point.

        Interrupting a finished process is a no-op.
        """
        if self._finished:
            return
        if self._current_wait is not None:
            waitable, callback = self._current_wait
            waitable._unsubscribe(callback)
            self._current_wait = None
            self._sim.schedule(0.0, self._step, None, Interrupted(cause))
        else:
            # Not yet started or between steps: deliver on next step.
            self._interrupt_pending = Interrupted(cause)

    # -- waitable protocol (join) ----------------------------------------

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        self._done_signal._subscribe(callback)

    def _unsubscribe(self, callback: Callable[[Any], None]) -> None:
        self._done_signal._unsubscribe(callback)

    # -- engine plumbing --------------------------------------------------

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._finished:
            return
        if self._interrupt_pending is not None and exc is None:
            exc = self._interrupt_pending
            self._interrupt_pending = None
        self._current_wait = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except Interrupted as interrupted:
            self._finish(None, interrupted)
            return
        except BaseException as error:
            self._finish(None, error)
            raise
        if not isinstance(target, Waitable):
            error = SimulationError(
                f"process {self.name!r} yielded a non-waitable: {target!r}")
            self._finish(None, error)
            raise error

        resumed = False

        def resume(result: Any) -> None:
            nonlocal resumed
            if resumed or self._finished:
                return
            resumed = True
            self._step(result, None)

        self._current_wait = (target, resume)
        target._subscribe(resume)

    def _finish(self, result: Any, exception: Optional[BaseException]) -> None:
        self._finished = True
        self.result = result
        self.exception = exception
        self._done_signal.trigger(result)


def spawn(sim: Simulator, generator: Generator[Waitable, Any, Any],
          name: str = "") -> Process:
    """Start a generator as a simulation process.  Convenience wrapper."""
    return Process(sim, generator, name=name)
