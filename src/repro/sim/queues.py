"""Blocking FIFO queues for simulation processes.

:class:`Queue` is the mailbox primitive used throughout the actor runtime:
``put`` never blocks (mailboxes are unbounded, as in AEON/Orleans) while
``get`` returns a waitable that resumes the caller with the next item.
Items are delivered to getters in FIFO order on both sides.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generic, List, TypeVar

from .engine import Simulator
from .process import Waitable

__all__ = ["Queue", "QueueGet"]

T = TypeVar("T")


class QueueGet(Waitable, Generic[T]):
    """Waitable returned by :meth:`Queue.get`."""

    __slots__ = ("_queue", "_callback")

    def __init__(self, queue: "Queue[T]") -> None:
        self._queue = queue
        self._callback: Callable[[Any], None] = lambda value: None

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        self._callback = callback
        self._queue._register_getter(self)

    def _unsubscribe(self, callback: Callable[[Any], None]) -> None:
        self._queue._drop_getter(self)

    def _deliver(self, item: T) -> None:
        self._queue._sim.schedule(0.0, self._callback, item)


class Queue(Generic[T]):
    """Unbounded FIFO queue with blocking ``get``.

    >>> # inside a process generator:
    >>> # item = yield queue.get()
    """

    __slots__ = ("_sim", "_items", "_getters")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._items: Deque[T] = deque()
        # A deque so waking the oldest getter is O(1); mailboxes with a
        # deep backlog of waiters used to pay O(n) per put.
        self._getters: Deque[QueueGet[T]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: T) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter._deliver(item)
        else:
            self._items.append(item)

    def get(self) -> QueueGet[T]:
        """Return a waitable that resumes with the next item."""
        return QueueGet(self)

    def get_nowait(self) -> T:
        """Dequeue immediately; raises :class:`IndexError` when empty."""
        return self._items.popleft()

    def peek_all(self) -> List[T]:
        """Snapshot of queued items without consuming them."""
        return list(self._items)

    def clear(self) -> List[T]:
        """Drop and return all queued items (used when draining mailboxes
        during actor migration)."""
        items = list(self._items)
        self._items.clear()
        return items

    # -- plumbing for QueueGet --------------------------------------------

    def _register_getter(self, getter: QueueGet[T]) -> None:
        if self._items:
            getter._deliver(self._items.popleft())
        else:
            self._getters.append(getter)

    def _drop_getter(self, getter: QueueGet[T]) -> None:
        try:
            self._getters.remove(getter)
        except ValueError:
            pass
