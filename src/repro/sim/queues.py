"""Blocking FIFO queues for simulation processes.

:class:`Queue` is the mailbox primitive used throughout the actor runtime:
``put`` never blocks (mailboxes are unbounded, as in AEON/Orleans) while
``get`` returns a waitable that resumes the caller with the next item.
Items are delivered to getters in FIFO order on both sides.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generic, List, TypeVar

from .engine import Simulator
from .process import Waitable

__all__ = ["Queue", "QueueGet"]

T = TypeVar("T")


class QueueGet(Waitable, Generic[T]):
    """Waitable returned by :meth:`Queue.get`."""

    __slots__ = ("_queue", "_callback")

    def __init__(self, queue: "Queue[T]") -> None:
        self._queue = queue
        self._callback: Callable[[Any], None] = lambda value: None

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        self._callback = callback
        self._queue._register_getter(self)

    def _unsubscribe(self, callback: Callable[[Any], None]) -> None:
        self._queue._drop_getter(self)

    def _deliver(self, item: T) -> None:
        # The hop through the event queue keeps delivery asynchronous, but
        # it also means the item is in flight for the rest of the current
        # timestamp.  Track each delivery on the queue so Queue.clear()
        # can reclaim it instead of handing a getter a stale item.  The
        # cancel flag lives on the per-delivery entry, not the getter: a
        # reclaimed getter can be re-delivered in the same timestamp,
        # while the cancelled fire is still pending.
        entry = [self, item, False]  # [getter, item, cancelled]
        self._queue._inflight.append(entry)
        self._queue._sim.schedule(0.0, self._fire, entry)

    def _fire(self, entry: list) -> None:
        if entry[2]:
            return  # reclaimed by Queue.clear()
        # Live deliveries fire in FIFO order (zero-delay events scheduled
        # in append order) and clear() removes reclaimed entries, so this
        # entry is the deque head.
        self._queue._inflight.popleft()
        self._callback(entry[1])


class Queue(Generic[T]):
    """Unbounded FIFO queue with blocking ``get``.

    >>> # inside a process generator:
    >>> # item = yield queue.get()
    """

    __slots__ = ("_sim", "_items", "_getters", "_inflight")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._items: Deque[T] = deque()
        # A deque so waking the oldest getter is O(1); mailboxes with a
        # deep backlog of waiters used to pay O(n) per put.
        self._getters: Deque[QueueGet[T]] = deque()
        # Deliveries handed to a getter but not yet fired (the zero-delay
        # hop in QueueGet._deliver).  clear() reclaims these.
        self._inflight: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: T) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter._deliver(item)
        else:
            self._items.append(item)

    def get(self) -> QueueGet[T]:
        """Return a waitable that resumes with the next item."""
        return QueueGet(self)

    def get_nowait(self) -> T:
        """Dequeue immediately; raises :class:`IndexError` when empty."""
        return self._items.popleft()

    def peek_all(self) -> List[T]:
        """Snapshot of queued items without consuming them."""
        return list(self._items)

    def clear(self) -> List[T]:
        """Drop and return all queued *and in-flight* items (used when
        draining mailboxes during actor migration).

        An item handed to a getter in the current timestamp but not yet
        delivered is reclaimed: its scheduled delivery is cancelled and
        the getter goes back to waiting, ahead of any younger waiters, so
        a getter subscribed before ``clear()`` never observes a stale
        item afterward.
        """
        inflight = self._inflight
        items: List[T] = []
        if inflight:
            getters = []
            while inflight:
                entry = inflight.popleft()
                entry[2] = True  # the pending _fire becomes a no-op
                getters.append(entry[0])
                items.append(entry[1])
            # Reclaimed getters were dequeued before anyone currently in
            # _getters arrived; restore them at the front, oldest first.
            self._getters.extendleft(reversed(getters))
        items.extend(self._items)
        self._items.clear()
        return items

    # -- plumbing for QueueGet --------------------------------------------

    def _register_getter(self, getter: QueueGet[T]) -> None:
        if self._items:
            getter._deliver(self._items.popleft())
        else:
            self._getters.append(getter)

    def _drop_getter(self, getter: QueueGet[T]) -> None:
        try:
            self._getters.remove(getter)
        except ValueError:
            pass
