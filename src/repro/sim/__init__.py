"""Deterministic discrete-event simulation kernel.

Public surface:

- :class:`Simulator` — the event loop and virtual clock (milliseconds).
- :class:`Process`, :func:`spawn` — generator-based processes.
- :class:`Timeout`, :class:`Signal`, :class:`AllOf` — waitables.
- :class:`Queue` — blocking FIFO used for actor mailboxes.
- :class:`RandomStreams` — named deterministic RNG streams.
"""

from .engine import SimulationError, Simulator, StopSimulation
from .process import AllOf, Interrupted, Process, Signal, Timeout, Waitable, spawn
from .queues import Queue
from .rng import RandomStreams

__all__ = [
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "Process",
    "spawn",
    "Timeout",
    "Signal",
    "AllOf",
    "Waitable",
    "Interrupted",
    "Queue",
    "RandomStreams",
]
