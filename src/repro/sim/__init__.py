"""Deterministic discrete-event simulation kernel.

Public surface:

- :class:`Simulator` — the event loop and virtual clock (milliseconds).
  ``Simulator()`` picks the scheduler named by ``DEFAULT_SCHEDULER``
  (env override ``REPRO_SIM_SCHEDULER``); ``Simulator(scheduler=...)``
  or the concrete :class:`HeapSimulator` / :class:`CalendarSimulator`
  select one explicitly.
- :class:`Process`, :func:`spawn` — generator-based processes.
- :class:`Timeout`, :class:`Signal`, :class:`AllOf` — waitables.
- :class:`Queue` — blocking FIFO used for actor mailboxes.
- :class:`RandomStreams` — named deterministic RNG streams.
"""

from .engine import (DEFAULT_SCHEDULER, CalendarSimulator, HeapSimulator,
                     SimulationError, Simulator, StopSimulation)
from .process import AllOf, Interrupted, Process, Signal, Timeout, Waitable, spawn
from .queues import Queue
from .rng import RandomStreams

__all__ = [
    "Simulator",
    "HeapSimulator",
    "CalendarSimulator",
    "DEFAULT_SCHEDULER",
    "SimulationError",
    "StopSimulation",
    "Process",
    "spawn",
    "Timeout",
    "Signal",
    "AllOf",
    "Waitable",
    "Interrupted",
    "Queue",
    "RandomStreams",
]
