"""Multilevel graph partitioning (the METIS stand-in).

Implements the algorithm family METIS popularized:

1. **Coarsening** by heavy-edge matching until the graph is small;
2. **Initial partitioning** of the coarse graph by greedy BFS region
   growing into node-balanced parts;
3. **Uncoarsening with refinement**: projected back level by level, a
   boundary-greedy Kernighan–Lin/Fiduccia–Mattheyses-style pass moves
   nodes to reduce the edge cut while keeping parts within a balance
   tolerance.

The experiments only require METIS's observable behaviour — partitions
with (near-)equal node counts and a respectable cut — because the
paper's point is that *node-balanced* partitions still have skewed
compute cost on power-law graphs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Graph

__all__ = ["PartitionResult", "partition_graph", "edge_cut",
           "partition_sizes"]


@dataclass
class PartitionResult:
    """Assignment of every node to one of ``k`` parts."""

    assignment: List[int]
    k: int

    def part_nodes(self, part: int) -> List[int]:
        return [node for node, p in enumerate(self.assignment) if p == part]

    def sizes(self) -> List[int]:
        counts = [0] * self.k
        for part in self.assignment:
            counts[part] += 1
        return counts


def edge_cut(graph: Graph, assignment: Sequence[int]) -> int:
    """Number of directed edges crossing part boundaries."""
    return sum(1 for src, dst in graph.edges()
               if assignment[src] != assignment[dst])


def partition_sizes(assignment: Sequence[int], k: int) -> List[int]:
    """Node count per part for an assignment vector."""
    counts = [0] * k
    for part in assignment:
        counts[part] += 1
    return counts


def partition_graph(graph: Graph, k: int,
                    rng: Optional[random.Random] = None,
                    balance_tolerance: float = 0.05,
                    coarsen_until: int = 256) -> PartitionResult:
    """Partition ``graph`` into ``k`` node-balanced parts."""
    if k <= 0:
        raise ValueError("k must be positive")
    if k == 1 or graph.num_nodes == 0:
        return PartitionResult(assignment=[0] * graph.num_nodes, k=k)
    if k >= graph.num_nodes:
        return PartitionResult(
            assignment=[node % k for node in graph.nodes()], k=k)
    rng = rng or random.Random(0)

    adj = graph.undirected_neighbors()
    weights = [1] * graph.num_nodes

    # -- coarsening ---------------------------------------------------------
    # Each history entry is the *fine* level (its adjacency, node weights,
    # and the fine->coarse mapping) so uncoarsening can refine against the
    # right graph at every level.
    history: List[Tuple[List[Dict[int, int]], List[int], List[int]]] = []
    target = max(coarsen_until, 8 * k)
    while len(adj) > target:
        mapping, coarse_adj, coarse_weights = _coarsen(adj, weights, rng)
        if len(coarse_adj) >= len(adj):  # no progress: matching exhausted
            break
        history.append((adj, weights, mapping))
        adj = coarse_adj
        weights = coarse_weights

    # -- initial partition of the coarse graph -------------------------------
    assignment = _region_grow(adj, weights, k)
    _rebalance(adj, weights, assignment, k, balance_tolerance)
    _refine(adj, weights, assignment, k, balance_tolerance, rounds=6)

    # -- uncoarsen + refine ---------------------------------------------------
    for fine_adj, fine_weights, mapping in reversed(history):
        assignment = [assignment[coarse] for coarse in mapping]
        _rebalance(fine_adj, fine_weights, assignment, k, balance_tolerance)
        _refine(fine_adj, fine_weights, assignment, k, balance_tolerance,
                rounds=4)
        _rebalance(fine_adj, fine_weights, assignment, k, balance_tolerance)

    return PartitionResult(assignment=assignment, k=k)


# ---------------------------------------------------------------------------


def _coarsen(adj: List[Dict[int, int]], weights: List[int],
             rng: random.Random):
    """Heavy-edge matching: each unmatched node pairs with its heaviest
    unmatched neighbor; pairs collapse into coarse nodes."""
    n = len(adj)
    match = [-1] * n
    visit_order = list(range(n))
    rng.shuffle(visit_order)
    for node in visit_order:
        if match[node] != -1:
            continue
        best = -1
        best_weight = -1
        for neighbor, weight in adj[node].items():
            if match[neighbor] == -1 and weight > best_weight:
                best = neighbor
                best_weight = weight
        if best != -1:
            match[node] = best
            match[best] = node
        else:
            match[node] = node

    mapping = [-1] * n
    next_id = 0
    for node in range(n):
        if mapping[node] != -1:
            continue
        mapping[node] = next_id
        partner = match[node]
        if partner != node and mapping[partner] == -1:
            mapping[partner] = next_id
        next_id += 1

    coarse_adj: List[Dict[int, int]] = [{} for _ in range(next_id)]
    coarse_weights = [0] * next_id
    for node in range(n):
        coarse = mapping[node]
        coarse_weights[coarse] += weights[node]
        for neighbor, weight in adj[node].items():
            coarse_neighbor = mapping[neighbor]
            if coarse_neighbor == coarse:
                continue
            coarse_adj[coarse][coarse_neighbor] = (
                coarse_adj[coarse].get(coarse_neighbor, 0) + weight)
    return mapping, coarse_adj, coarse_weights


def _region_grow(adj: List[Dict[int, int]], weights: List[int],
                 k: int) -> List[int]:
    """Greedy BFS region growing into k weight-balanced parts.

    Each part grows from the highest-degree unassigned seed until it
    reaches its weight target; leftovers are fed to the lightest parts.
    """
    from collections import deque

    n = len(adj)
    total = sum(weights)
    target = total / k
    assignment = [-1] * n
    part_weight = [0.0] * k
    seeds = sorted(range(n), key=lambda node: -len(adj[node]))
    seed_index = 0

    for part in range(k):
        while seed_index < n and assignment[seeds[seed_index]] != -1:
            seed_index += 1
        if seed_index >= n:
            break
        queue = deque([seeds[seed_index]])
        while queue and part_weight[part] < target:
            node = queue.popleft()
            if assignment[node] != -1:
                continue
            assignment[node] = part
            part_weight[part] += weights[node]
            for neighbor in adj[node]:
                if assignment[neighbor] == -1:
                    queue.append(neighbor)

    for node in range(n):
        if assignment[node] == -1:
            part = min(range(k), key=lambda p: part_weight[p])
            assignment[node] = part
            part_weight[part] += weights[node]
    return assignment


def _rebalance(adj: List[Dict[int, int]], weights: List[int],
               assignment: List[int], k: int, tolerance: float) -> None:
    """Force every part into the balance band by moving the cheapest
    boundary (or, failing that, any) nodes from heavy parts to light ones."""
    total = sum(weights)
    target = total / k
    max_weight = target * (1.0 + tolerance)
    min_weight = target * (1.0 - tolerance)
    part_weight = [0.0] * k
    nodes_in: List[List[int]] = [[] for _ in range(k)]
    for node, part in enumerate(assignment):
        part_weight[part] += weights[node]
        nodes_in[part].append(node)

    for _ in range(4 * len(adj)):
        light = min(range(k), key=lambda p: part_weight[p])
        if part_weight[light] >= min_weight:
            break
        heavy = max(range(k), key=lambda p: part_weight[p])
        if heavy == light or not nodes_in[heavy]:
            break
        # Cheapest node to surrender: most connectivity toward `light`,
        # least toward `heavy`.
        best = None
        best_cost = None
        for node in nodes_in[heavy]:
            to_light = sum(w for nb, w in adj[node].items()
                           if assignment[nb] == light)
            to_heavy = sum(w for nb, w in adj[node].items()
                           if assignment[nb] == heavy)
            cost = to_heavy - to_light
            if best_cost is None or cost < best_cost:
                best = node
                best_cost = cost
        if best is None:
            break
        nodes_in[heavy].remove(best)
        nodes_in[light].append(best)
        assignment[best] = light
        part_weight[heavy] -= weights[best]
        part_weight[light] += weights[best]


def _refine(adj: List[Dict[int, int]], weights: List[int],
            assignment: List[int], k: int, tolerance: float,
            rounds: int) -> None:
    """Boundary-greedy refinement: move nodes whose gain (cut reduction)
    is positive, or zero-gain moves that improve balance, respecting a
    weight tolerance per part."""
    total = sum(weights)
    target = total / k
    max_weight = target * (1.0 + tolerance)
    min_weight = target * (1.0 - tolerance)
    part_weight = [0.0] * k
    for node, part in enumerate(assignment):
        part_weight[part] += weights[node]

    for _ in range(rounds):
        moved = 0
        for node in range(len(adj)):
            home = assignment[node]
            # connectivity to each part among neighbors
            link: Dict[int, int] = {}
            for neighbor, weight in adj[node].items():
                link[assignment[neighbor]] = (
                    link.get(assignment[neighbor], 0) + weight)
            internal = link.get(home, 0)
            best_part = home
            best_gain = 0
            for part, weight in link.items():
                if part == home:
                    continue
                gain = weight - internal
                new_src = part_weight[home] - weights[node]
                new_dst = part_weight[part] + weights[node]
                if new_dst > max_weight or new_src < min_weight:
                    continue
                improves_balance = (gain == 0 and new_dst < new_src)
                if gain > best_gain or (best_part == home and improves_balance):
                    best_gain = gain
                    best_part = part
            if best_part != home:
                part_weight[home] -= weights[node]
                part_weight[best_part] += weights[node]
                assignment[node] = best_part
                moved += 1
        if moved == 0:
            break


