"""Graph substrate: container, generators, partitioner, PageRank math."""

from .generators import powerlaw_graph, ring_graph, social_graph, uniform_graph
from .graph import Graph
from .pagerank import pagerank, pagerank_delta
from .partition import (PartitionResult, edge_cut, partition_graph,
                        partition_sizes)

__all__ = [
    "Graph",
    "powerlaw_graph", "uniform_graph", "ring_graph", "social_graph",
    "pagerank", "pagerank_delta",
    "PartitionResult", "partition_graph", "edge_cut", "partition_sizes",
]
