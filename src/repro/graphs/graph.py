"""A compact directed graph container.

Nodes are dense integers ``0..n-1``.  The PageRank experiments need out-
edge iteration, degrees, and undirected views for partitioning; this
container provides exactly that without pulling in heavier dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["Graph"]


class Graph:
    """Directed graph over nodes ``0..num_nodes-1``."""

    def __init__(self, num_nodes: int,
                 edges: Iterable[Tuple[int, int]] = ()) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self.num_nodes = num_nodes
        self._out: List[List[int]] = [[] for _ in range(num_nodes)]
        self._in_degree: List[int] = [0] * num_nodes
        self.num_edges = 0
        for src, dst in edges:
            self.add_edge(src, dst)

    def add_edge(self, src: int, dst: int) -> None:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise IndexError(f"edge ({src}, {dst}) out of range")
        self._out[src].append(dst)
        self._in_degree[dst] += 1
        self.num_edges += 1

    def out_edges(self, node: int) -> Sequence[int]:
        return self._out[node]

    def out_degree(self, node: int) -> int:
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        return self._in_degree[node]

    def nodes(self) -> range:
        return range(self.num_nodes)

    def edges(self) -> Iterable[Tuple[int, int]]:
        for src, targets in enumerate(self._out):
            for dst in targets:
                yield (src, dst)

    def undirected_neighbors(self) -> List[Dict[int, int]]:
        """Symmetrized adjacency with edge multiplicities, used by the
        partitioner (cut edges count in both directions)."""
        adj: List[Dict[int, int]] = [{} for _ in range(self.num_nodes)]
        for src, dst in self.edges():
            if src == dst:
                continue
            adj[src][dst] = adj[src].get(dst, 0) + 1
            adj[dst][src] = adj[dst].get(src, 0) + 1
        return adj

    def __repr__(self) -> str:
        return f"<Graph nodes={self.num_nodes} edges={self.num_edges}>"
