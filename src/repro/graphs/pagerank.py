"""Reference PageRank (power iteration).

Ground truth for the distributed actor-based PageRank application: the
actor implementation must converge to these values, which the
integration tests assert.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .graph import Graph

__all__ = ["pagerank", "pagerank_delta"]

DEFAULT_DAMPING = 0.85


def pagerank(graph: Graph, damping: float = DEFAULT_DAMPING,
             iterations: int = 50, tolerance: float = 1e-10
             ) -> List[float]:
    """PageRank scores by power iteration with dangling-mass handling."""
    n = graph.num_nodes
    if n == 0:
        return []
    rank = [1.0 / n] * n
    for _ in range(iterations):
        rank, delta = _step(graph, rank, damping)
        if delta < tolerance:
            break
    return rank


def pagerank_delta(graph: Graph, rank: Sequence[float],
                   damping: float = DEFAULT_DAMPING
                   ) -> Tuple[List[float], float]:
    """One PageRank iteration; returns (new rank, L1 change)."""
    return _step(graph, list(rank), damping)


def _step(graph: Graph, rank: Sequence[float],
          damping: float) -> Tuple[List[float], float]:
    n = graph.num_nodes
    contrib = [0.0] * n
    dangling = 0.0
    for node in graph.nodes():
        degree = graph.out_degree(node)
        if degree == 0:
            dangling += rank[node]
            continue
        share = rank[node] / degree
        for target in graph.out_edges(node):
            contrib[target] += share
    base = (1.0 - damping) / n + damping * dangling / n
    new_rank = [base + damping * contrib[node] for node in graph.nodes()]
    delta = sum(abs(new_rank[node] - rank[node]) for node in graph.nodes())
    return new_rank, delta
