"""Synthetic graph generators.

The paper partitions SNAP's LiveJournal social network; offline we stand
in a scaled-down power-law graph (preferential attachment), which
reproduces the property the experiment depends on: heavy degree skew, so
that equally-*sized* partitions have very unequal *compute* cost.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .graph import Graph

__all__ = ["powerlaw_graph", "uniform_graph", "ring_graph", "social_graph"]


def powerlaw_graph(num_nodes: int, edges_per_node: int = 4,
                   rng: Optional[random.Random] = None) -> Graph:
    """Barabási–Albert-style preferential attachment graph.

    Each arriving node attaches ``edges_per_node`` directed edges to
    existing nodes chosen proportionally to their current degree, giving
    a power-law in-degree distribution like real social graphs.
    """
    if num_nodes < 2:
        raise ValueError("powerlaw_graph needs at least 2 nodes")
    rng = rng or random.Random(0)
    m = max(1, min(edges_per_node, num_nodes - 1))
    graph = Graph(num_nodes)
    # Repeated-endpoints list: sampling uniformly from it is sampling
    # proportionally to degree.
    endpoints: List[int] = [0]
    for node in range(1, num_nodes):
        chosen = set()
        attempts = 0
        while len(chosen) < min(m, node) and attempts < 10 * m:
            target = endpoints[rng.randrange(len(endpoints))]
            attempts += 1
            if target != node:
                chosen.add(target)
        if not chosen:
            chosen.add(node - 1)
        for target in chosen:
            graph.add_edge(node, target)
            graph.add_edge(target, node)
            endpoints.append(target)
            endpoints.append(node)
    return graph


def social_graph(num_nodes: int, edges_per_node: int = 3,
                 superhubs: int = 6, hub_fraction: float = 0.08,
                 rng: Optional[random.Random] = None) -> Graph:
    """Power-law graph with a handful of *superhub* nodes connected to a
    large fraction of the graph.

    LiveJournal-class social networks have celebrity accounts whose
    degree dwarfs the power-law tail; they are what makes node-balanced
    partitions (METIS-style) wildly unequal in *edge* count — the compute
    imbalance the PageRank experiments exercise.
    """
    rng = rng or random.Random(0)
    graph = powerlaw_graph(num_nodes, edges_per_node, rng)
    followers = int(num_nodes * hub_fraction)
    for hub in range(min(superhubs, num_nodes)):
        for _ in range(followers):
            target = rng.randrange(num_nodes)
            if target != hub:
                graph.add_edge(hub, target)
                graph.add_edge(target, hub)
    return graph


def uniform_graph(num_nodes: int, num_edges: int,
                  rng: Optional[random.Random] = None) -> Graph:
    """Uniform random directed graph (Erdős–Rényi G(n, m) flavour)."""
    rng = rng or random.Random(0)
    graph = Graph(num_nodes)
    for _ in range(num_edges):
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        if src != dst:
            graph.add_edge(src, dst)
    return graph


def ring_graph(num_nodes: int, hops: int = 1) -> Graph:
    """Deterministic ring with ``hops`` forward edges per node — handy for
    exact-value tests (its PageRank is uniform)."""
    graph = Graph(num_nodes)
    for node in range(num_nodes):
        for hop in range(1, hops + 1):
            graph.add_edge(node, (node + hop) % num_nodes)
    return graph
