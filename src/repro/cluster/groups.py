"""Server-group membership for the hierarchical control plane.

A :class:`ServerGroupMap` partitions the fleet into contiguous groups by
join order: the first ``group_size`` servers form group 0, the next
``group_size`` group 1, and so on.  A server booted mid-run joins the
newest group with capacity, or opens a new group.  Membership is
single-authority by construction — a server belongs to exactly one group
for its whole life (crashed servers keep their slot so ids never
reshuffle), which is what the ``cross-group-single-authority`` invariant
re-derives from the event stream.

``group_size=None`` is the degenerate tree: one group spans the whole
fleet regardless of later joins.  The flat-vs-hierarchical differential
harness runs in this mode.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .server import Server

__all__ = ["ServerGroupMap"]


class ServerGroupMap:
    """Contiguous, join-order server grouping."""

    def __init__(self, group_size: Optional[int] = None) -> None:
        if group_size is not None and group_size < 1:
            raise ValueError("group_size must be positive (or None)")
        self.group_size = group_size
        self._group_of: Dict[int, int] = {}
        self._members: List[List[int]] = []

    def assign(self, server: "Server") -> int:
        """Add ``server`` to the newest group with capacity (opening a
        new group when full) and return its group id.  Idempotent."""
        server_id = server.server_id
        existing = self._group_of.get(server_id)
        if existing is not None:
            return existing
        if self._members and (
                self.group_size is None
                or len(self._members[-1]) < self.group_size):
            group = len(self._members) - 1
        else:
            group = len(self._members)
            self._members.append([])
        self._members[group].append(server_id)
        self._group_of[server_id] = group
        return group

    def group_of(self, server_id: int) -> Optional[int]:
        """Group owning ``server_id``, or ``None`` if never assigned."""
        return self._group_of.get(server_id)

    def members(self, group: int) -> List[int]:
        """Server ids assigned to ``group`` (join order, crashed
        included — membership never reshuffles)."""
        if 0 <= group < len(self._members):
            return list(self._members[group])
        return []

    def group_count(self) -> int:
        return len(self._members)

    def groups(self) -> Iterable[int]:
        return range(len(self._members))
