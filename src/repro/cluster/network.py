"""Network fabric connecting simulated servers.

Messages between actors on the same server are delivered with a small
constant in-process latency and consume no NIC bandwidth.  Messages
between servers pay a propagation delay plus a serialization delay set by
the slower of the two NICs, and the bytes are charged to both ends'
network meters — that charge is what server-level ``net`` rules observe.

The local/remote asymmetry is the entire economic basis of the paper's
``colocate`` behavior, so its ratio (default 0.05 ms vs ~0.5 ms+)
matches intra-host vs intra-AZ messaging on EC2.

Fault injection: the chaos engine can :meth:`degrade` the fabric —
a latency multiplier applied to every remote delay, and a message-drop
probability sampled per remote send.  Drops model request loss in
transit: the message simply never arrives, so a caller without a timeout
waits forever (which is why :class:`repro.actors.Client` grows a
timeout + retry path).  In-process messages are never degraded.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim import Simulator
from .server import Server

__all__ = ["NetworkFabric"]


class NetworkFabric:
    """Computes delivery delays and meters NIC usage."""

    def __init__(self, sim: Simulator, local_latency_ms: float = 0.05,
                 remote_rtt_ms: float = 1.0) -> None:
        self.sim = sim
        self.local_latency_ms = local_latency_ms
        self.remote_rtt_ms = remote_rtt_ms
        # Fault-injection state (see degrade()/heal()).
        self.latency_multiplier = 1.0
        self.drop_probability = 0.0
        self.messages_dropped = 0
        self._drop_rng: Optional[random.Random] = None

    # -- fault injection -----------------------------------------------------

    def degrade(self, latency_multiplier: float = 1.0,
                drop_probability: float = 0.0,
                rng: Optional[random.Random] = None) -> None:
        """Degrade remote messaging until :meth:`heal` is called.

        ``latency_multiplier`` scales every remote delay (>= 1);
        ``drop_probability`` loses each remote message independently with
        that probability, drawn from ``rng`` (required when > 0 so runs
        stay deterministic).  Calling again replaces the previous
        degradation; degradations do not stack.
        """
        if latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if drop_probability > 0.0 and rng is None:
            raise ValueError("drop_probability > 0 requires an rng "
                             "(use a named RandomStreams stream)")
        self.latency_multiplier = latency_multiplier
        self.drop_probability = drop_probability
        self._drop_rng = rng

    def heal(self) -> None:
        """Restore the fabric to its healthy state."""
        self.latency_multiplier = 1.0
        self.drop_probability = 0.0
        self._drop_rng = None

    @property
    def degraded(self) -> bool:
        return self.latency_multiplier > 1.0 or self.drop_probability > 0.0

    def drop_message(self) -> bool:
        """Decide whether one remote message is lost in transit.

        Consumes RNG only while a drop probability is active, so enabling
        chaos never perturbs the draws of a fault-free run.
        """
        if self.drop_probability <= 0.0:
            return False
        dropped = self._drop_rng.random() < self.drop_probability
        if dropped:
            self.messages_dropped += 1
        return dropped

    # -- delays --------------------------------------------------------------

    def delivery_delay(self, src: Optional[Server], dst: Server,
                       size_bytes: float) -> float:
        """Delay for a ``size_bytes`` message from ``src`` to ``dst``.

        ``src is None`` models an external client (always remote).
        Side effect: charges NIC meters for remote transfers.
        """
        if src is dst and src is not None:
            return self.local_latency_ms
        bandwidths = [dst.itype.net_bytes_per_ms()]
        dst.net_meter.add(size_bytes)
        if src is not None:
            bandwidths.append(src.itype.net_bytes_per_ms())
            src.net_meter.add(size_bytes)
        serialization = size_bytes / min(bandwidths)
        return self.latency_multiplier * (
            self.remote_rtt_ms / 2.0 + serialization)

    def transfer_delay(self, src: Server, dst: Server,
                       size_bytes: float) -> float:
        """Bulk transfer (actor state migration): full payload over the
        slower NIC plus one RTT of handshaking."""
        if src is dst:
            return self.local_latency_ms
        src.net_meter.add(size_bytes)
        dst.net_meter.add(size_bytes)
        bandwidth = min(src.itype.net_bytes_per_ms(),
                        dst.itype.net_bytes_per_ms())
        return self.latency_multiplier * (
            self.remote_rtt_ms + size_bytes / bandwidth)
