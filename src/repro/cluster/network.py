"""Network fabric connecting simulated servers.

Messages between actors on the same server are delivered with a small
constant in-process latency and consume no NIC bandwidth.  Messages
between servers pay a propagation delay plus a serialization delay set by
the slower of the two NICs, and the bytes are charged to both ends'
network meters — that charge is what server-level ``net`` rules observe.

The local/remote asymmetry is the entire economic basis of the paper's
``colocate`` behavior, so its ratio (default 0.05 ms vs ~0.5 ms+)
matches intra-host vs intra-AZ messaging on EC2.

Fault injection: the chaos engine can :meth:`degrade` the fabric —
a latency multiplier applied to every remote delay, and a message-drop
probability sampled per remote send — and :meth:`partition` it, severing
the links between a named group of servers and the rest of the fleet.
Both return tokens so overlapping faults compose instead of clobbering
each other: the effective latency multiplier is the max over active
degradations (the strongest bottleneck dominates a path), drop draws
happen once per active degradation in injection order, and each
partition is tracked independently.  Drops model request loss in
transit: the message simply never arrives, so a caller without a timeout
waits forever (which is why :class:`repro.actors.Client` grows a
timeout + retry path).  In-process messages are never degraded or
partitioned.

Partition semantics: a partition separates ``group`` (a set of server
ids) from every server outside it.  Links *within* the group and links
*within* the rest keep working — each side is a healthy island.
``symmetric=True`` severs both directions; ``symmetric=False`` severs
only traffic *from* the group outward (the far side's packets still
arrive, its acks do not — the classic half-open failure).  ``loss``
below 1.0 makes the cut lossy instead of absolute, dropping each
crossing message independently with that probability.

Determinism contract: with no faults active, :meth:`drop_message` takes
one attribute check and returns, consumes no RNG, and every delay is
bit-identical to the pre-fault-model fabric.  Full-loss partitions never
consume RNG either; only lossy cuts (``loss < 1``) and probabilistic
degradations draw, and each active entry draws exactly once per remote
message in a fixed order.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..sim import Simulator
from .server import Server

__all__ = ["NetworkFabric"]


class _Degradation:
    """One active degrade() entry."""

    __slots__ = ("latency_multiplier", "drop_probability", "rng")

    def __init__(self, latency_multiplier: float, drop_probability: float,
                 rng: Optional[random.Random]) -> None:
        self.latency_multiplier = latency_multiplier
        self.drop_probability = drop_probability
        self.rng = rng


class _Partition:
    """One active partition() entry."""

    __slots__ = ("group", "symmetric", "loss", "rng")

    def __init__(self, group: FrozenSet[int], symmetric: bool, loss: float,
                 rng: Optional[random.Random]) -> None:
        self.group = group
        self.symmetric = symmetric
        self.loss = loss
        self.rng = rng

    def severs(self, src_id: int, dst_id: int) -> bool:
        """Does this partition cut the src -> dst direction?"""
        src_in = src_id in self.group
        if src_in == (dst_id in self.group):
            return False
        return True if self.symmetric else src_in


class NetworkFabric:
    """Computes delivery delays and meters NIC usage."""

    def __init__(self, sim: Simulator, local_latency_ms: float = 0.05,
                 remote_rtt_ms: float = 1.0) -> None:
        self.sim = sim
        self.local_latency_ms = local_latency_ms
        self.remote_rtt_ms = remote_rtt_ms
        # Fault-injection state (see degrade()/partition()).  The
        # effective latency_multiplier/drop_probability are cached plain
        # attributes, recomputed only when faults change, so the hot
        # delay path never loops over fault entries.
        self.latency_multiplier = 1.0
        self.drop_probability = 0.0
        self.messages_dropped = 0
        self.partition_drops = 0
        #: Per-link partition-drop counts keyed by ``(src_name, dst_name)``.
        self.drops_by_link: Dict[Tuple[str, str], int] = {}
        self._degradations: Dict[int, _Degradation] = {}
        self._partitions: Dict[int, _Partition] = {}
        self._drop_entries: List[_Degradation] = []
        self._next_token = 1

    # -- fault injection -----------------------------------------------------

    def degrade(self, latency_multiplier: float = 1.0,
                drop_probability: float = 0.0,
                rng: Optional[random.Random] = None) -> int:
        """Degrade remote messaging until healed; returns a heal token.

        ``latency_multiplier`` scales every remote delay (>= 1);
        ``drop_probability`` loses each remote message independently with
        that probability, drawn from ``rng`` (required when > 0 so runs
        stay deterministic).  Overlapping degradations compose: the
        effective multiplier is the max over active entries and each
        entry's drop probability is sampled independently.  Pass the
        returned token to :meth:`heal` to lift just this degradation.
        """
        if latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if drop_probability > 0.0 and rng is None:
            raise ValueError("drop_probability > 0 requires an rng "
                             "(use a named RandomStreams stream)")
        token = self._next_token
        self._next_token += 1
        self._degradations[token] = _Degradation(
            latency_multiplier, drop_probability, rng)
        self._refresh()
        return token

    def heal(self, token: Optional[int] = None) -> None:
        """Lift one degradation (by token) or, with no token, all of them."""
        if token is None:
            self._degradations.clear()
        else:
            self._degradations.pop(token, None)
        self._refresh()

    def partition(self, group, symmetric: bool = True, loss: float = 1.0,
                  rng: Optional[random.Random] = None) -> int:
        """Sever the links between ``group`` (server ids) and the rest.

        Returns a token for :meth:`heal_partition`.  ``loss < 1`` makes
        the cut lossy (each crossing message dropped independently with
        probability ``loss``, drawn from ``rng``); the default 1.0 is an
        absolute cut and consumes no RNG.
        """
        group = frozenset(group)
        if not group:
            raise ValueError("partition group must be non-empty")
        if not 0.0 < loss <= 1.0:
            raise ValueError("loss must be in (0, 1]")
        if loss < 1.0 and rng is None:
            raise ValueError("loss < 1 requires an rng "
                             "(use a named RandomStreams stream)")
        token = self._next_token
        self._next_token += 1
        self._partitions[token] = _Partition(
            group, symmetric, loss, rng if loss < 1.0 else None)
        return token

    def heal_partition(self, token: int) -> None:
        """Reconnect the links severed by one :meth:`partition` call."""
        self._partitions.pop(token, None)

    def _refresh(self) -> None:
        entries = self._degradations.values()
        self.latency_multiplier = max(
            (e.latency_multiplier for e in entries), default=1.0)
        self._drop_entries = [e for e in entries if e.drop_probability > 0.0]
        survive = 1.0
        for entry in self._drop_entries:
            survive *= 1.0 - entry.drop_probability
        self.drop_probability = 1.0 - survive

    @property
    def degraded(self) -> bool:
        return self.latency_multiplier > 1.0 or self.drop_probability > 0.0

    @property
    def partitioned(self) -> bool:
        return bool(self._partitions)

    def link_blocked(self, src: Server, dst: Server) -> bool:
        """Is the src -> dst link absolutely severed (full-loss cut)?

        Lossy partitions (``loss < 1``) do not block a link — individual
        messages may still get through — so this is the reachability
        check control loops and migrations use, and it never draws RNG.
        """
        if not self._partitions or src is dst:
            return False
        return any(part.loss >= 1.0
                   and part.severs(src.server_id, dst.server_id)
                   for part in self._partitions.values())

    def drop_message(self, src: Optional[Server] = None,
                     dst: Optional[Server] = None) -> bool:
        """Decide whether one remote message is lost in transit.

        Partitions are checked first: a severed link drops the message
        outright (loss 1.0, no RNG) or with probability ``loss`` (one
        draw per severing partition).  Then each active degradation with
        a drop probability draws once.  External clients (``src`` or
        ``dst`` of ``None``) ride the management network and are never
        partitioned, only degraded.  With no faults active this method
        consumes no RNG, so enabling chaos never perturbs the draws of a
        fault-free run.
        """
        if self._partitions and src is not None and dst is not None:
            for part in self._partitions.values():
                if not part.severs(src.server_id, dst.server_id):
                    continue
                if part.loss >= 1.0 or part.rng.random() < part.loss:
                    self.messages_dropped += 1
                    self.partition_drops += 1
                    link = (src.name, dst.name)
                    self.drops_by_link[link] = \
                        self.drops_by_link.get(link, 0) + 1
                    return True
        for entry in self._drop_entries:
            if entry.rng.random() < entry.drop_probability:
                self.messages_dropped += 1
                return True
        return False

    # -- delays --------------------------------------------------------------

    def delivery_delay(self, src: Optional[Server], dst: Server,
                       size_bytes: float) -> float:
        """Delay for a ``size_bytes`` message from ``src`` to ``dst``.

        ``src is None`` models an external client (always remote).
        Side effect: charges NIC meters for remote transfers.
        """
        if src is dst and src is not None:
            return self.local_latency_ms
        bandwidths = [dst.itype.net_bytes_per_ms()]
        dst.net_meter.add(size_bytes)
        if src is not None:
            bandwidths.append(src.itype.net_bytes_per_ms())
            src.net_meter.add(size_bytes)
        serialization = size_bytes / min(bandwidths)
        return self.latency_multiplier * (
            self.remote_rtt_ms / 2.0 + serialization)

    def transfer_delay(self, src: Server, dst: Server,
                       size_bytes: float) -> float:
        """Bulk transfer (actor state migration): full payload over the
        slower NIC plus one RTT of handshaking (the prepare and commit
        control messages of the migration protocol)."""
        if src is dst:
            return self.local_latency_ms
        src.net_meter.add(size_bytes)
        dst.net_meter.add(size_bytes)
        bandwidth = min(src.itype.net_bytes_per_ms(),
                        dst.itype.net_bytes_per_ms())
        return self.latency_multiplier * (
            self.remote_rtt_ms + size_bytes / bandwidth)
