"""Network fabric connecting simulated servers.

Messages between actors on the same server are delivered with a small
constant in-process latency and consume no NIC bandwidth.  Messages
between servers pay a propagation delay plus a serialization delay set by
the slower of the two NICs, and the bytes are charged to both ends'
network meters — that charge is what server-level ``net`` rules observe.

The local/remote asymmetry is the entire economic basis of the paper's
``colocate`` behavior, so its ratio (default 0.05 ms vs ~0.5 ms+)
matches intra-host vs intra-AZ messaging on EC2.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator
from .server import Server

__all__ = ["NetworkFabric"]


class NetworkFabric:
    """Computes delivery delays and meters NIC usage."""

    def __init__(self, sim: Simulator, local_latency_ms: float = 0.05,
                 remote_rtt_ms: float = 1.0) -> None:
        self.sim = sim
        self.local_latency_ms = local_latency_ms
        self.remote_rtt_ms = remote_rtt_ms

    def delivery_delay(self, src: Optional[Server], dst: Server,
                       size_bytes: float) -> float:
        """Delay for a ``size_bytes`` message from ``src`` to ``dst``.

        ``src is None`` models an external client (always remote).
        Side effect: charges NIC meters for remote transfers.
        """
        if src is dst and src is not None:
            return self.local_latency_ms
        bandwidths = [dst.itype.net_bytes_per_ms()]
        dst.net_meter.add(size_bytes)
        if src is not None:
            bandwidths.append(src.itype.net_bytes_per_ms())
            src.net_meter.add(size_bytes)
        serialization = size_bytes / min(bandwidths)
        return self.remote_rtt_ms / 2.0 + serialization

    def transfer_delay(self, src: Server, dst: Server,
                       size_bytes: float) -> float:
        """Bulk transfer (actor state migration): full payload over the
        slower NIC plus one RTT of handshaking."""
        if src is dst:
            return self.local_latency_ms
        src.net_meter.add(size_bytes)
        dst.net_meter.add(size_bytes)
        bandwidth = min(src.itype.net_bytes_per_ms(),
                        dst.itype.net_bytes_per_ms())
        return self.remote_rtt_ms + size_bytes / bandwidth
